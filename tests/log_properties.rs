// Needs the external `proptest` crate: compiled only with `--features proptest-tests`.
#![cfg(feature = "proptest-tests")]
//! Property-based tests of the replicated log: identical logs on every
//! replica, validity of every entry, and per-proposer FIFO order —
//! under arbitrary schedules and command mixes.

use proptest::prelude::*;

use sift::adopt_commit::DigitAc;
use sift::consensus::log::ReplicatedLog;
use sift::core::{Epsilon, SiftingConciliator};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::ScheduleKind;
use sift::sim::{Engine, LayoutBuilder, ProcessId};

fn schedule_kind() -> impl Strategy<Value = ScheduleKind> {
    prop_oneof![
        Just(ScheduleKind::RoundRobin),
        Just(ScheduleKind::RandomInterleave),
        Just(ScheduleKind::BlockSequential),
        Just(ScheduleKind::BlockRotation),
        Just(ScheduleKind::Stutter),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Log safety: identical logs, every entry proposed by someone, and
    /// each replica's own committed commands appear in FIFO order.
    #[test]
    fn replicated_log_is_safe(
        n in 1usize..6,
        slots in 1usize..6,
        commands_per_replica in 1usize..4,
        kind in schedule_kind(),
        seed in 0u64..100_000,
    ) {
        let mut b = LayoutBuilder::new();
        let log = ReplicatedLog::allocate(
            &mut b,
            n,
            slots,
            32,
            |b| SiftingConciliator::allocate(b, n, Epsilon::HALF),
            |b| DigitAc::for_code_space(b, 64, 2),
        );
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                // Replica i proposes commands i*10, i*10+1, … (< 64).
                let commands: Vec<u64> = (0..commands_per_replica as u64)
                    .map(|k| (i as u64) * 10 + k)
                    .collect();
                log.participant(ProcessId(i), commands, &mut rng)
            })
            .collect();
        let report =
            Engine::new(&layout, procs).run(kind.build(n, split.seed("schedule", 0)));
        let logs = report.unwrap_outputs();

        // Agreement: all replicas hold the same log, full length.
        for w in logs.windows(2) {
            prop_assert_eq!(&w[0], &w[1], "logs diverged");
        }
        prop_assert_eq!(logs[0].len(), slots);

        // Validity: every entry decodes to a real (replica, index).
        for &entry in &logs[0] {
            let proposer = (entry / 10) as usize;
            let index = (entry % 10) as usize;
            prop_assert!(proposer < n && index < commands_per_replica,
                "invented entry {}", entry);
        }

        // FIFO per proposer (ignoring trailing re-proposals of the last
        // command, which produce adjacent duplicates).
        for p in 0..n as u64 {
            let mine: Vec<u64> = logs[0].iter().copied().filter(|&e| e / 10 == p).collect();
            let mut deduped = mine.clone();
            deduped.dedup();
            prop_assert!(
                deduped.windows(2).all(|w| w[0] < w[1]),
                "replica {}'s commands out of order: {:?}", p, mine
            );
        }
    }
}

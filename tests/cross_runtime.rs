//! Cross-runtime equivalence: the same protocol state machines run on
//! the deterministic simulator and on the threaded substrate, and a
//! lockstep driver over the threaded objects reproduces the simulator's
//! outcome exactly.

use sift::core::{Conciliator, Epsilon, SiftingConciliator, SnapshotConciliator};
use sift::shmem::{run_lockstep, run_threads};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::RoundRobin;
use sift::sim::{Engine, LayoutBuilder, ProcessId};

fn sifting_participants(
    n: usize,
    seed: u64,
) -> (sift::sim::Layout, Vec<sift::core::SiftingParticipant>) {
    let mut b = LayoutBuilder::new();
    let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
    let layout = b.build();
    let split = SeedSplitter::new(seed);
    let procs = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    (layout, procs)
}

/// The simulator's engine resumes a state machine immediately after its
/// op executes, so "one op per scheduled slot" in the lockstep driver is
/// the same discipline — outcomes must match exactly.
#[test]
fn lockstep_threads_match_simulator_exactly() {
    for seed in 0..20 {
        let n = 9;
        let (layout, procs) = sifting_participants(n, seed);
        let sim_outputs: Vec<u64> = Engine::new(&layout, procs)
            .run(RoundRobin::new(n))
            .unwrap_outputs()
            .into_iter()
            .map(|p| p.input())
            .collect();

        let (layout2, procs2) = sifting_participants(n, seed);
        let atomic_outputs: Vec<u64> = run_lockstep(&layout2, procs2)
            .into_iter()
            .map(|p| p.input())
            .collect();

        assert_eq!(sim_outputs, atomic_outputs, "seed {seed}");
    }
}

#[test]
fn lockstep_matches_for_snapshot_conciliator_too() {
    for seed in 0..10 {
        let n = 6;
        let build = |seed: u64| {
            let mut b = LayoutBuilder::new();
            let c = SnapshotConciliator::allocate(&mut b, n, Epsilon::HALF);
            let layout = b.build();
            let split = SeedSplitter::new(seed);
            let procs: Vec<_> = (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), 10 + i as u64, &mut rng)
                })
                .collect();
            (layout, procs)
        };
        let (layout, procs) = build(seed);
        let sim: Vec<u64> = Engine::new(&layout, procs)
            .run(RoundRobin::new(n))
            .unwrap_outputs()
            .into_iter()
            .map(|p| p.input())
            .collect();
        let (layout2, procs2) = build(seed);
        let atomic: Vec<u64> = run_lockstep(&layout2, procs2)
            .into_iter()
            .map(|p| p.input())
            .collect();
        assert_eq!(sim, atomic, "seed {seed}");
    }
}

/// Free-running threads (the OS schedules) still satisfy validity and
/// exact step counts.
#[test]
fn free_threads_preserve_protocol_invariants() {
    let n = 6;
    let (layout, procs) = sifting_participants(n, 5);
    let rounds = {
        let mut b = LayoutBuilder::new();
        SiftingConciliator::allocate(&mut b, n, Epsilon::HALF).rounds() as u64
    };
    let report = run_threads(&layout, procs);
    for p in &report.outputs {
        assert!(p.input() < n as u64);
    }
    assert!(report.ops.iter().all(|&o| o == rounds));
}

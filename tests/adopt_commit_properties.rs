// Needs the external `proptest` crate: compiled only with `--features proptest-tests`.
#![cfg(feature = "proptest-tests")]
//! Property-based tests of the adopt-commit contract (validity,
//! convergence, coherence) for every implementation under arbitrary
//! proposals and schedule families.

use proptest::prelude::*;

use sift::adopt_commit::{
    check_ac_properties, AcOutput, AdoptCommit, BinaryAc, DigitAc, FlagsAc, GafniRegisterAc,
    GafniSnapshotAc,
};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::ScheduleKind;
use sift::sim::{Engine, LayoutBuilder, ProcessId};

fn schedule_kind() -> impl Strategy<Value = ScheduleKind> {
    prop_oneof![
        Just(ScheduleKind::RoundRobin),
        Just(ScheduleKind::RandomInterleave),
        Just(ScheduleKind::BlockSequential),
        Just(ScheduleKind::BlockRotation),
        Just(ScheduleKind::Stutter),
    ]
}

fn run_object<A: AdoptCommit<u64>>(
    ac: &A,
    layout: &sift::sim::Layout,
    proposals: &[u64],
    kind: ScheduleKind,
    seed: u64,
) -> Vec<Option<AcOutput<u64>>> {
    let n = proposals.len();
    let split = SeedSplitter::new(seed);
    let procs: Vec<_> = proposals
        .iter()
        .enumerate()
        .map(|(i, &c)| ac.proposer(ProcessId(i), c, c))
        .collect();
    let report = Engine::new(layout, procs).run(kind.build(n, split.seed("schedule", 0)));
    report.outputs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All five implementations satisfy the spec under arbitrary
    /// proposals (codes < 16) and any schedule family.
    #[test]
    fn all_objects_satisfy_the_spec(
        kind in schedule_kind(),
        proposals in prop::collection::vec(0u64..16, 1..10),
        seed in 0u64..100_000,
        which in 0usize..5,
    ) {
        let n = proposals.len();
        let mut b = LayoutBuilder::new();
        let outputs = match which {
            0 => {
                let ac = FlagsAc::allocate(&mut b, 16);
                let layout = b.build();
                run_object(&ac, &layout, &proposals, kind, seed)
            }
            1 => {
                let ac = DigitAc::for_code_space(&mut b, 16, 2);
                let layout = b.build();
                run_object(&ac, &layout, &proposals, kind, seed)
            }
            2 => {
                let ac = DigitAc::for_code_space(&mut b, 16, 4);
                let layout = b.build();
                run_object(&ac, &layout, &proposals, kind, seed)
            }
            3 => {
                let ac = GafniSnapshotAc::<u64>::allocate(&mut b, n, |v| *v);
                let layout = b.build();
                run_object(&ac, &layout, &proposals, kind, seed)
            }
            _ => {
                let ac = GafniRegisterAc::<u64>::allocate(&mut b, n, |v| *v);
                let layout = b.build();
                run_object(&ac, &layout, &proposals, kind, seed)
            }
        };
        prop_assert!(outputs.iter().all(Option::is_some), "termination");
        check_ac_properties(&proposals, &outputs);
    }

    /// The binary object used by Algorithm 3's combining stage.
    #[test]
    fn binary_object_satisfies_the_spec(
        kind in schedule_kind(),
        bits in prop::collection::vec(any::<bool>(), 1..10),
        seed in 0u64..100_000,
    ) {
        let n = bits.len();
        let mut b = LayoutBuilder::new();
        let ac = BinaryAc::allocate(&mut b);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = bits
            .iter()
            .enumerate()
            .map(|(i, &bit)| ac.propose_bit(ProcessId(i), bit))
            .collect();
        let report = Engine::new(&layout, procs).run(kind.build(n, split.seed("schedule", 0)));
        let proposals: Vec<u64> = bits.iter().map(|&b| u64::from(b)).collect();
        check_ac_properties(&proposals, &report.outputs);
    }

    /// Step bounds hold for every implementation in every execution.
    #[test]
    fn step_bounds_hold(
        kind in schedule_kind(),
        proposals in prop::collection::vec(0u64..64, 2..8),
        seed in 0u64..100_000,
    ) {
        let n = proposals.len();
        // Digit object, base 2, m = 64.
        let mut b = LayoutBuilder::new();
        let ac = DigitAc::for_code_space(&mut b, 64, 2);
        let bound = <DigitAc as AdoptCommit<u64>>::steps_bound(&ac);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = proposals
            .iter()
            .enumerate()
            .map(|(i, &c)| ac.proposer(ProcessId(i), c, c))
            .collect();
        let report = Engine::new(&layout, procs).run(kind.build(n, split.seed("schedule", 0)));
        for &steps in &report.metrics.per_process_steps {
            prop_assert!(steps <= bound, "{} > {}", steps, bound);
        }
    }
}

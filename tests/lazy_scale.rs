//! The lazy-materialization guarantee at scale: an engine declared over
//! a million processes (and a million-register layout) allocates
//! proportionally to the processes a schedule actually touches, not to
//! the declared population.
//!
//! These are the assertion-backed contracts behind the million-process
//! simulator: the probes ([`Engine::materialized_count`],
//! [`Memory::materialized_registers`]) measure real allocation, so a
//! regression to eager `O(n)` preallocation fails here immediately.

use sift::sim::schedule::{FixedSchedule, RoundRobin};
use sift::sim::{Engine, LayoutBuilder, Op, OpResult, Process, RegisterId, Step, StopReason};

const N: usize = 1_000_000;

/// Writes its id to its own register, reads it back, returns the read.
struct OwnSlot {
    reg: RegisterId,
    id: u64,
    phase: u8,
}

impl Process for OwnSlot {
    type Value = u64;
    type Output = u64;

    fn step(&mut self, prev: Option<OpResult<u64>>) -> Step<u64, u64> {
        self.phase += 1;
        match self.phase {
            1 => Step::Issue(Op::RegisterWrite(self.reg, self.id)),
            2 => Step::Issue(Op::RegisterRead(self.reg)),
            _ => Step::Done(prev.unwrap().expect_register().unwrap()),
        }
    }
}

fn million_layout() -> (sift::sim::Layout, Vec<RegisterId>) {
    let mut b = LayoutBuilder::new();
    let regs: Vec<RegisterId> = (0..N).map(|_| b.register()).collect();
    (b.build(), regs)
}

#[test]
fn hundred_process_schedule_allocates_proportionally_to_touched() {
    let (layout, regs) = million_layout();
    let engine = Engine::lazy(&layout, N, move |pid| OwnSlot {
        reg: regs[pid.index()],
        id: pid.index() as u64,
        phase: 0,
    });
    assert_eq!(engine.process_count(), N);
    assert_eq!(
        engine.materialized_count(),
        0,
        "construction builds nothing"
    );

    // 100 pids scattered across the id space, three slots each (enough
    // for the full protocol).
    let touched: Vec<usize> = (0..100).map(|i| (i * 9_973) % N).collect();
    let script: Vec<usize> = touched
        .iter()
        .flat_map(|&pid| std::iter::repeat_n(pid, 3))
        .collect();
    let report = engine.run_sparse(FixedSchedule::from_indices(script));

    assert_eq!(report.touched_count(), 100);
    assert_eq!(report.process_count, N);
    assert_eq!(report.stop_reason, StopReason::ScheduleExhausted);
    assert_eq!(report.decided().count(), 100);
    for (pid, &out) in report.decided() {
        assert_eq!(out, pid.index() as u64);
    }
    assert_eq!(report.metrics.total_ops, 200, "two charged ops per process");
    assert_eq!(
        report.metrics.skipped_slots, 100,
        "third slot is a free skip"
    );

    // Register storage is paged (1024 registers per page): 100 scattered
    // registers touch at most 100 pages out of ~977, so materialized
    // slot capacity stays two orders of magnitude under the declared
    // million.
    let materialized = report.memory.materialized_registers();
    assert!(materialized > 0, "the touched registers were written");
    assert!(
        materialized <= 100 * 1024,
        "expected <= 100 pages of registers, got {materialized} slots"
    );
}

#[test]
fn untouched_engine_construction_is_allocation_free() {
    let (layout, regs) = million_layout();
    let engine = Engine::lazy(&layout, N, move |pid| OwnSlot {
        reg: regs[pid.index()],
        id: pid.index() as u64,
        phase: 0,
    });
    assert_eq!(engine.materialized_count(), 0);
    // An empty schedule touches nothing and materializes nothing.
    let report = engine.run_sparse(FixedSchedule::from_indices(Vec::<usize>::new()));
    assert_eq!(report.touched_count(), 0);
    assert_eq!(report.memory.materialized_registers(), 0);
    assert_eq!(report.metrics.total_ops, 0);
}

#[test]
fn eager_engines_still_report_full_materialization() {
    // The probe is meaningful for eager engines too: everything exists
    // up front (the legacy contract).
    let mut b = LayoutBuilder::new();
    let reg = b.register();
    let layout = b.build();
    let procs: Vec<OwnSlot> = (0..8).map(|id| OwnSlot { reg, id, phase: 0 }).collect();
    let engine = Engine::new(&layout, procs);
    assert_eq!(engine.materialized_count(), 8);
    let report = engine.run(RoundRobin::new(8));
    assert!(report.all_decided());
}

// Needs the external `proptest` crate: compiled only with `--features proptest-tests`.
#![cfg(feature = "proptest-tests")]
//! Property-based tests of the observation algebra: report merge is
//! commutative and associative, histogram merge never loses a count,
//! and bucketing maps every value into the bucket that contains it.
//! (The deterministic seed-sampled versions of these properties live in
//! `sift-obs`'s unit tests; this suite re-checks them under proptest's
//! adversarial generation when the external crate is available.)

use proptest::prelude::*;

use sift::obs::{bucket_lower_bound, bucket_of, Histogram, ObsReport, BUCKETS};

/// An arbitrary report: a handful of counters, maxima, and histogram
/// observations over a small shared key space (so merges collide).
fn report() -> impl Strategy<Value = ObsReport> {
    let entry = (0usize..4, 0u64..1_000_000);
    proptest::collection::vec((entry.clone(), entry.clone(), entry), 0..12).prop_map(|triples| {
        let keys = ["alpha", "beta", "gamma", "delta"];
        let mut r = ObsReport::new();
        for ((ck, cv), (mk, mv), (hk, hv)) in triples {
            r.add_count(keys[ck], cv);
            r.observe_max(keys[mk], mv);
            r.record_hist(keys[hk], hv);
        }
        r
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merge order cannot show: a ⊕ b = b ⊕ a.
    #[test]
    fn report_merge_is_commutative(a in report(), b in report()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.to_json(), ba.to_json());
    }

    /// Merge grouping cannot show: (a ⊕ b) ⊕ c = a ⊕ (b ⊕ c).
    #[test]
    fn report_merge_is_associative(a in report(), b in report(), c in report()) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Histogram merge conserves counts, bucket by bucket.
    #[test]
    fn histogram_merge_never_loses_counts(
        xs in proptest::collection::vec(any::<u64>(), 0..64),
        ys in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut a = Histogram::new();
        for &x in &xs {
            a.record(x);
        }
        let mut b = Histogram::new();
        for &y in &ys {
            b.record(y);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.count(), (xs.len() + ys.len()) as u64);
        for i in 0..BUCKETS {
            prop_assert_eq!(merged.count_at(i), a.count_at(i) + b.count_at(i));
        }
    }

    /// Every value lands in the bucket whose range contains it.
    #[test]
    fn bucketing_is_a_partition(v in any::<u64>()) {
        let i = bucket_of(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(bucket_lower_bound(i) <= v);
        if i + 1 < BUCKETS {
            prop_assert!(v < bucket_lower_bound(i + 1));
        }
    }
}

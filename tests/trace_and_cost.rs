//! Integration tests for execution traces and the snapshot cost model —
//! the accounting machinery behind experiments E3 and E21.

use sift::core::{Conciliator, Epsilon, SiftingConciliator, SnapshotConciliator};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::RoundRobin;
use sift::sim::{CostModel, Engine, LayoutBuilder, Memory, OpKind, ProcessId};

fn sifting_engine(n: usize, seed: u64) -> (Engine<sift::core::SiftingParticipant>, usize) {
    let mut b = LayoutBuilder::new();
    let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
    let layout = b.build();
    let split = SeedSplitter::new(seed);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    (Engine::new(&layout, procs), c.rounds())
}

#[test]
fn trace_records_every_charged_operation_in_order() {
    let n = 6;
    let (mut engine, rounds) = sifting_engine(n, 3);
    engine.enable_trace();
    let report = engine.run(RoundRobin::new(n));
    let trace = report.trace.expect("trace enabled");

    // One event per charged op, in slot order.
    assert_eq!(trace.len() as u64, report.metrics.total_ops);
    let slots: Vec<u64> = trace.events().iter().map(|e| e.slot).collect();
    assert!(slots.windows(2).all(|w| w[0] < w[1]), "slots must increase");

    // Each process contributed exactly R events, all register ops.
    for pid in 0..n {
        let mine: Vec<_> = trace.by_process(ProcessId(pid)).collect();
        assert_eq!(mine.len(), rounds);
        for e in mine {
            assert!(
                matches!(e.kind, OpKind::RegisterRead | OpKind::RegisterWrite),
                "sifting uses registers only, saw {:?}",
                e.kind
            );
        }
    }
}

#[test]
fn trace_interleaving_matches_round_robin() {
    let n = 4;
    let (mut engine, _) = sifting_engine(n, 9);
    engine.enable_trace();
    let report = engine.run(RoundRobin::new(n));
    let trace = report.trace.unwrap();
    // Sifting participants all take the same number of steps, so under
    // round-robin the trace is a perfect rotation: event k belongs to
    // process k mod n.
    for (k, e) in trace.events().iter().enumerate() {
        assert_eq!(e.pid.index(), k % n, "event {k}");
    }
}

#[test]
fn register_cost_model_multiplies_snapshot_charges() {
    let n = 8;
    let build = |model: CostModel| {
        let mut b = LayoutBuilder::new();
        let c = SnapshotConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        let split = SeedSplitter::new(4);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        let memory = Memory::with_cost_model(&layout, model);
        Engine::with_memory(memory, procs).run(RoundRobin::new(n))
    };

    let unit = build(CostModel::UnitCost);
    let register = build(CostModel::RegisterImplemented);

    // Same ops either way; only the charged steps differ.
    assert_eq!(unit.metrics.total_ops, register.metrics.total_ops);
    assert_eq!(unit.metrics.total_steps, unit.metrics.total_ops);
    assert_eq!(
        register.metrics.total_steps,
        unit.metrics.total_steps * n as u64,
        "every snapshot op (update and scan) costs n under the register model"
    );

    // Identical outcomes: the cost model is pure accounting.
    let u: Vec<u64> = unit.unwrap_outputs().iter().map(|p| p.input()).collect();
    let r: Vec<u64> = register
        .unwrap_outputs()
        .iter()
        .map(|p| p.input())
        .collect();
    assert_eq!(u, r);
}

#[test]
fn op_kind_breakdown_matches_protocol_structure() {
    let n = 5;
    let (engine, rounds) = sifting_engine(n, 7);
    let report = engine.run(RoundRobin::new(n));
    let reads = report.metrics.ops_of_kind(OpKind::RegisterRead);
    let writes = report.metrics.ops_of_kind(OpKind::RegisterWrite);
    assert_eq!(reads + writes, (n * rounds) as u64);
    assert!(writes >= rounds as u64 / 2, "someone writes most rounds");
    assert_eq!(report.metrics.ops_of_kind(OpKind::SnapshotScan), 0);
}

// Needs the external `proptest` crate: compiled only with `--features proptest-tests`.
#![cfg(feature = "proptest-tests")]
//! Property-based tests of the full consensus stacks: agreement and
//! validity are *absolute* (never merely probabilistic), under every
//! schedule family and under crash failures.

use proptest::prelude::*;

use sift::consensus::{
    check_consensus, cil_consensus, linear_work_consensus, max_register_consensus,
    sifting_consensus, snapshot_consensus, ConsensusOutcome,
};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::{CrashSubset, RandomInterleave, Schedule, ScheduleKind};
use sift::sim::{Engine, LayoutBuilder, ProcessId};

fn schedule_kind() -> impl Strategy<Value = ScheduleKind> {
    prop_oneof![
        Just(ScheduleKind::RoundRobin),
        Just(ScheduleKind::RandomInterleave),
        Just(ScheduleKind::BlockSequential),
        Just(ScheduleKind::BlockRotation),
        Just(ScheduleKind::Stutter),
    ]
}

fn run_protocol(
    which: usize,
    inputs: &[u64],
    m: u64,
    seed: u64,
    kind: ScheduleKind,
) -> Vec<ConsensusOutcome> {
    let n = inputs.len();
    let split = SeedSplitter::new(seed);
    let schedule = kind.build(n, split.seed("schedule", 0));
    let mut b = LayoutBuilder::new();

    macro_rules! go {
        ($p:expr) => {{
            let p = $p;
            let layout = b.build();
            let procs: Vec<_> = (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    p.participant(ProcessId(i), inputs[i], &mut rng)
                })
                .collect();
            Engine::new(&layout, procs).run(schedule).unwrap_outputs()
        }};
    }

    match which {
        0 => go!(snapshot_consensus(&mut b, n)),
        1 => go!(max_register_consensus(&mut b, n)),
        2 => go!(sifting_consensus(&mut b, n, m, 2)),
        3 => go!(linear_work_consensus(&mut b, n, m, 2)),
        _ => go!(cil_consensus(&mut b, n)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Agreement and validity hold in every execution of every stack.
    #[test]
    fn consensus_safety_is_absolute(
        which in 0usize..5,
        kind in schedule_kind(),
        inputs in prop::collection::vec(0u64..8, 1..10),
        seed in 0u64..100_000,
    ) {
        let outcomes = run_protocol(which, &inputs, 8, seed, kind);
        check_consensus(&inputs, outcomes.iter());
    }

    /// Unanimity decides in exactly one phase (convergence end to end).
    #[test]
    fn unanimity_decides_in_one_phase(
        which in 0usize..4, // CIL conciliator may still need >1 phase
        kind in schedule_kind(),
        n in 1usize..8,
        value in 0u64..8,
        seed in 0u64..100_000,
    ) {
        let inputs = vec![value; n];
        let outcomes = run_protocol(which, &inputs, 8, seed, kind);
        for o in outcomes {
            match o {
                ConsensusOutcome::Decided(d) => {
                    prop_assert_eq!(d.value, value);
                    prop_assert_eq!(d.phases, 1);
                }
                ConsensusOutcome::Exhausted { .. } => prop_assert!(false, "exhausted"),
            }
        }
    }

    /// Wait-freedom: under crash failures, every surviving process still
    /// decides, and survivors agree.
    #[test]
    fn survivors_decide_under_crashes(
        inputs in prop::collection::vec(0u64..4, 2..10),
        fraction in 0.0f64..0.9,
        seed in 0u64..100_000,
    ) {
        let n = inputs.len();
        let split = SeedSplitter::new(seed);
        let mut b = LayoutBuilder::new();
        let p = sifting_consensus(&mut b, n, 4, 2);
        let layout = b.build();
        let schedule = CrashSubset::random(
            RandomInterleave::new(n, split.seed("schedule", 0)),
            n,
            fraction,
            split.seed("crashes", 0),
        );
        let live = schedule.support().len();
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                p.participant(ProcessId(i), inputs[i], &mut rng)
            })
            .collect();
        let report = Engine::new(&layout, procs).run(schedule);
        let decided: Vec<&ConsensusOutcome> = report.outputs.iter().flatten().collect();
        prop_assert_eq!(decided.len(), live, "every live process decides");
        check_consensus(&inputs, decided.into_iter());
    }
}

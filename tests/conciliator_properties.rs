// Needs the external `proptest` crate: compiled only with `--features proptest-tests`.
#![cfg(feature = "proptest-tests")]
//! Property-based tests of the conciliator contract (termination,
//! validity, probabilistic agreement plumbing) across all four
//! constructions and every schedule family.

use proptest::prelude::*;

use sift::core::{
    distinct_per_round, CilConciliator, Conciliator, EmbeddedConciliator, Epsilon, MaxConciliator,
    RoundHistory, SiftingConciliator, SnapshotConciliator,
};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::ScheduleKind;
use sift::sim::{Engine, LayoutBuilder, ProcessId};

#[derive(Debug, Clone, Copy)]
enum Alg {
    Snapshot,
    Max,
    Sifting,
    Embedded,
    Cil,
}

fn schedule_kind() -> impl Strategy<Value = ScheduleKind> {
    prop_oneof![
        Just(ScheduleKind::RoundRobin),
        Just(ScheduleKind::RandomInterleave),
        Just(ScheduleKind::BlockSequential),
        Just(ScheduleKind::BlockRotation),
        Just(ScheduleKind::Stutter),
    ]
}

fn alg() -> impl Strategy<Value = Alg> {
    prop_oneof![
        Just(Alg::Snapshot),
        Just(Alg::Max),
        Just(Alg::Sifting),
        Just(Alg::Embedded),
        Just(Alg::Cil),
    ]
}

/// Runs a conciliator and returns (outputs' inputs, per-process steps).
fn run_alg(alg: Alg, n: usize, inputs: &[u64], seed: u64, kind: ScheduleKind) -> Vec<u64> {
    let split = SeedSplitter::new(seed);
    let schedule = kind.build(n, split.seed("schedule", 0));
    let mut b = LayoutBuilder::new();

    macro_rules! go {
        ($c:expr) => {{
            let c = $c;
            let layout = b.build();
            let procs: Vec<_> = (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), inputs[i], &mut rng)
                })
                .collect();
            let report = Engine::new(&layout, procs).run(schedule);
            report
                .unwrap_outputs()
                .into_iter()
                .map(|p| p.input())
                .collect::<Vec<u64>>()
        }};
    }

    match alg {
        Alg::Snapshot => go!(SnapshotConciliator::allocate(&mut b, n, Epsilon::HALF)),
        Alg::Max => go!(MaxConciliator::allocate(&mut b, n, Epsilon::HALF)),
        Alg::Sifting => go!(SiftingConciliator::allocate(&mut b, n, Epsilon::HALF)),
        Alg::Embedded => go!(EmbeddedConciliator::allocate(&mut b, n)),
        Alg::Cil => go!(CilConciliator::allocate(&mut b, n)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Termination + validity: every process decides some process's
    /// input, under every algorithm and schedule family.
    #[test]
    fn validity_and_termination(
        alg in alg(),
        kind in schedule_kind(),
        n in 1usize..12,
        seed in 0u64..10_000,
        input_mod in 1u64..6,
    ) {
        let inputs: Vec<u64> = (0..n as u64).map(|i| i % input_mod).collect();
        let outputs = run_alg(alg, n, &inputs, seed, kind);
        prop_assert_eq!(outputs.len(), n);
        for out in outputs {
            prop_assert!(inputs.contains(&out), "output {} not an input", out);
        }
    }

    /// Unanimity in, unanimity out: when all inputs are equal, validity
    /// forces agreement deterministically.
    #[test]
    fn unanimous_inputs_always_agree(
        alg in alg(),
        kind in schedule_kind(),
        n in 1usize..10,
        seed in 0u64..10_000,
        value in 0u64..50,
    ) {
        let inputs = vec![value; n];
        let outputs = run_alg(alg, n, &inputs, seed, kind);
        for out in outputs {
            prop_assert_eq!(out, value);
        }
    }

    /// Round-structured conciliators never invent personae and their
    /// survivor sets only shrink.
    #[test]
    fn survivors_shrink_monotonically(
        kind in schedule_kind(),
        n in 2usize..16,
        seed in 0u64..10_000,
        use_sifting in any::<bool>(),
    ) {
        let split = SeedSplitter::new(seed);
        let schedule = kind.build(n, split.seed("schedule", 0));
        let mut b = LayoutBuilder::new();
        let counts = if use_sifting {
            let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
            let layout = b.build();
            let procs: Vec<_> = (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), i as u64, &mut rng)
                })
                .collect();
            let report = Engine::new(&layout, procs).run(schedule);
            distinct_per_round(report.processes.iter().map(|p| p.history()))
        } else {
            let c = SnapshotConciliator::allocate(&mut b, n, Epsilon::HALF);
            let layout = b.build();
            let procs: Vec<_> = (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), i as u64, &mut rng)
                })
                .collect();
            let report = Engine::new(&layout, procs).run(schedule);
            distinct_per_round(report.processes.iter().map(|p| p.history()))
        };
        for w in counts.windows(2) {
            prop_assert!(w[1] <= w[0], "survivors grew: {:?}", counts);
        }
    }

    /// The deterministic step counts of Theorems 1 and 2 hold exactly:
    /// Algorithm 1 takes 2R ops per process, Algorithm 2 takes R.
    #[test]
    fn step_counts_are_exact(
        kind in schedule_kind(),
        n in 1usize..16,
        seed in 0u64..10_000,
    ) {
        let split = SeedSplitter::new(seed);
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        let rounds = c.rounds() as u64;
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), 0, &mut rng)
            })
            .collect();
        let report = Engine::new(&layout, procs).run(kind.build(n, split.seed("schedule", 0)));
        for &steps in &report.metrics.per_process_steps {
            prop_assert_eq!(steps, rounds);
        }
    }
}

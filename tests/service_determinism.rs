//! Golden-pinned determinism for the service layer.
//!
//! [`DeterministicService`] promises that a seeded proposal script
//! replayed with a fixed tick cadence produces the same commit-fact
//! stream, byte for byte — that promise is what makes service bugs
//! replayable from a seed in CI. These tests pin it the same way
//! `crates/bench/tests/seed_stability.rs` pins the fuzzer:
//!
//! 1. *Across runs and shard substrates*: the stream digest must not
//!    move between repeat runs (the lockstep driver is single-threaded,
//!    so there is no schedule nondeterminism to hide behind).
//! 2. *Across history*: digests must equal the hardcoded values
//!    captured when this suite was written. Any intentional change to
//!    sharding, batching, attempt seeding, or the conciliator stack
//!    shifts them — bump the constants consciously in the same commit
//!    and say why, exactly like a golden-file test.

use sift::service::det::{uniform_script, DeterministicService};
use sift::service::{InstanceId, ShardConfig};

/// One golden scenario: (seed, shards, proposals, instances, values,
/// tick window) → expected stream digest.
struct Golden {
    seed: u64,
    shards: usize,
    proposals: usize,
    instances: u64,
    values: u64,
    window: usize,
    digest: u64,
}

/// Captured from the first run of this suite. The spread covers
/// maximal batching (window 0), per-proposal ticks (window 1), and a
/// mid-size window over a skinny and a wide instance space.
const GOLDEN: [Golden; 4] = [
    Golden {
        seed: 1,
        shards: 4,
        proposals: 300,
        instances: 40,
        values: 8,
        window: 0,
        digest: 0x4c444dc340e82460,
    },
    Golden {
        seed: 2,
        shards: 4,
        proposals: 300,
        instances: 40,
        values: 8,
        window: 1,
        digest: 0x9f4c10f6575c4165,
    },
    Golden {
        seed: 3,
        shards: 8,
        proposals: 500,
        instances: 10,
        values: 4,
        window: 16,
        digest: 0xb71619b279c194e8,
    },
    Golden {
        seed: 4,
        shards: 2,
        proposals: 400,
        instances: 200,
        values: 16,
        window: 32,
        digest: 0xb962baf76059cae6,
    },
];

fn run(case: &Golden) -> u64 {
    let script = uniform_script(case.seed, case.proposals, case.instances, case.values);
    let mut svc: DeterministicService = DeterministicService::new(
        case.shards,
        ShardConfig {
            seed: case.seed,
            ..ShardConfig::default()
        },
    );
    svc.run_script(&script, case.window);
    svc.digest()
}

#[test]
fn commit_stream_digests_match_golden() {
    for case in &GOLDEN {
        let digest = run(case);
        assert_eq!(
            digest, case.digest,
            "seed {} window {}: digest {digest:#018x} drifted from golden \
             {:#018x} — if the change is intentional, bump the constant in \
             this commit and say why",
            case.seed, case.window, case.digest
        );
        // And the run is repeatable within this process too.
        assert_eq!(run(case), digest, "seed {} not replayable", case.seed);
    }
}

#[test]
fn distinct_seeds_produce_distinct_streams() {
    // Sanity against a digest that ignores its input.
    let digests: Vec<u64> = GOLDEN.iter().map(run).collect();
    for (i, a) in digests.iter().enumerate() {
        for b in &digests[i + 1..] {
            assert_ne!(a, b, "two golden scenarios collided");
        }
    }
}

#[test]
fn stream_replay_preserves_decide_exactly_once() {
    for case in &GOLDEN {
        let script = uniform_script(case.seed, case.proposals, case.instances, case.values);
        let mut svc: DeterministicService = DeterministicService::new(
            case.shards,
            ShardConfig {
                seed: case.seed,
                ..ShardConfig::default()
            },
        );
        svc.run_script(&script, case.window);
        let mut seen = std::collections::HashSet::new();
        for fact in svc.stream() {
            assert!(
                seen.insert(fact.instance),
                "seed {}: {} decided twice in the stream",
                case.seed,
                fact.instance
            );
            assert!(
                fact.value < case.values,
                "seed {}: invalid value",
                case.seed
            );
        }
        let distinct: std::collections::HashSet<InstanceId> =
            script.iter().map(|&(id, _)| id).collect();
        assert_eq!(
            seen, distinct,
            "seed {}: decided set must equal proposed set",
            case.seed
        );
    }
}

//! Negative-path service tests: the frontend must stay live and leak
//! nothing when clients misbehave or the shard table runs degenerate
//! configurations.
//!
//! Covered here, each at worker counts 1, 4, and 8:
//!
//! * proposals to an **evicted instance** fail fast with
//!   [`ServiceError::Evicted`] instead of re-running consensus;
//! * a **zero-capacity** shard (decide → deliver → evict immediately)
//!   still answers every first proposal and never wedges;
//! * **client cancellation** — dropping a [`ProposeFuture`] mid-flight
//!   — must neither wedge the shard nor leak table entries, asserted
//!   via the shard-table introspection counters
//!   ([`Service::stats`]: `pending == 0 && waiters == 0` after settle).

use std::time::{Duration, Instant};

use sift::service::runtime::block_on;
use sift::service::{InstanceId, Service, ServiceConfig, ServiceError, ShardConfig};

const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

fn service_with(workers: usize, capacity: usize) -> Service {
    Service::start(ServiceConfig {
        shards: 4,
        workers,
        shard: ShardConfig {
            seed: 0xBAD,
            capacity,
            ..ShardConfig::default()
        },
    })
}

/// Polls the shard tables until nothing is pending and no waiter is
/// registered, or panics after a generous deadline. This is the
/// "must not wedge" assertion: a stuck shard keeps `pending > 0`
/// forever, a leaked cancelled client keeps `waiters > 0`.
fn settle(service: &Service, context: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = service.stats();
        if stats.pending == 0 && stats.waiters == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{context}: shard table never settled: {stats:?}"
        );
        std::thread::yield_now();
    }
}

#[test]
fn proposals_to_evicted_instances_fail_fast() {
    for workers in WORKER_COUNTS {
        let service = service_with(workers, usize::MAX);
        let instance = InstanceId(3);
        let fact = service.propose_sync(instance, 42).expect("decides");
        assert_eq!(fact.value, 42, "singleton validity");
        assert!(service.evict(instance), "decided instances evict");

        // Every later proposal — any value — is rejected, not decided
        // anew (which could violate decide-exactly-once downstream).
        for value in [42u64, 7, 0] {
            match service.propose_sync(instance, value) {
                Err(ServiceError::Evicted(id)) => assert_eq!(id, instance),
                other => panic!("workers={workers}: expected Evicted, got {other:?}"),
            }
        }
        // The original decision is gone from the table, and the
        // tombstone is visible through introspection.
        assert_eq!(service.fact(instance), None, "workers={workers}");
        let stats = service.stats();
        assert_eq!(stats.evicted, 1, "workers={workers}");
        assert_eq!(stats.decided, 0, "workers={workers}");
        let obs = service.shutdown();
        assert_eq!(obs.count("service.evicted_rejects"), 3, "workers={workers}");
        assert_eq!(obs.count("service.decided"), 1, "workers={workers}");
    }
}

#[test]
fn evicting_undecided_or_unknown_instances_is_refused() {
    for workers in WORKER_COUNTS {
        let service = service_with(workers, usize::MAX);
        assert!(
            !service.evict(InstanceId(99)),
            "workers={workers}: unknown instances have no fact to evict"
        );
        service.propose_sync(InstanceId(1), 5).expect("decides");
        assert!(!service.evict(InstanceId(99)), "workers={workers}");
        assert!(service.evict(InstanceId(1)), "workers={workers}");
        assert!(
            !service.evict(InstanceId(1)),
            "workers={workers}: double-evict is a no-op"
        );
        service.shutdown();
    }
}

#[test]
fn zero_capacity_shards_answer_and_never_wedge() {
    for workers in WORKER_COUNTS {
        let service = service_with(workers, 0);
        // First proposal per instance gets its fact delivered even
        // though the table retains nothing…
        for raw in 0..20u64 {
            let fact = service
                .propose_sync(InstanceId(raw), raw * 10)
                .expect("zero-capacity still answers the deciding client");
            assert_eq!(
                fact.value,
                raw * 10,
                "workers={workers}: singleton validity"
            );
            assert_eq!(service.fact(InstanceId(raw)), None, "nothing retained");
        }
        // …and repeats hit the tombstone, not a second consensus run.
        for raw in 0..20u64 {
            assert!(
                matches!(
                    service.propose_sync(InstanceId(raw), 1),
                    Err(ServiceError::Evicted(_))
                ),
                "workers={workers}: instance {raw} must reject after eviction"
            );
        }
        settle(&service, "zero-capacity");
        let stats = service.stats();
        assert_eq!(stats.decided, 0, "workers={workers}: table stays empty");
        assert_eq!(stats.evicted, 20, "workers={workers}");
        let obs = service.shutdown();
        assert_eq!(obs.count("service.decided"), 20, "workers={workers}");
        assert_eq!(obs.count("service.evictions"), 20, "workers={workers}");
    }
}

#[test]
fn dropped_futures_neither_wedge_nor_leak() {
    for workers in WORKER_COUNTS {
        let service = service_with(workers, usize::MAX);
        let instances = 30u64;
        // Fire a wave of proposals and immediately drop every future:
        // the clients walked away mid-proposal.
        for raw in 0..instances {
            drop(service.propose(InstanceId(raw), raw));
            drop(service.propose(InstanceId(raw), raw + 1000));
        }
        // The shards must still decide everything (commit facts are
        // facts regardless of who is listening) and drop the dead
        // waiters without blocking on them.
        settle(&service, "dropped futures");
        let stats = service.stats();
        assert_eq!(
            stats.decided, instances as usize,
            "workers={workers}: cancelled clients must not stop decisions"
        );
        // A fresh, live client still gets the decided fact instantly.
        for raw in 0..instances {
            let fact = block_on(service.propose(InstanceId(raw), 777))
                .expect("idempotent hit after cancellations");
            assert!(
                fact.value == raw || fact.value == raw + 1000,
                "workers={workers}: validity after cancellation"
            );
        }
        let obs = service.shutdown();
        assert_eq!(obs.count("service.decided"), instances, "workers={workers}");
        assert!(
            obs.count("service.cancelled") > 0,
            "workers={workers}: cancellations must be observable"
        );
    }
}

#[test]
fn shutdown_resolves_in_flight_proposals() {
    for workers in WORKER_COUNTS {
        let service = service_with(workers, usize::MAX);
        // Queue proposals and shut down immediately: the final drain
        // must resolve every waiter (with its fact) rather than wedge
        // or drop them on the floor.
        let futures: Vec<_> = (0..16u64)
            .map(|raw| service.propose(InstanceId(raw), raw))
            .collect();
        let obs = service.shutdown();
        assert_eq!(obs.count("service.decided"), 16, "workers={workers}");
        for (raw, future) in futures.into_iter().enumerate() {
            let fact = block_on(future).expect("shutdown drains waiters");
            assert_eq!(fact.value, raw as u64, "workers={workers}");
        }
    }
}

//! Linearizability of the threaded substrate: concurrent histories
//! captured from `sift_shmem`'s objects must pass the Wing–Gong checker.
//!
//! This is the tooling for the Golab–Higham–Woelfel caveat (paper §2):
//! the threaded runtime only stands in for the atomic model if its
//! objects are linearizable, and here we actually check captured
//! histories instead of taking the locks' word for it. Workloads are
//! generated from the in-tree seeded RNG (the workspace is offline, so
//! no property-testing crate; seeds make every failure reproducible) and
//! run both free-threaded and in lockstep. A hand-built
//! non-linearizable history keeps the checker itself honest.

use sift::shmem::{run_lockstep_recorded, run_threads_recorded};
use sift::sim::mc::{check_linearizable, History, HistoryEntry, ObjectKey};
use sift::sim::rng::{SeedSplitter, Xoshiro256StarStar};
use sift::sim::{
    Layout, LayoutBuilder, MaxRegisterId, Op, OpResult, Process, ProcessId, RegisterId, SnapshotId,
    Step, Value,
};

/// A process that performs a pre-generated random operation sequence
/// over a mixed layout, then returns how many ops it ran.
#[derive(Clone)]
struct RandomWorkload {
    ops: Vec<Op<u64>>,
    next: usize,
}

impl RandomWorkload {
    fn generate(
        rng: &mut Xoshiro256StarStar,
        pid: ProcessId,
        registers: &[RegisterId],
        snapshot: SnapshotId,
        max_regs: &[MaxRegisterId],
        len: usize,
    ) -> Self {
        let ops = (0..len)
            .map(|_| match rng.range_u64(6) {
                0 => Op::RegisterRead(registers[rng.range_u64(registers.len() as u64) as usize]),
                1 => Op::RegisterWrite(
                    registers[rng.range_u64(registers.len() as u64) as usize],
                    rng.next_u64() % 100,
                ),
                2 => Op::SnapshotUpdate(snapshot, pid.index(), rng.next_u64() % 100),
                3 => Op::SnapshotScan(snapshot),
                4 => Op::MaxRead(max_regs[rng.range_u64(max_regs.len() as u64) as usize]),
                _ => Op::MaxWrite(
                    max_regs[rng.range_u64(max_regs.len() as u64) as usize],
                    rng.range_u64(8),
                    rng.next_u64() % 100,
                ),
            })
            .collect();
        Self { ops, next: 0 }
    }
}

impl Process for RandomWorkload {
    type Value = u64;
    type Output = usize;

    fn step(&mut self, _prev: Option<OpResult<u64>>) -> Step<u64, usize> {
        if self.next < self.ops.len() {
            self.next += 1;
            Step::Issue(self.ops[self.next - 1].clone())
        } else {
            Step::Done(self.ops.len())
        }
    }
}

fn mixed_instance(seed: u64, n: usize, ops_per_proc: usize) -> (Layout, Vec<RandomWorkload>) {
    let mut b = LayoutBuilder::new();
    let registers = b.registers(3);
    let snapshot = b.snapshot(n);
    let max_regs = b.max_registers(2);
    let layout = b.build();
    let split = SeedSplitter::new(seed);
    let procs = (0..n)
        .map(|i| {
            let mut rng = split.stream("workload", i as u64);
            RandomWorkload::generate(
                &mut rng,
                ProcessId(i),
                &registers,
                snapshot,
                &max_regs,
                ops_per_proc,
            )
        })
        .collect();
    (layout, procs)
}

/// A workload touching exactly one primitive, for focused histories of
/// each lock-free object in isolation.
fn focused_workload(
    rng: &mut Xoshiro256StarStar,
    pid: ProcessId,
    layout_op: impl Fn(&mut Xoshiro256StarStar, ProcessId) -> Op<u64>,
    len: usize,
) -> RandomWorkload {
    let ops = (0..len).map(|_| layout_op(rng, pid)).collect();
    RandomWorkload { ops, next: 0 }
}

/// A pre-generated operation sequence over an arbitrary value type —
/// the value-generic sibling of [`RandomWorkload`], for histories of
/// the register paths whose representation depends on the value type
/// (inline seqlock for ≤16-byte payloads, pointer publication beyond).
#[derive(Clone)]
struct TypedWorkload<V> {
    ops: Vec<Op<V>>,
    next: usize,
}

impl<V: Value> Process for TypedWorkload<V> {
    type Value = V;
    type Output = usize;

    fn step(&mut self, _prev: Option<OpResult<V>>) -> Step<V, usize> {
        if self.next < self.ops.len() {
            self.next += 1;
            Step::Issue(self.ops[self.next - 1].clone())
        } else {
            Step::Done(self.ops.len())
        }
    }
}

/// Captures threaded register histories over value type `V` (4
/// processes × 8 ops, 2 registers) and checks each against Wing–Gong.
fn check_register_histories<V: Value + PartialEq>(tag: &str, mut value: impl FnMut(u64) -> V) {
    for seed in 0..10 {
        let mut b = LayoutBuilder::new();
        let regs = b.registers(2);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..4)
            .map(|i| {
                let mut rng = split.stream(tag, i as u64);
                let ops = (0..8)
                    .map(|_| {
                        let r = regs[rng.range_u64(regs.len() as u64) as usize];
                        if rng.range_u64(2) == 0 {
                            Op::RegisterRead(r)
                        } else {
                            Op::RegisterWrite(r, value(rng.next_u64() % 50))
                        }
                    })
                    .collect();
                TypedWorkload { ops, next: 0 }
            })
            .collect();
        let (_, history) = run_threads_recorded(&layout, procs);
        history.check_well_formed().unwrap();
        check_linearizable(&layout, &history).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Captures threaded max-register histories over value type `V` and
/// checks each against Wing–Gong.
fn check_max_register_histories<V: Value + PartialEq>(tag: &str, mut value: impl FnMut(u64) -> V) {
    for seed in 0..10 {
        let mut b = LayoutBuilder::new();
        let m = b.max_register();
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..4)
            .map(|i| {
                let mut rng = split.stream(tag, i as u64);
                let ops = (0..8)
                    .map(|_| {
                        if rng.range_u64(2) == 0 {
                            Op::MaxRead(m)
                        } else {
                            Op::MaxWrite(m, rng.range_u64(10), value(rng.next_u64() % 50))
                        }
                    })
                    .collect();
                TypedWorkload { ops, next: 0 }
            })
            .collect();
        let (_, history) = run_threads_recorded(&layout, procs);
        history.check_well_formed().unwrap();
        check_linearizable(&layout, &history).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Threaded histories of the lock-free register alone must linearize.
#[test]
fn threaded_register_histories_linearize() {
    for seed in 0..10 {
        let mut b = LayoutBuilder::new();
        let regs = b.registers(2);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..4)
            .map(|i| {
                let mut rng = split.stream("reg", i as u64);
                focused_workload(
                    &mut rng,
                    ProcessId(i),
                    |rng, _| {
                        let r = regs[rng.range_u64(regs.len() as u64) as usize];
                        if rng.range_u64(2) == 0 {
                            Op::RegisterRead(r)
                        } else {
                            Op::RegisterWrite(r, rng.next_u64() % 50)
                        }
                    },
                    8,
                )
            })
            .collect();
        let (_, history) = run_threads_recorded(&layout, procs);
        history.check_well_formed().unwrap();
        check_linearizable(&layout, &history).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Threaded histories of the lock-free snapshot alone must linearize.
#[test]
fn threaded_snapshot_histories_linearize() {
    for seed in 0..10 {
        let mut b = LayoutBuilder::new();
        let snap = b.snapshot(4);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..4)
            .map(|i| {
                let mut rng = split.stream("snap", i as u64);
                focused_workload(
                    &mut rng,
                    ProcessId(i),
                    |rng, pid| {
                        if rng.range_u64(2) == 0 {
                            Op::SnapshotScan(snap)
                        } else {
                            Op::SnapshotUpdate(snap, pid.index(), rng.next_u64() % 50)
                        }
                    },
                    8,
                )
            })
            .collect();
        let (_, history) = run_threads_recorded(&layout, procs);
        history.check_well_formed().unwrap();
        check_linearizable(&layout, &history).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Threaded histories of the lock-free max register alone must
/// linearize.
#[test]
fn threaded_max_register_histories_linearize() {
    for seed in 0..10 {
        let mut b = LayoutBuilder::new();
        let m = b.max_register();
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..4)
            .map(|i| {
                let mut rng = split.stream("max", i as u64);
                focused_workload(
                    &mut rng,
                    ProcessId(i),
                    |rng, _| {
                        if rng.range_u64(2) == 0 {
                            Op::MaxRead(m)
                        } else {
                            Op::MaxWrite(m, rng.range_u64(10), rng.next_u64() % 50)
                        }
                    },
                    8,
                )
            })
            .collect();
        let (_, history) = run_threads_recorded(&layout, procs);
        history.check_well_formed().unwrap();
        check_linearizable(&layout, &history).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// The inline seqlock register path (16-byte payloads): threaded
/// histories must linearize. `(u64, u64)` fills both inline words, so a
/// torn read — half of one write, half of another — would be caught
/// here as a value no write produced.
#[test]
fn threaded_inline_register_histories_linearize() {
    check_register_histories("inline-reg", |v| (v, v.wrapping_mul(3)));
}

/// The pointer-publication register path (oversized payloads):
/// threaded histories must still linearize after the inline-path
/// refactor pushed it behind a representation dispatch.
#[test]
fn threaded_published_register_histories_linearize() {
    check_register_histories("boxed-reg", |v| [v, v + 1, v + 2]);
}

/// The combining max-register path (inline payloads): threaded
/// histories must linearize — in particular, a write that returned
/// because a combiner covered it must be explainable as a dominated
/// write at some point inside its invocation interval.
#[test]
fn threaded_combining_max_register_histories_linearize() {
    check_max_register_histories("combine-max", |v| (v, v.wrapping_mul(7)));
}

/// The pointer-publication max-register path (oversized payloads) must
/// still linearize behind the representation dispatch.
#[test]
fn threaded_published_max_register_histories_linearize() {
    check_max_register_histories("boxed-max", |v| [v, v + 1, v + 2]);
}

/// Free-running threads over `RecordingMemory`: every captured
/// concurrent history must linearize. (A failure here would be a real
/// atomicity bug in a `sift_shmem` object — exactly what this harness
/// exists to catch.)
#[test]
fn threaded_histories_linearize() {
    for seed in 0..20 {
        let (layout, procs) = mixed_instance(seed, 4, 8);
        let (report, history) = run_threads_recorded(&layout, procs);
        assert_eq!(report.total_ops(), 4 * 8, "seed {seed}");
        assert_eq!(history.len(), 4 * 8, "seed {seed}");
        history
            .check_well_formed()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        check_linearizable(&layout, &history).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// The lockstep driver produces sequential (point-interval) histories,
/// which must trivially linearize in recording order.
#[test]
fn lockstep_histories_linearize() {
    for seed in 0..10 {
        let (layout, procs) = mixed_instance(seed, 5, 6);
        let (outputs, history) = run_lockstep_recorded(&layout, procs);
        assert_eq!(outputs, vec![6; 5], "seed {seed}");
        history
            .check_well_formed()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        check_linearizable(&layout, &history).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Negative control: a hand-built history in which a read returns the
/// initial ⊥ *after* a write to the same register has completed. No
/// sequential order explains it, and the checker must say so.
#[test]
fn seeded_non_linearizable_history_is_rejected() {
    let mut b = LayoutBuilder::new();
    let r = b.register();
    let layout = b.build();
    let history = History::from_entries(vec![
        HistoryEntry {
            pid: ProcessId(0),
            op: Op::RegisterWrite(r, 42u64),
            result: OpResult::Ack,
            invoked: 0,
            responded: 1,
        },
        HistoryEntry {
            pid: ProcessId(1),
            op: Op::RegisterRead(r),
            result: OpResult::RegisterValue(None),
            invoked: 2,
            responded: 3,
        },
    ]);
    let err = check_linearizable(&layout, &history).unwrap_err();
    assert_eq!(err.object, ObjectKey::Register(r));
    assert!(err.to_string().contains("not linearizable"));
}

/// A deliberately broken register memory: reads *tear*, combining the
/// high half of the latest write with the low half of the one before
/// it — the classic failure a non-atomic multi-word register exhibits.
/// Wrapped in `RecordingMemory::over`, it proves the checker catches a
/// realistically broken substrate, not just hand-built histories.
#[derive(Debug, Default)]
struct TornRegisterMemory {
    state: std::sync::Mutex<(Option<u64>, Option<u64>)>,
}

impl sift::shmem::ExecuteOps<u64> for TornRegisterMemory {
    fn execute(&self, op: Op<u64>) -> OpResult<u64> {
        let mut state = self.state.lock().unwrap();
        match op {
            Op::RegisterWrite(_, v) => {
                state.0 = state.1.replace(v);
                OpResult::Ack
            }
            Op::RegisterRead(_) => OpResult::RegisterValue(match *state {
                (Some(prev), Some(cur)) => {
                    Some((cur & 0xFFFF_FFFF_0000_0000) | (prev & 0x0000_0000_FFFF_FFFF))
                }
                (_, cur) => cur,
            }),
            other => unimplemented!("torn memory only models registers, got {other:?}"),
        }
    }
}

/// Seeded torn-write histories must be rejected: after two writes with
/// distinct halves, a read observes a value that was never written, and
/// no linearization order can explain it.
#[test]
fn seeded_torn_write_histories_are_rejected() {
    use sift::shmem::RecordingMemory;
    for seed in 0..8u64 {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let layout = b.build();
        let mem = RecordingMemory::over(TornRegisterMemory::default());
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        // Writes are (k << 32) | k for distinct non-zero k: any torn
        // combination of two different writes is a value never written.
        let writes = 2 + rng.range_u64(4);
        for i in 0..writes {
            let k = 1 + seed * 100 + i * (1 + rng.range_u64(5));
            mem.execute_as(ProcessId(0), Op::RegisterWrite(r, (k << 32) | k))
                .expect_ack();
        }
        mem.execute_as(ProcessId(1), Op::RegisterRead(r));
        let history = mem.into_history();
        history.check_well_formed().unwrap();
        let err =
            check_linearizable(&layout, &history).expect_err("torn read must not be linearizable");
        assert_eq!(err.object, ObjectKey::Register(r), "seed {seed}");
    }
}

/// Second negative control on a max register: a read that "forgets" a
/// completed higher-key write is rejected.
#[test]
fn non_linearizable_max_register_history_is_rejected() {
    let mut b = LayoutBuilder::new();
    let m = b.max_register();
    let layout = b.build();
    let history = History::from_entries(vec![
        HistoryEntry {
            pid: ProcessId(0),
            op: Op::MaxWrite(m, 9, 90u64),
            result: OpResult::Ack,
            invoked: 0,
            responded: 1,
        },
        HistoryEntry {
            pid: ProcessId(1),
            op: Op::MaxRead(m),
            result: OpResult::MaxValue(None),
            invoked: 2,
            responded: 3,
        },
    ]);
    let err = check_linearizable(&layout, &history).unwrap_err();
    assert_eq!(err.object, ObjectKey::MaxRegister(m));
}

// ---------------------------------------------------------------------
// The regularity boundary: torn-publication histories must fail the
// Wing–Gong atomic checker yet pass `check_regular` — and genuinely
// broken (word-tearing) histories must fail both.
// ---------------------------------------------------------------------

/// A history captured from the real torn-publication substrate: with
/// the publication window held open, successive reads of the inline
/// seqlock register observe the new value and then the old one — the
/// new/old inversion Lamport regularity permits and atomicity forbids.
/// The checker pair must agree with the theory on both counts.
#[cfg(feature = "torn-publication")]
#[test]
fn torn_publication_histories_are_regular_but_not_atomic() {
    use sift::shmem::register::LockFreeRegister;
    use sift::sim::mc::check_regular;

    let mut b = LayoutBuilder::new();
    let r = b.register();
    let layout = b.build();

    // Drive the real cell: complete a write of 10, then hold a torn
    // write of 20 open while two reads go through the odd-seq window.
    let reg: LockFreeRegister<u64> = LockFreeRegister::new();
    reg.write(10);
    let guard = reg.torn_write(20);
    let first = reg.read();
    let second = reg.read();
    guard.finish();
    let settled = reg.read();
    assert_eq!(first, Some(20), "window parity starts on the new value");
    assert_eq!(second, Some(10), "second read is served the old value");
    assert_eq!(settled, Some(20), "the window closes on the new value");

    // The same execution as a timed history: the torn write spans the
    // two reads, the settled read follows its response.
    let history = History::from_entries(vec![
        HistoryEntry {
            pid: ProcessId(0),
            op: Op::RegisterWrite(r, 10u64),
            result: OpResult::Ack,
            invoked: 0,
            responded: 1,
        },
        HistoryEntry {
            pid: ProcessId(0),
            op: Op::RegisterWrite(r, 20u64),
            result: OpResult::Ack,
            invoked: 2,
            responded: 9,
        },
        HistoryEntry {
            pid: ProcessId(1),
            op: Op::RegisterRead(r),
            result: OpResult::RegisterValue(first),
            invoked: 3,
            responded: 4,
        },
        HistoryEntry {
            pid: ProcessId(1),
            op: Op::RegisterRead(r),
            result: OpResult::RegisterValue(second),
            invoked: 5,
            responded: 6,
        },
        HistoryEntry {
            pid: ProcessId(1),
            op: Op::RegisterRead(r),
            result: OpResult::RegisterValue(settled),
            invoked: 10,
            responded: 11,
        },
    ]);
    history.check_well_formed().unwrap();
    let err =
        check_linearizable(&layout, &history).expect_err("a new/old inversion must not linearize");
    assert_eq!(err.object, ObjectKey::Register(r));
    check_regular(&layout, &history)
        .expect("both reads resolve to an overlapping or latest-preceding write");
}

/// The first-ever torn window serves ⊥ as its old value: atomically
/// inexplicable once a read has already returned the new value, but
/// regular — the write has not responded, so no completed write
/// precedes the ⊥ read.
#[cfg(feature = "torn-publication")]
#[test]
fn first_torn_window_bottom_reads_are_regular_but_not_atomic() {
    use sift::shmem::register::LockFreeRegister;
    use sift::sim::mc::check_regular;

    let mut b = LayoutBuilder::new();
    let r = b.register();
    let layout = b.build();

    let reg: LockFreeRegister<u64> = LockFreeRegister::new();
    let guard = reg.torn_write(7);
    let first = reg.read();
    let second = reg.read();
    guard.finish();
    assert_eq!((first, second), (Some(7), None));

    let history = History::from_entries(vec![
        HistoryEntry {
            pid: ProcessId(0),
            op: Op::RegisterWrite(r, 7u64),
            result: OpResult::Ack,
            invoked: 0,
            responded: 7,
        },
        HistoryEntry {
            pid: ProcessId(1),
            op: Op::RegisterRead(r),
            result: OpResult::RegisterValue(first),
            invoked: 1,
            responded: 2,
        },
        HistoryEntry {
            pid: ProcessId(1),
            op: Op::RegisterRead(r),
            result: OpResult::RegisterValue(second),
            invoked: 3,
            responded: 4,
        },
    ]);
    history.check_well_formed().unwrap();
    let err = check_linearizable(&layout, &history).expect_err("7-then-⊥ must not linearize");
    assert_eq!(err.object, ObjectKey::Register(r));
    check_regular(&layout, &history).expect("⊥ is legal while the first write is in flight");
}

/// Regularity is not a free pass: word-tearing histories — reads
/// combining halves of two different writes into a value *no* write
/// produced — must fail `check_regular` exactly as they fail the
/// atomic checker. Only whole old-or-new values are excused.
#[test]
fn word_torn_histories_fail_even_the_regularity_checker() {
    use sift::shmem::RecordingMemory;
    use sift::sim::mc::check_regular;

    for seed in 0..8u64 {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let layout = b.build();
        let mem = RecordingMemory::over(TornRegisterMemory::default());
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let writes = 2 + rng.range_u64(4);
        for i in 0..writes {
            let k = 1 + seed * 100 + i * (1 + rng.range_u64(5));
            mem.execute_as(ProcessId(0), Op::RegisterWrite(r, (k << 32) | k))
                .expect_ack();
        }
        mem.execute_as(ProcessId(1), Op::RegisterRead(r));
        let history = mem.into_history();
        history.check_well_formed().unwrap();
        let err =
            check_regular(&layout, &history).expect_err("a torn word is not any write's value");
        assert_eq!(err.object, ObjectKey::Register(r), "seed {seed}");
    }
}

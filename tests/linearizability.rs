//! Linearizability of the threaded substrate: concurrent histories
//! captured from `sift_shmem`'s objects must pass the Wing–Gong checker.
//!
//! This is the tooling for the Golab–Higham–Woelfel caveat (paper §2):
//! the threaded runtime only stands in for the atomic model if its
//! objects are linearizable, and here we actually check captured
//! histories instead of taking the locks' word for it. Workloads are
//! generated from the in-tree seeded RNG (the workspace is offline, so
//! no property-testing crate; seeds make every failure reproducible) and
//! run both free-threaded and in lockstep. A hand-built
//! non-linearizable history keeps the checker itself honest.

use sift::shmem::{run_lockstep_recorded, run_threads_recorded};
use sift::sim::mc::{check_linearizable, History, HistoryEntry, ObjectKey};
use sift::sim::rng::{SeedSplitter, Xoshiro256StarStar};
use sift::sim::{
    Layout, LayoutBuilder, MaxRegisterId, Op, OpResult, Process, ProcessId, RegisterId, SnapshotId,
    Step,
};

/// A process that performs a pre-generated random operation sequence
/// over a mixed layout, then returns how many ops it ran.
#[derive(Clone)]
struct RandomWorkload {
    ops: Vec<Op<u64>>,
    next: usize,
}

impl RandomWorkload {
    fn generate(
        rng: &mut Xoshiro256StarStar,
        pid: ProcessId,
        registers: &[RegisterId],
        snapshot: SnapshotId,
        max_regs: &[MaxRegisterId],
        len: usize,
    ) -> Self {
        let ops = (0..len)
            .map(|_| match rng.range_u64(6) {
                0 => Op::RegisterRead(registers[rng.range_u64(registers.len() as u64) as usize]),
                1 => Op::RegisterWrite(
                    registers[rng.range_u64(registers.len() as u64) as usize],
                    rng.next_u64() % 100,
                ),
                2 => Op::SnapshotUpdate(snapshot, pid.index(), rng.next_u64() % 100),
                3 => Op::SnapshotScan(snapshot),
                4 => Op::MaxRead(max_regs[rng.range_u64(max_regs.len() as u64) as usize]),
                _ => Op::MaxWrite(
                    max_regs[rng.range_u64(max_regs.len() as u64) as usize],
                    rng.range_u64(8),
                    rng.next_u64() % 100,
                ),
            })
            .collect();
        Self { ops, next: 0 }
    }
}

impl Process for RandomWorkload {
    type Value = u64;
    type Output = usize;

    fn step(&mut self, _prev: Option<OpResult<u64>>) -> Step<u64, usize> {
        if self.next < self.ops.len() {
            self.next += 1;
            Step::Issue(self.ops[self.next - 1].clone())
        } else {
            Step::Done(self.ops.len())
        }
    }
}

fn mixed_instance(seed: u64, n: usize, ops_per_proc: usize) -> (Layout, Vec<RandomWorkload>) {
    let mut b = LayoutBuilder::new();
    let registers = b.registers(3);
    let snapshot = b.snapshot(n);
    let max_regs = b.max_registers(2);
    let layout = b.build();
    let split = SeedSplitter::new(seed);
    let procs = (0..n)
        .map(|i| {
            let mut rng = split.stream("workload", i as u64);
            RandomWorkload::generate(
                &mut rng,
                ProcessId(i),
                &registers,
                snapshot,
                &max_regs,
                ops_per_proc,
            )
        })
        .collect();
    (layout, procs)
}

/// Free-running threads over `RecordingMemory`: every captured
/// concurrent history must linearize. (A failure here would be a real
/// atomicity bug in a `sift_shmem` object — exactly what this harness
/// exists to catch.)
#[test]
fn threaded_histories_linearize() {
    for seed in 0..20 {
        let (layout, procs) = mixed_instance(seed, 4, 8);
        let (report, history) = run_threads_recorded(&layout, procs);
        assert_eq!(report.total_ops(), 4 * 8, "seed {seed}");
        assert_eq!(history.len(), 4 * 8, "seed {seed}");
        history
            .check_well_formed()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        check_linearizable(&layout, &history).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// The lockstep driver produces sequential (point-interval) histories,
/// which must trivially linearize in recording order.
#[test]
fn lockstep_histories_linearize() {
    for seed in 0..10 {
        let (layout, procs) = mixed_instance(seed, 5, 6);
        let (outputs, history) = run_lockstep_recorded(&layout, procs);
        assert_eq!(outputs, vec![6; 5], "seed {seed}");
        history
            .check_well_formed()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        check_linearizable(&layout, &history).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Negative control: a hand-built history in which a read returns the
/// initial ⊥ *after* a write to the same register has completed. No
/// sequential order explains it, and the checker must say so.
#[test]
fn seeded_non_linearizable_history_is_rejected() {
    let mut b = LayoutBuilder::new();
    let r = b.register();
    let layout = b.build();
    let history = History::from_entries(vec![
        HistoryEntry {
            pid: ProcessId(0),
            op: Op::RegisterWrite(r, 42u64),
            result: OpResult::Ack,
            invoked: 0,
            responded: 1,
        },
        HistoryEntry {
            pid: ProcessId(1),
            op: Op::RegisterRead(r),
            result: OpResult::RegisterValue(None),
            invoked: 2,
            responded: 3,
        },
    ]);
    let err = check_linearizable(&layout, &history).unwrap_err();
    assert_eq!(err.object, ObjectKey::Register(r));
    assert!(err.to_string().contains("not linearizable"));
}

/// Second negative control on a max register: a read that "forgets" a
/// completed higher-key write is rejected.
#[test]
fn non_linearizable_max_register_history_is_rejected() {
    let mut b = LayoutBuilder::new();
    let m = b.max_register();
    let layout = b.build();
    let history = History::from_entries(vec![
        HistoryEntry {
            pid: ProcessId(0),
            op: Op::MaxWrite(m, 9, 90u64),
            result: OpResult::Ack,
            invoked: 0,
            responded: 1,
        },
        HistoryEntry {
            pid: ProcessId(1),
            op: Op::MaxRead(m),
            result: OpResult::MaxValue(None),
            invoked: 2,
            responded: 3,
        },
    ]);
    let err = check_linearizable(&layout, &history).unwrap_err();
    assert_eq!(err.object, ObjectKey::MaxRegister(m));
}

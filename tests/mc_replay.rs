//! Counterexample replay: a deliberately broken adopt-commit object
//! must produce a model-checking violation whose shrunk schedule
//! replays deterministically through the ordinary engine under a
//! [`FixedSchedule`] — the end-to-end contract of the counterexample
//! reporter.

use sift::adopt_commit::{try_check_ac_properties, AcOutput, Verdict};
use sift::sim::mc::{check_dpor, replay_script, CheckError, McOptions};
use sift::sim::schedule::FixedSchedule;
use sift::sim::{
    Engine, Layout, LayoutBuilder, LegacyEngine, Op, OpResult, Process, RegisterId, Step,
};

/// A broken "adopt-commit" proposer (test-only mutant): write your code
/// to one shared register, read it back, and commit if you see your own
/// code. Two solo-running proposers with different codes both commit —
/// a coherence violation a real adopt-commit object must prevent.
#[derive(Clone)]
struct BrokenProposer {
    reg: RegisterId,
    code: u64,
    phase: u8,
}

impl Process for BrokenProposer {
    type Value = u64;
    type Output = AcOutput<u64>;

    fn step(&mut self, prev: Option<OpResult<u64>>) -> Step<u64, AcOutput<u64>> {
        self.phase += 1;
        match self.phase {
            1 => Step::Issue(Op::RegisterWrite(self.reg, self.code)),
            2 => Step::Issue(Op::RegisterRead(self.reg)),
            _ => {
                let seen = prev
                    .expect("read result")
                    .expect_register()
                    .expect("register was written");
                let verdict = if seen == self.code {
                    Verdict::Commit
                } else {
                    Verdict::Adopt
                };
                Step::Done(AcOutput {
                    verdict,
                    code: seen,
                    value: seen,
                })
            }
        }
    }
}

fn broken_instance() -> (Layout, [u64; 2], impl Fn() -> Vec<BrokenProposer>) {
    let mut b = LayoutBuilder::new();
    let reg = b.register();
    let layout = b.build();
    let proposals = [0u64, 1];
    let factory = move || {
        proposals
            .iter()
            .map(|&code| BrokenProposer {
                reg,
                code,
                phase: 0,
            })
            .collect()
    };
    (layout, proposals, factory)
}

#[test]
fn broken_adopt_commit_yields_shrunk_replayable_violation() {
    let (layout, proposals, factory) = broken_instance();
    let err = check_dpor(&layout, &factory, McOptions::new(10_000), |outputs| {
        try_check_ac_properties(&proposals, outputs)
    })
    .unwrap_err();
    let CheckError::Violation(violation) = err else {
        panic!("expected a coherence violation, got {err}");
    };
    assert!(
        violation.message.contains("coherence violated"),
        "{}",
        violation.message
    );

    // The shrunk schedule is the minimal solo-then-solo run: each
    // proposer takes its two steps uninterrupted and commits its own
    // code. No single slot can be removed without losing the failure.
    assert_eq!(violation.script, vec![0, 0, 1, 1]);

    // The report prints a schedule the reader can paste into a replay.
    let printed = violation.to_string();
    assert!(printed.contains("FixedSchedule::from_indices([0, 0, 1, 1])"));
    assert!(printed.contains("coherence violated"));

    // Deterministic replay through the helper: same outputs every time,
    // and the property fails on them.
    let outputs = replay_script(&layout, factory(), &violation.script);
    assert_eq!(
        outputs,
        replay_script(&layout, factory(), &violation.script)
    );
    let message = try_check_ac_properties(&proposals, &outputs).unwrap_err();
    assert_eq!(message, violation.message);

    // And through the ordinary engine + FixedSchedule, as the printed
    // report instructs.
    let report =
        Engine::new(&layout, factory()).run(FixedSchedule::from_indices(violation.script.clone()));
    let both_commit = report
        .outputs
        .iter()
        .flatten()
        .filter(|o| o.verdict == Verdict::Commit)
        .count();
    assert_eq!(both_commit, 2, "both proposers commit different codes");
    assert_ne!(
        report.outputs[0].as_ref().unwrap().code,
        report.outputs[1].as_ref().unwrap().code
    );
}

/// The same mutant under a crash budget: with one proposer crashed the
/// coherence violation needs both to finish, so every counterexample
/// the checker reports must still contain both processes' slots.
#[test]
fn shrunk_counterexample_survives_crash_injection() {
    let (layout, proposals, factory) = broken_instance();
    let err = check_dpor(
        &layout,
        &factory,
        McOptions::new(10_000).with_crashes(1),
        |outputs| try_check_ac_properties(&proposals, outputs),
    )
    .unwrap_err();
    let CheckError::Violation(violation) = err else {
        panic!("expected a coherence violation, got {err}");
    };
    assert_eq!(violation.script, vec![0, 0, 1, 1]);
    assert!(violation.script.contains(&0) && violation.script.contains(&1));
}

/// Sanity: the shrinker leaves already-minimal schedules alone and the
/// violation replays from a *fresh* engine (no state leaks between
/// replays during shrinking).
#[test]
fn replay_is_deterministic_across_engines() {
    let (layout, _, factory) = broken_instance();
    let script = [0usize, 0, 1, 1];
    let a = replay_script(&layout, factory(), &script);
    let b = replay_script(&layout, factory(), &script);
    assert_eq!(a, b);
    assert!(a.iter().all(Option::is_some));
}

/// Differential contract for model-checking replays: the event engine
/// and the pre-refactor legacy engine produce identical reports when
/// replaying a violation script (and padded/truncated variants of it),
/// so counterexamples found before the refactor replay unchanged.
#[test]
fn mc_violation_scripts_replay_identically_on_both_engines() {
    let (layout, _, factory) = broken_instance();
    let scripts: [&[usize]; 5] = [
        &[0, 0, 1, 1],
        &[1, 1, 0, 0],
        &[0, 1, 0, 1],
        // Padded with free slots to a finished process.
        &[0, 0, 0, 0, 1, 1, 0, 1],
        // Truncated mid-protocol: both stop exhausted with pending state.
        &[0, 1],
    ];
    for script in scripts {
        let old =
            LegacyEngine::new(&layout, factory()).run(FixedSchedule::from_indices(script.to_vec()));
        let new = Engine::new(&layout, factory()).run(FixedSchedule::from_indices(script.to_vec()));
        assert_eq!(old.outputs, new.outputs, "script {script:?}");
        assert_eq!(old.metrics, new.metrics, "script {script:?}");
        assert_eq!(old.stop_reason, new.stop_reason, "script {script:?}");
    }
}

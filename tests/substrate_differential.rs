//! Differential testing of the two shared-memory substrates.
//!
//! `sift-shmem` ships a lock-free substrate (the default) and the
//! original lock-based one (kept behind the `coarse-substrate` feature
//! for exactly this purpose). Both types are always compiled, so one
//! binary can drive the *same* deterministic lockstep schedule through
//! each and demand observational equality: identical operation results
//! on raw workloads, and identical conciliator outcomes end to end. Any
//! divergence would mean one substrate is not implementing the atomic
//! object semantics the protocols are verified against.

use sift::core::{Conciliator, Epsilon, SiftingConciliator, SnapshotConciliator};
use sift::shmem::{run_lockstep_on, run_script_on, AtomicMemory, CoarseMemory, LockFreeMemory};
use sift::sim::mc::replay_report;
use sift::sim::rng::{SeedSplitter, Xoshiro256StarStar};
use sift::sim::{LayoutBuilder, Op, OpResult, Process, ProcessId, Step, Value};
use sift_bench::fuzz::{run_fuzz, FuzzConfig};

/// Raw-operation differential: every operation of a seeded mixed
/// workload must produce byte-identical results on both substrates when
/// executed in the same sequential order.
#[test]
fn raw_operations_agree_across_substrates() {
    for seed in 0..10u64 {
        let mut b = LayoutBuilder::new();
        let registers = b.registers(3);
        let snapshot = b.snapshot(4);
        let max_regs = b.max_registers(2);
        let layout = b.build();
        let lockfree: LockFreeMemory<u64> = LockFreeMemory::new(&layout);
        let coarse: CoarseMemory<u64> = CoarseMemory::new(&layout);
        let mut rng = SeedSplitter::new(seed).stream("raw-diff", 0);
        for step in 0..200 {
            let op = match rng.range_u64(6) {
                0 => Op::RegisterRead(registers[rng.range_u64(3) as usize]),
                1 => Op::RegisterWrite(registers[rng.range_u64(3) as usize], rng.next_u64() % 100),
                2 => Op::SnapshotUpdate(snapshot, rng.range_u64(4) as usize, rng.next_u64() % 100),
                3 => Op::SnapshotScan(snapshot),
                4 => Op::MaxRead(max_regs[rng.range_u64(2) as usize]),
                _ => Op::MaxWrite(
                    max_regs[rng.range_u64(2) as usize],
                    rng.range_u64(8),
                    rng.next_u64() % 100,
                ),
            };
            // `OpResult` carries `ScanView`s, which have no `PartialEq`;
            // the derived `Debug` rendering is a faithful value image.
            let a = format!("{:?}", lockfree.execute(op.clone()));
            let b = format!("{:?}", coarse.execute(op.clone()));
            assert_eq!(a, b, "seed {seed}, step {step}, op {op:?}");
        }
    }
}

/// A pre-generated operation sequence over an arbitrary value type
/// that logs the `Debug` rendering of every result it receives — so
/// two substrates driven through the same schedule can be compared
/// operation by operation, not just on their final state.
#[derive(Clone)]
struct ObservingWorkload<V> {
    ops: Vec<Op<V>>,
    next: usize,
    log: Vec<String>,
}

impl<V: Value> Process for ObservingWorkload<V> {
    type Value = V;
    type Output = Vec<String>;

    fn step(&mut self, prev: Option<OpResult<V>>) -> Step<V, Vec<String>> {
        if let Some(r) = prev {
            self.log.push(format!("{r:?}"));
        }
        if self.next < self.ops.len() {
            self.next += 1;
            Step::Issue(self.ops[self.next - 1].clone())
        } else {
            Step::Done(self.log.clone())
        }
    }
}

/// Builds per-process register/max-register workloads over value type
/// `V` for the interleaved differentials below.
fn typed_workloads<V: Value>(
    seed: u64,
    n: usize,
    ops_per_proc: usize,
    regs: &[sift::sim::RegisterId],
    max_regs: &[sift::sim::MaxRegisterId],
    mut value: impl FnMut(u64) -> V,
) -> Vec<ObservingWorkload<V>> {
    let split = SeedSplitter::new(seed);
    (0..n)
        .map(|i| {
            let mut rng = split.stream("typed-diff", i as u64);
            let ops = (0..ops_per_proc)
                .map(|_| match rng.range_u64(4) {
                    0 => Op::RegisterRead(regs[rng.range_u64(regs.len() as u64) as usize]),
                    1 => Op::RegisterWrite(
                        regs[rng.range_u64(regs.len() as u64) as usize],
                        value(rng.next_u64() % 100),
                    ),
                    2 => Op::MaxRead(max_regs[rng.range_u64(max_regs.len() as u64) as usize]),
                    _ => Op::MaxWrite(
                        max_regs[rng.range_u64(max_regs.len() as u64) as usize],
                        rng.range_u64(16),
                        value(rng.next_u64() % 100),
                    ),
                })
                .collect();
            ObservingWorkload {
                ops,
                next: 0,
                log: Vec::new(),
            }
        })
        .collect()
}

/// The inline register paths under randomized interleavings: a seeded
/// random schedule script drives the same per-process workloads
/// through the lock-free substrate (seqlock registers + combining max
/// registers for these payloads) and the lock-based references, and
/// every operation result must agree. The payload fills both inline
/// words, so a torn read or a lost combining write would diverge here
/// with a replayable (seed, script) witness.
#[test]
fn interleaved_inline_workloads_agree_across_substrates() {
    run_interleaved_differential("inline", |v| (v, v.wrapping_mul(3)));
}

/// The same randomized-interleaving differential for oversized
/// payloads, pinning the pointer-publication paths behind the new
/// representation dispatch.
#[test]
fn interleaved_oversized_workloads_agree_across_substrates() {
    run_interleaved_differential("oversized", |v| [v, v + 1, v + 2]);
}

fn run_interleaved_differential<V: Value + PartialEq>(tag: &str, mut value: impl FnMut(u64) -> V) {
    let (n, ops_per_proc) = (4, 12);
    for seed in 0..10u64 {
        let mut b = LayoutBuilder::new();
        let regs = b.registers(2);
        let max_regs = b.max_registers(2);
        let layout = b.build();
        // A random schedule long enough to drain every process, with
        // deliberately uneven process frequencies (solo bursts and
        // stragglers both occur across seeds).
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0x5EED);
        let script: Vec<usize> = (0..n * (ops_per_proc + 2) * 2)
            .map(|_| rng.range_u64(n as u64) as usize)
            .collect();
        let mut make = |s| typed_workloads(s, n, ops_per_proc, &regs, &max_regs, &mut value);
        let on_lockfree = run_script_on(&LockFreeMemory::new(&layout), make(seed), &script);
        let on_coarse = run_script_on(&CoarseMemory::new(&layout), make(seed), &script);
        assert_eq!(on_lockfree, on_coarse, "{tag}, seed {seed}");
        assert!(
            on_lockfree.iter().any(|o| o.is_some()),
            "{tag}, seed {seed}: schedule drained no process at all"
        );
    }
}

/// Genuinely threaded combining-max differential: unique keys make the
/// final state deterministic, so after all writers join, the combining
/// register must hold exactly what the lock-based reference holds
/// after the same (sequentially applied) write set.
#[test]
fn threaded_combining_max_final_state_matches_lock_reference() {
    use sift::shmem::max_register::{LockFreeMaxRegister, LockMaxRegister};
    use std::sync::Arc;

    let (threads, writes) = (8u64, 400u64);
    let combining: Arc<LockFreeMaxRegister<(u32, u32)>> = Arc::new(LockFreeMaxRegister::new());
    assert!(combining.is_combining());
    let reference: LockMaxRegister<(u32, u32)> = LockMaxRegister::new();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let combining = Arc::clone(&combining);
            std::thread::spawn(move || {
                // Interleave key ranges across threads so the running
                // maximum keeps changing hands.
                for k in 0..writes {
                    let key = k * threads + t;
                    combining.write(key, (t as u32, k as u32));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for t in 0..threads {
        for k in 0..writes {
            reference.write(k * threads + t, (t as u32, k as u32));
        }
    }
    assert_eq!(combining.read(), reference.read());
}

/// The sifting conciliator, run in lockstep from identical seeds, must
/// produce identical personas on both substrates.
#[test]
fn sifting_conciliator_outcomes_agree_across_substrates() {
    let n = 8;
    for seed in 0..10u64 {
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        let make_procs = || {
            let split = SeedSplitter::new(seed);
            (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), i as u64, &mut rng)
                })
                .collect::<Vec<_>>()
        };
        let on_lockfree = run_lockstep_on(&LockFreeMemory::new(&layout), make_procs());
        let on_coarse = run_lockstep_on(&CoarseMemory::new(&layout), make_procs());
        assert_eq!(on_lockfree, on_coarse, "seed {seed}");
    }
}

/// The fuzzer's coverage-novel schedules, replayed as differential
/// inputs: every corpus script — an adversary interleaving the fuzzer
/// found interesting enough to keep — must drive both substrates *and*
/// the simulator engine to identical decisions (and hence identical
/// survivor sets). Coverage-guided schedules exercise interleavings
/// hand-written differential seeds never reach: solo bursts, stalled
/// front-runners, crash-truncated prefixes.
///
/// Runs against the [`AtomicMemory`] alias, so executing the test suite
/// once with the default substrate and once under
/// `--features coarse-substrate` (the `just test-coarse` tier) is the
/// cross-configuration half of the differential.
#[test]
fn fuzz_corpus_replays_agree_across_substrates_and_engine() {
    let config = FuzzConfig {
        n: 6,
        generations: 4,
        population: 8,
        seed: 0xD1FF,
        ..FuzzConfig::default()
    };
    let campaign = run_fuzz(&config);
    assert!(
        campaign.violations.is_empty(),
        "the unmodified sifter must be clean: {}",
        campaign.violations[0]
    );
    assert!(
        !campaign.corpus_scripts.is_empty(),
        "corpus must not be empty"
    );

    let mut b = LayoutBuilder::new();
    let c = SiftingConciliator::allocate(&mut b, config.n, Epsilon::HALF);
    let layout = b.build();
    let make_procs = |seed: u64| {
        let split = SeedSplitter::new(seed);
        (0..config.n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect::<Vec<_>>()
    };

    for (idx, script) in campaign.corpus_scripts.iter().enumerate() {
        // Corpus scripts name processes 0..n of the campaign's size.
        let seed = 900 + idx as u64;
        let on_engine = replay_report(&layout, make_procs(seed), script).outputs;
        let on_atomic = run_script_on(&AtomicMemory::new(&layout), make_procs(seed), script);
        let on_lockfree = run_script_on(&LockFreeMemory::new(&layout), make_procs(seed), script);
        let on_coarse = run_script_on(&CoarseMemory::new(&layout), make_procs(seed), script);
        assert_eq!(
            on_engine, on_atomic,
            "corpus script {idx}: engine vs atomic"
        );
        assert_eq!(
            on_lockfree, on_coarse,
            "corpus script {idx}: lock-free vs coarse"
        );
        // Survivor sets: the distinct decided personas must coincide.
        // Personas are identified by their origin process (no Ord on
        // the full struct), which is exactly the survivor identity the
        // round histories track.
        let survivors = |outs: &[Option<sift::core::Persona>]| {
            let mut s: Vec<_> = outs.iter().flatten().map(|p| p.origin()).collect();
            s.sort();
            s.dedup();
            s
        };
        assert_eq!(
            survivors(&on_engine),
            survivors(&on_coarse),
            "corpus script {idx}: survivor sets diverge"
        );
    }
}

/// Regular-register mode with every overlap resolved to the new value
/// is observationally atomic, so replaying the fuzz corpus scripts
/// through the simulator under `Regular(AlwaysNew)` must reproduce the
/// atomic replays bit for bit — the simulator-side analogue of the
/// substrate differentials above, on exactly the coverage-novel
/// interleavings the fuzzer found interesting.
#[test]
fn fuzz_corpus_replays_agree_between_atomic_and_always_new_regular() {
    use sift::sim::schedule::FixedSchedule;
    use sift::sim::{RegisterSemantics, Resolution};

    let config = FuzzConfig {
        n: 6,
        generations: 4,
        population: 8,
        seed: 0xA70_11C,
        ..FuzzConfig::default()
    };
    let campaign = run_fuzz(&config);
    assert!(campaign.violations.is_empty());
    assert!(!campaign.corpus_scripts.is_empty());

    let mut b = LayoutBuilder::new();
    let c = SiftingConciliator::allocate(&mut b, config.n, Epsilon::HALF);
    let layout = b.build();
    let make_procs = |seed: u64| {
        let split = SeedSplitter::new(seed);
        (0..config.n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect::<Vec<_>>()
    };

    for (idx, script) in campaign.corpus_scripts.iter().enumerate() {
        let seed = 7100 + idx as u64;
        let replay_under = |semantics: RegisterSemantics| {
            let mut engine = sift::sim::Engine::new(&layout, make_procs(seed));
            engine.enable_trace();
            engine.set_register_semantics(semantics);
            engine.run(FixedSchedule::from_indices(script.iter().copied()))
        };
        let atomic = replay_under(RegisterSemantics::Atomic);
        let regular = replay_under(RegisterSemantics::Regular(Resolution::AlwaysNew));
        assert_eq!(
            atomic.outputs, regular.outputs,
            "corpus script {idx}: outputs diverge"
        );
        assert_eq!(
            atomic.metrics, regular.metrics,
            "corpus script {idx}: metrics diverge"
        );
        assert_eq!(
            atomic.trace.as_ref().map(|t| t.events()),
            regular.trace.as_ref().map(|t| t.events()),
            "corpus script {idx}: traces diverge"
        );
    }
}

/// Same differential for the snapshot conciliator, whose scan-heavy
/// access pattern exercises the copy-on-write scan views hardest.
#[test]
fn snapshot_conciliator_outcomes_agree_across_substrates() {
    let n = 6;
    for seed in 0..10u64 {
        let mut b = LayoutBuilder::new();
        let c = SnapshotConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        let make_procs = || {
            let split = SeedSplitter::new(seed);
            (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), 100 + i as u64, &mut rng)
                })
                .collect::<Vec<_>>()
        };
        let on_lockfree = run_lockstep_on(&LockFreeMemory::new(&layout), make_procs());
        let on_coarse = run_lockstep_on(&CoarseMemory::new(&layout), make_procs());
        assert_eq!(on_lockfree, on_coarse, "seed {seed}");
    }
}

/// Service-path differential: a whole sharded multi-instance service
/// run — batching, idempotence table, phase-escalating attempts and
/// all — must produce the *identical* commit-fact stream on both
/// substrates. This is the end-to-end version of the conciliator
/// differentials above: any substrate divergence that survives the
/// protocol stack would surface here as a different decided value,
/// batch shape, or attempt count, and the stream digest covers all of
/// them.
#[test]
fn service_commit_streams_agree_across_substrates() {
    use sift::core::Persona;
    use sift::service::det::{uniform_script, DeterministicService};
    use sift::service::ShardConfig;

    for seed in 0..5u64 {
        let script = uniform_script(seed, 250, 30, 6);
        let run_on = |streams: &mut Vec<Vec<sift::service::CommitFact>>, coarse: bool| {
            let config = ShardConfig {
                seed,
                ..ShardConfig::default()
            };
            // Tick every 8 proposals so batches actually form.
            if coarse {
                let mut svc = DeterministicService::<CoarseMemory<Persona>>::new(4, config);
                svc.run_script(&script, 8);
                streams.push(svc.stream().to_vec());
            } else {
                let mut svc = DeterministicService::<LockFreeMemory<Persona>>::new(4, config);
                svc.run_script(&script, 8);
                streams.push(svc.stream().to_vec());
            }
        };
        let mut streams = Vec::new();
        run_on(&mut streams, false);
        run_on(&mut streams, true);
        assert_eq!(
            streams[0], streams[1],
            "seed {seed}: service commit-fact streams diverge across substrates"
        );
    }
}

//! Differential testing of the two shared-memory substrates.
//!
//! `sift-shmem` ships a lock-free substrate (the default) and the
//! original lock-based one (kept behind the `coarse-substrate` feature
//! for exactly this purpose). Both types are always compiled, so one
//! binary can drive the *same* deterministic lockstep schedule through
//! each and demand observational equality: identical operation results
//! on raw workloads, and identical conciliator outcomes end to end. Any
//! divergence would mean one substrate is not implementing the atomic
//! object semantics the protocols are verified against.

use sift::core::{Conciliator, Epsilon, SiftingConciliator, SnapshotConciliator};
use sift::shmem::{run_lockstep_on, CoarseMemory, LockFreeMemory};
use sift::sim::rng::SeedSplitter;
use sift::sim::{LayoutBuilder, Op, ProcessId};

/// Raw-operation differential: every operation of a seeded mixed
/// workload must produce byte-identical results on both substrates when
/// executed in the same sequential order.
#[test]
fn raw_operations_agree_across_substrates() {
    for seed in 0..10u64 {
        let mut b = LayoutBuilder::new();
        let registers = b.registers(3);
        let snapshot = b.snapshot(4);
        let max_regs = b.max_registers(2);
        let layout = b.build();
        let lockfree: LockFreeMemory<u64> = LockFreeMemory::new(&layout);
        let coarse: CoarseMemory<u64> = CoarseMemory::new(&layout);
        let mut rng = SeedSplitter::new(seed).stream("raw-diff", 0);
        for step in 0..200 {
            let op = match rng.range_u64(6) {
                0 => Op::RegisterRead(registers[rng.range_u64(3) as usize]),
                1 => Op::RegisterWrite(registers[rng.range_u64(3) as usize], rng.next_u64() % 100),
                2 => Op::SnapshotUpdate(snapshot, rng.range_u64(4) as usize, rng.next_u64() % 100),
                3 => Op::SnapshotScan(snapshot),
                4 => Op::MaxRead(max_regs[rng.range_u64(2) as usize]),
                _ => Op::MaxWrite(
                    max_regs[rng.range_u64(2) as usize],
                    rng.range_u64(8),
                    rng.next_u64() % 100,
                ),
            };
            // `OpResult` carries `ScanView`s, which have no `PartialEq`;
            // the derived `Debug` rendering is a faithful value image.
            let a = format!("{:?}", lockfree.execute(op.clone()));
            let b = format!("{:?}", coarse.execute(op.clone()));
            assert_eq!(a, b, "seed {seed}, step {step}, op {op:?}");
        }
    }
}

/// The sifting conciliator, run in lockstep from identical seeds, must
/// produce identical personas on both substrates.
#[test]
fn sifting_conciliator_outcomes_agree_across_substrates() {
    let n = 8;
    for seed in 0..10u64 {
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        let make_procs = || {
            let split = SeedSplitter::new(seed);
            (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), i as u64, &mut rng)
                })
                .collect::<Vec<_>>()
        };
        let on_lockfree = run_lockstep_on(&LockFreeMemory::new(&layout), make_procs());
        let on_coarse = run_lockstep_on(&CoarseMemory::new(&layout), make_procs());
        assert_eq!(on_lockfree, on_coarse, "seed {seed}");
    }
}

/// Same differential for the snapshot conciliator, whose scan-heavy
/// access pattern exercises the copy-on-write scan views hardest.
#[test]
fn snapshot_conciliator_outcomes_agree_across_substrates() {
    let n = 6;
    for seed in 0..10u64 {
        let mut b = LayoutBuilder::new();
        let c = SnapshotConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        let make_procs = || {
            let split = SeedSplitter::new(seed);
            (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), 100 + i as u64, &mut rng)
                })
                .collect::<Vec<_>>()
        };
        let on_lockfree = run_lockstep_on(&LockFreeMemory::new(&layout), make_procs());
        let on_coarse = run_lockstep_on(&CoarseMemory::new(&layout), make_procs());
        assert_eq!(on_lockfree, on_coarse, "seed {seed}");
    }
}

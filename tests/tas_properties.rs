// Needs the external `proptest` crate: compiled only with `--features proptest-tests`.
#![cfg(feature = "proptest-tests")]
//! Property-based tests of the test-and-set family across schedules,
//! sizes, and crash patterns.

use proptest::prelude::*;

use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::{CrashSubset, RandomInterleave, Schedule, ScheduleKind};
use sift::sim::{Engine, LayoutBuilder, ProcessId};
use sift::tas::{check_tas_properties, SiftingTas, TasOutcome, TournamentTas, TwoProcessTas};

fn schedule_kind() -> impl Strategy<Value = ScheduleKind> {
    prop_oneof![
        Just(ScheduleKind::RoundRobin),
        Just(ScheduleKind::RandomInterleave),
        Just(ScheduleKind::BlockSequential),
        Just(ScheduleKind::BlockRotation),
        Just(ScheduleKind::Stutter),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sifting test-and-set: exactly one winner whenever everyone
    /// finishes, for any size and schedule family.
    #[test]
    fn sifting_tas_has_exactly_one_winner(
        n in 1usize..20,
        kind in schedule_kind(),
        seed in 0u64..100_000,
    ) {
        let mut b = LayoutBuilder::new();
        let tas = SiftingTas::allocate(&mut b, n);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| tas.participant(ProcessId(i), &mut split.stream("process", i as u64)))
            .collect();
        let report = Engine::new(&layout, procs).run(kind.build(n, split.seed("schedule", 0)));
        prop_assert!(report.outputs.iter().all(Option::is_some), "termination");
        check_tas_properties(&report.outputs);
    }

    /// The tournament alone: same guarantee.
    #[test]
    fn tournament_tas_has_exactly_one_winner(
        n in 1usize..16,
        kind in schedule_kind(),
        seed in 0u64..100_000,
    ) {
        let mut b = LayoutBuilder::new();
        let tas = TournamentTas::allocate(&mut b, n);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| tas.participant(ProcessId(i), &mut split.stream("process", i as u64)))
            .collect();
        let report = Engine::new(&layout, procs).run(kind.build(n, split.seed("schedule", 0)));
        check_tas_properties(&report.outputs);
    }

    /// Crash tolerance: at most one winner among survivors; every
    /// survivor terminates.
    #[test]
    fn sifting_tas_tolerates_crashes(
        n in 2usize..16,
        fraction in 0.0f64..0.9,
        seed in 0u64..100_000,
    ) {
        let mut b = LayoutBuilder::new();
        let tas = SiftingTas::allocate(&mut b, n);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let schedule = CrashSubset::random(
            RandomInterleave::new(n, split.seed("schedule", 0)),
            n,
            fraction,
            split.seed("crashes", 0),
        );
        let live = schedule.support().len();
        let procs: Vec<_> = (0..n)
            .map(|i| tas.participant(ProcessId(i), &mut split.stream("process", i as u64)))
            .collect();
        let report = Engine::new(&layout, procs).run(schedule);
        let finished = report.outputs.iter().flatten().count();
        prop_assert_eq!(finished, live, "all live processes must finish");
        let winners = report
            .outputs
            .iter()
            .flatten()
            .filter(|o| o.is_win())
            .count();
        prop_assert!(winners <= 1, "{} winners", winners);
    }

    /// Two-process node: the loser never wins against a solo winner.
    #[test]
    fn two_process_tas_is_safe(
        kind in schedule_kind(),
        seed in 0u64..100_000,
        both in any::<bool>(),
    ) {
        let mut b = LayoutBuilder::new();
        let tas = TwoProcessTas::allocate(&mut b);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let mut procs = vec![tas.participant(false, &mut split.stream("process", 0))];
        if both {
            procs.push(tas.participant(true, &mut split.stream("process", 1)));
        }
        let n = procs.len();
        let report = Engine::new(&layout, procs).run(kind.build(n, split.seed("schedule", 0)));
        check_tas_properties(&report.outputs);
        if !both {
            prop_assert_eq!(report.outputs[0], Some(TasOutcome::Won), "solo always wins");
        }
    }
}

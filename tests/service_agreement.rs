//! Service-level agreement: the consensus-as-a-service frontend must
//! preserve the protocol stack's guarantees per *instance* while many
//! asynchronous clients hammer many instances at once.
//!
//! Each test drives N concurrent clients (async tasks on the in-tree
//! [`Pool`] executor — the offline stand-in for a tokio runtime)
//! proposing conflicting values across K instances, then asserts, per
//! instance:
//!
//! * **agreement / decide-exactly-once** — every client observes the
//!   same commit fact, and the shard table records exactly one decision;
//! * **validity** — the decided value is one of the values actually
//!   proposed for that instance;
//! * **idempotence** — a repeat proposal to a decided instance returns
//!   the *original* commit fact, byte for byte.
//!
//! The whole suite runs at worker counts 1, 4, and 8, since the shard
//! scheduler degenerates differently at each (single worker = strictly
//! sequential ticks; workers > shards = idle spinners).

use std::collections::HashMap;
use std::sync::Arc;

use sift::service::runtime::{block_on, Pool};
use sift::service::{CommitFact, InstanceId, Service, ServiceConfig, ShardConfig};

/// Worker counts every scenario is exercised at (acceptance criterion).
const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

fn service(workers: usize, shards: usize, seed: u64) -> Service {
    Service::start(ServiceConfig {
        shards,
        workers,
        shard: ShardConfig {
            seed,
            ..ShardConfig::default()
        },
    })
}

/// Runs `clients` async tasks, each proposing its own conflicting value
/// to every one of `instances` instances, and returns each client's
/// observed facts, keyed by instance.
fn conflicting_clients(
    service: &Arc<Service>,
    clients: usize,
    instances: u64,
) -> Vec<HashMap<InstanceId, CommitFact>> {
    let pool = Pool::new(clients.min(8));
    let handles: Vec<_> = (0..clients)
        .map(|client| {
            let service = Arc::clone(service);
            pool.spawn(async move {
                let mut observed = HashMap::new();
                for raw in 0..instances {
                    let instance = InstanceId(raw);
                    // Client c proposes value c: every instance sees a
                    // full spread of conflicting proposals.
                    let fact = service
                        .propose(instance, client as u64)
                        .await
                        .expect("proposal must resolve");
                    observed.insert(instance, fact);
                }
                observed
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join()).collect()
}

#[test]
fn concurrent_conflicting_clients_agree_per_instance() {
    for workers in WORKER_COUNTS {
        let clients = 6;
        let instances = 40u64;
        let service = Arc::new(service(workers, 4, 0xA6));
        let observed = conflicting_clients(&service, clients, instances);

        for raw in 0..instances {
            let instance = InstanceId(raw);
            let first = &observed[0][&instance];
            // Agreement: all clients saw the same commit fact.
            for (client, view) in observed.iter().enumerate() {
                assert_eq!(
                    view[&instance], *first,
                    "workers={workers}: client {client} diverged on {instance}"
                );
            }
            // Validity: the decision is one of the proposed values.
            assert!(
                (first.value as usize) < clients,
                "workers={workers}: {instance} decided unproposed value {}",
                first.value
            );
        }

        // Decide-exactly-once: the shard tables hold exactly one fact
        // per instance, nothing pending, nothing leaked.
        let service = Arc::try_unwrap(service).ok().expect("all clients joined");
        let stats = service.stats();
        assert_eq!(stats.decided, instances as usize, "workers={workers}");
        assert_eq!(stats.pending, 0, "workers={workers}");
        assert_eq!(stats.waiters, 0, "workers={workers}");
        let obs = service.shutdown();
        assert_eq!(obs.count("service.decided"), instances, "workers={workers}");
        assert_eq!(
            obs.count("service.proposals"),
            clients as u64 * instances,
            "workers={workers}"
        );
    }
}

#[test]
fn repeat_proposals_return_the_original_fact() {
    for workers in WORKER_COUNTS {
        let service = service(workers, 3, 0x1D);
        let instance = InstanceId(7);
        let original = service
            .propose_sync(instance, 11)
            .expect("first proposal decides");
        assert_eq!(original.value, 11, "workers={workers}: singleton validity");

        // Any later proposal — same value, different value, async or
        // sync — answers with the original fact, unchanged metadata
        // included.
        for (attempt, value) in [(0u64, 11u64), (1, 99), (2, 0)] {
            let repeat = block_on(service.propose(instance, value));
            assert_eq!(
                repeat.as_ref().expect("idempotent hit resolves"),
                &original,
                "workers={workers}: repeat #{attempt} must echo the original fact"
            );
        }
        let obs = service.shutdown();
        assert_eq!(obs.count("service.decided"), 1, "workers={workers}");
        assert_eq!(obs.count("service.idempotent"), 3, "workers={workers}");
    }
}

#[test]
fn interleaved_instances_decide_independently() {
    for workers in WORKER_COUNTS {
        // More shards than workers and more instances than shards:
        // every shard multiplexes several instances per tick.
        let service = Arc::new(service(workers, 8, 0x5EED));
        let pool = Pool::new(4);
        let instances = 64u64;
        let handles: Vec<_> = (0..4usize)
            .map(|client| {
                let service = Arc::clone(&service);
                pool.spawn(async move {
                    // Stripe instances across clients in different
                    // orders so shard inboxes interleave instances.
                    let mut facts = Vec::new();
                    for step in 0..instances {
                        let raw = (step * 17 + client as u64 * 13) % instances;
                        let fact = service
                            .propose(InstanceId(raw), client as u64 + 100)
                            .await
                            .expect("proposal resolves");
                        facts.push((InstanceId(raw), fact));
                    }
                    facts
                })
            })
            .collect();
        let mut by_instance: HashMap<InstanceId, CommitFact> = HashMap::new();
        for handle in handles {
            for (instance, fact) in handle.join() {
                match by_instance.entry(instance) {
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(fact);
                    }
                    std::collections::hash_map::Entry::Occupied(slot) => {
                        assert_eq!(slot.get(), &fact, "workers={workers}: {instance}");
                    }
                }
            }
        }
        assert_eq!(by_instance.len(), instances as usize);
        for fact in by_instance.values() {
            assert!(
                (100..104).contains(&fact.value),
                "workers={workers}: unproposed value {}",
                fact.value
            );
        }
        let service = Arc::try_unwrap(service).ok().expect("all clients joined");
        assert_eq!(service.stats().decided, instances as usize);
        service.shutdown();
    }
}

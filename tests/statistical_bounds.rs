//! Statistical integration tests: the paper's quantitative guarantees,
//! measured end to end with enough trials to be decisive but few enough
//! to keep `cargo test` fast. (The full sweeps live in `sift-bench`.)

use sift::core::analysis::{lemma1_expected_excess, sifting_expected_excess};
use sift::core::{
    distinct_per_round, Conciliator, EmbeddedConciliator, Epsilon, RoundHistory,
    SiftingConciliator, SnapshotConciliator,
};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::RandomInterleave;
use sift::sim::{Engine, LayoutBuilder, ProcessId};

fn run_survivors<C>(
    n: usize,
    seed: u64,
    build: impl FnOnce(&mut LayoutBuilder) -> C,
) -> (Vec<usize>, bool, u64)
where
    C: Conciliator,
    C::Participant: RoundHistory,
{
    let mut b = LayoutBuilder::new();
    let c = build(&mut b);
    let layout = b.build();
    let split = SeedSplitter::new(seed);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let report = Engine::new(&layout, procs).run(RandomInterleave::new(
        n,
        split.seed("schedule", 0),
    ));
    let counts = distinct_per_round(report.processes.iter().map(|p| p.history()));
    let total = report.metrics.total_steps;
    let agreed = {
        use std::collections::HashSet;
        let outs: HashSet<_> = report.decided().map(|p| p.origin()).collect();
        outs.len() == 1
    };
    (counts, agreed, total)
}

/// Lemma 1, measured: the mean excess after each round of Algorithm 1
/// stays within the iterated-f bound (with sampling slack).
#[test]
fn lemma1_decay_holds_at_n_128() {
    let n = 128;
    let trials = 60;
    let mut sums = vec![0.0f64; 64];
    let mut rounds = 0;
    for seed in 0..trials {
        let (counts, _, _) = run_survivors(n, seed, |b| {
            SnapshotConciliator::allocate(b, n, Epsilon::HALF)
        });
        rounds = counts.len();
        for (i, &c) in counts.iter().enumerate() {
            sums[i] += (c - 1) as f64;
        }
    }
    for (i, sum) in sums.iter().enumerate().take(rounds) {
        let mean = sum / trials as f64;
        let bound = lemma1_expected_excess(n as u64, (i + 1) as u32);
        assert!(
            mean <= bound * 1.25,
            "round {}: measured {mean} vs bound {bound}",
            i + 1
        );
    }
}

/// Lemmas 3–4, measured: sifting excess follows x_i = 2√x_{i-1} then a
/// (3/4)-geometric tail.
#[test]
fn sifting_decay_holds_at_n_512() {
    let n = 512;
    let trials = 60;
    let mut sums = vec![0.0f64; 64];
    let mut rounds = 0;
    for seed in 0..trials {
        let (counts, _, _) = run_survivors(n, seed, |b| {
            SiftingConciliator::allocate(b, n, Epsilon::HALF)
        });
        rounds = counts.len();
        for (i, &c) in counts.iter().enumerate() {
            sums[i] += (c - 1) as f64;
        }
    }
    for (i, sum) in sums.iter().enumerate().take(rounds) {
        let mean = sum / trials as f64;
        let bound = sifting_expected_excess(n as u64, (i + 1) as u32);
        assert!(
            mean <= bound * 1.25,
            "round {}: measured {mean} vs bound {bound}",
            i + 1
        );
    }
}

/// Theorem 3, measured: Algorithm 3's expected total work is linear
/// with a small constant, and agreement beats 1/8 comfortably.
#[test]
fn theorem3_total_work_and_agreement() {
    let n = 256;
    let trials = 30;
    let mut total = 0u64;
    let mut agreements = 0;
    for seed in 0..trials {
        let mut b = LayoutBuilder::new();
        let c = EmbeddedConciliator::allocate(&mut b, n);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        let report = Engine::new(&layout, procs).run(RandomInterleave::new(
            n,
            split.seed("schedule", 0),
        ));
        total += report.metrics.total_steps;
        use std::collections::HashSet;
        let outs: HashSet<_> = report.decided().map(|p| p.origin()).collect();
        agreements += u64::from(outs.len() == 1);
    }
    let mean_total = total as f64 / trials as f64;
    assert!(
        mean_total < 30.0 * n as f64,
        "mean total {mean_total} not linear for n={n}"
    );
    assert!(
        agreements as f64 >= trials as f64 / 8.0,
        "agreement {agreements}/{trials} below 1/8"
    );
}

/// Theorems 1 and 2, measured at ε = 1/4: disagreement stays below ε.
#[test]
fn epsilon_budgets_are_respected() {
    let n = 32;
    let trials = 400;
    let eps = Epsilon::QUARTER;
    let mut disagree_snapshot = 0;
    let mut disagree_sifting = 0;
    for seed in 0..trials {
        let (_, agreed, _) = run_survivors(n, seed, |b| {
            SnapshotConciliator::allocate(b, n, eps)
        });
        disagree_snapshot += u64::from(!agreed);
        let (_, agreed, _) = run_survivors(n, seed + 100_000, |b| {
            SiftingConciliator::allocate(b, n, eps)
        });
        disagree_sifting += u64::from(!agreed);
    }
    let budget = (trials as f64 * eps.get()) as u64;
    assert!(
        disagree_snapshot <= budget,
        "Algorithm 1: {disagree_snapshot}/{trials} disagreements exceed ε = 1/4"
    );
    assert!(
        disagree_sifting <= budget,
        "Algorithm 2: {disagree_sifting}/{trials} disagreements exceed ε = 1/4"
    );
}

//! Statistical integration tests: the paper's quantitative guarantees,
//! measured end to end with enough trials to be decisive but few enough
//! to keep `cargo test` fast. (The full sweeps live in `sift-bench`.)
//!
//! Trials fan out over `sift_bench::exec::map_reduce`, so these tests
//! use every core while remaining bit-identical to a serial run.

use sift::core::analysis::{lemma1_expected_excess, sifting_expected_excess};
use sift::core::{
    distinct_per_round, Conciliator, EmbeddedConciliator, Epsilon, RoundHistory,
    SiftingConciliator, SnapshotConciliator,
};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::RandomInterleave;
use sift::sim::{Engine, LayoutBuilder, ProcessId};
use sift_bench::exec::map_reduce;
use sift_bench::stats::RoundExcess;

fn run_survivors<C>(
    n: usize,
    seed: u64,
    build: impl Fn(&mut LayoutBuilder) -> C,
) -> (Vec<usize>, bool, u64)
where
    C: Conciliator,
    C::Participant: RoundHistory,
{
    let mut b = LayoutBuilder::new();
    let c = build(&mut b);
    let layout = b.build();
    let split = SeedSplitter::new(seed);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let report =
        Engine::new(&layout, procs).run(RandomInterleave::new(n, split.seed("schedule", 0)));
    let counts = distinct_per_round(report.processes.iter().map(|p| p.history()));
    let total = report.metrics.total_steps;
    let agreed = {
        use std::collections::HashSet;
        let outs: HashSet<_> = report.decided().map(|p| p.origin()).collect();
        outs.len() == 1
    };
    (counts, agreed, total)
}

fn mean_excess<C>(
    n: usize,
    trials: usize,
    build: impl Fn(&mut LayoutBuilder) -> C + Sync,
) -> Vec<f64>
where
    C: Conciliator,
    C::Participant: RoundHistory,
{
    map_reduce(
        trials,
        |seed| run_survivors(n, seed, &build).0,
        RoundExcess::new,
        |acc, counts| acc.record(&counts),
    )
    .means()
}

/// Lemma 1, measured: the mean excess after each round of Algorithm 1
/// stays within the iterated-f bound (with sampling slack).
#[test]
fn lemma1_decay_holds_at_n_128() {
    let n = 128;
    let means = mean_excess(n, 60, |b| {
        SnapshotConciliator::allocate(b, n, Epsilon::HALF)
    });
    assert!(!means.is_empty());
    for (i, &mean) in means.iter().enumerate() {
        let bound = lemma1_expected_excess(n as u64, (i + 1) as u32);
        assert!(
            mean <= bound * 1.25,
            "round {}: measured {mean} vs bound {bound}",
            i + 1
        );
    }
}

/// Lemmas 3–4, measured: sifting excess follows x_i = 2√x_{i-1} then a
/// (3/4)-geometric tail.
#[test]
fn sifting_decay_holds_at_n_512() {
    let n = 512;
    let means = mean_excess(n, 60, |b| SiftingConciliator::allocate(b, n, Epsilon::HALF));
    assert!(!means.is_empty());
    for (i, &mean) in means.iter().enumerate() {
        let bound = sifting_expected_excess(n as u64, (i + 1) as u32);
        assert!(
            mean <= bound * 1.25,
            "round {}: measured {mean} vs bound {bound}",
            i + 1
        );
    }
}

/// Theorem 3, measured: Algorithm 3's expected total work is linear
/// with a small constant, and agreement beats 1/8 comfortably.
#[test]
fn theorem3_total_work_and_agreement() {
    let n = 256;
    let trials = 30usize;
    let (total, agreements) = map_reduce(
        trials,
        |seed| {
            let mut b = LayoutBuilder::new();
            let c = EmbeddedConciliator::allocate(&mut b, n);
            let layout = b.build();
            let split = SeedSplitter::new(seed);
            let procs: Vec<_> = (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), i as u64, &mut rng)
                })
                .collect();
            let report = Engine::new(&layout, procs)
                .run(RandomInterleave::new(n, split.seed("schedule", 0)));
            use std::collections::HashSet;
            let outs: HashSet<_> = report.decided().map(|p| p.origin()).collect();
            (report.metrics.total_steps, u64::from(outs.len() == 1))
        },
        || (0u64, 0u64),
        |(total, agreements), (t, a)| {
            *total += t;
            *agreements += a;
        },
    );
    let mean_total = total as f64 / trials as f64;
    assert!(
        mean_total < 30.0 * n as f64,
        "mean total {mean_total} not linear for n={n}"
    );
    assert!(
        agreements as f64 >= trials as f64 / 8.0,
        "agreement {agreements}/{trials} below 1/8"
    );
}

/// Theorems 1 and 2, measured at ε = 1/4: disagreement stays below ε.
#[test]
fn epsilon_budgets_are_respected() {
    let n = 32;
    let trials = 400usize;
    let eps = Epsilon::QUARTER;
    let (disagree_snapshot, disagree_sifting) = map_reduce(
        trials,
        |seed| {
            let (_, snap_agreed, _) =
                run_survivors(n, seed, |b| SnapshotConciliator::allocate(b, n, eps));
            let (_, sift_agreed, _) = run_survivors(n, seed + 100_000, |b| {
                SiftingConciliator::allocate(b, n, eps)
            });
            (u64::from(!snap_agreed), u64::from(!sift_agreed))
        },
        || (0u64, 0u64),
        |(snap, sift), (s1, s2)| {
            *snap += s1;
            *sift += s2;
        },
    );
    let budget = (trials as f64 * eps.get()) as u64;
    assert!(
        disagree_snapshot <= budget,
        "Algorithm 1: {disagree_snapshot}/{trials} disagreements exceed ε = 1/4"
    );
    assert!(
        disagree_sifting <= budget,
        "Algorithm 2: {disagree_sifting}/{trials} disagreements exceed ε = 1/4"
    );
}

//! Bounded model checking: enumerate EVERY interleaving of small
//! instances and check safety on each — exhaustive proofs where
//! randomized testing only samples.

use sift::adopt_commit::{
    check_ac_properties, AcOutput, AdoptCommit, DigitAc, FlagsAc, GafniRegisterAc, GafniSnapshotAc,
};
use sift::core::{Conciliator, Epsilon, SiftingConciliator};
use sift::sim::explore::explore;
use sift::sim::rng::SeedSplitter;
use sift::sim::{LayoutBuilder, ProcessId};

/// Every interleaving of two flags-AC proposers, for every proposal
/// pair: 2m+3 = 7 ops each → C(14,7) = 3432 executions per pair.
#[test]
fn flags_ac_is_coherent_under_all_interleavings_of_two() {
    for a in 0u64..2 {
        for b in 0u64..2 {
            let mut builder = LayoutBuilder::new();
            let ac = FlagsAc::allocate(&mut builder, 2);
            let layout = builder.build();
            let procs = vec![
                ac.proposer(ProcessId(0), a, a),
                ac.proposer(ProcessId(1), b, b),
            ];
            let total = explore(&layout, procs, 10_000, &mut |outs: &[Option<
                AcOutput<u64>,
            >]| {
                check_ac_properties(&[a, b], outs);
            })
            .unwrap();
            // Path lengths vary with candidacy; conflicting proposals
            // shorten the raw path, so the count is a range.
            assert!(
                (1000..=3432).contains(&total),
                "proposals ({a},{b}): {total}"
            );
        }
    }
}

/// Every interleaving of two digit-AC proposers (m = 2, base 2: 8 ops
/// each → C(16,8) = 12870 executions per pair).
#[test]
fn digit_ac_is_coherent_under_all_interleavings_of_two() {
    for a in 0u64..2 {
        for b in 0u64..2 {
            let mut builder = LayoutBuilder::new();
            let ac = DigitAc::for_code_space(&mut builder, 2, 2);
            let layout = builder.build();
            let procs = vec![
                ac.proposer(ProcessId(0), a, a),
                ac.proposer(ProcessId(1), b, b),
            ];
            let total = explore(&layout, procs, 20_000, &mut |outs: &[Option<
                AcOutput<u64>,
            >]| {
                check_ac_properties(&[a, b], outs);
            })
            .unwrap();
            assert!(
                (1000..=12_870).contains(&total),
                "proposals ({a},{b}): {total}"
            );
        }
    }
}

/// Every interleaving of two snapshot-Gafni proposers. The candidate
/// path takes 5 ops and the raw path 4, so the execution count varies;
/// safety must hold on all of them.
#[test]
fn gafni_snapshot_ac_is_coherent_under_all_interleavings_of_two() {
    for a in 0u64..2 {
        for b in 0u64..2 {
            let mut builder = LayoutBuilder::new();
            let ac = GafniSnapshotAc::<u64>::allocate(&mut builder, 2, |v| *v);
            let layout = builder.build();
            let procs = vec![
                ac.proposer(ProcessId(0), a, a),
                ac.proposer(ProcessId(1), b, b),
            ];
            let total = explore(&layout, procs, 10_000, &mut |outs: &[Option<
                AcOutput<u64>,
            >]| {
                check_ac_properties(&[a, b], outs);
            })
            .unwrap();
            assert!(total >= 100, "proposals ({a},{b}): {total} executions");
        }
    }
}

/// THREE concurrent snapshot-Gafni proposers, exhaustively: hundreds of
/// thousands of interleavings, every one coherent.
#[test]
fn gafni_snapshot_ac_is_coherent_under_all_interleavings_of_three() {
    // Mixed proposals (0, 1, 0): the hardest case for coherence.
    let proposals = [0u64, 1, 0];
    let mut builder = LayoutBuilder::new();
    let ac = GafniSnapshotAc::<u64>::allocate(&mut builder, 3, |v| *v);
    let layout = builder.build();
    let procs: Vec<_> = proposals
        .iter()
        .enumerate()
        .map(|(i, &c)| ac.proposer(ProcessId(i), c, c))
        .collect();
    let total = explore(&layout, procs, 1_000_000, &mut |outs: &[Option<
        AcOutput<u64>,
    >]| {
        check_ac_properties(&proposals, outs);
    })
    .unwrap();
    assert!(total > 50_000, "{total} executions explored");
}

/// Every interleaving of two register-Gafni proposers (3n+2 = 8 ops
/// worst case at n = 2).
#[test]
fn gafni_register_ac_is_coherent_under_all_interleavings_of_two() {
    for a in 0u64..2 {
        for b in 0u64..2 {
            let mut builder = LayoutBuilder::new();
            let ac = GafniRegisterAc::<u64>::allocate(&mut builder, 2, |v| *v);
            let layout = builder.build();
            let procs = vec![
                ac.proposer(ProcessId(0), a, a),
                ac.proposer(ProcessId(1), b, b),
            ];
            explore(&layout, procs, 20_000, &mut |outs: &[Option<
                AcOutput<u64>,
            >]| {
                check_ac_properties(&[a, b], outs);
            })
            .unwrap();
        }
    }
}

/// Every interleaving of a two-process sifting conciliator (for fixed
/// personae): validity and termination hold in all of them, and the
/// outcome degrades to disagreement only when the pre-flipped coins
/// allow it.
#[test]
fn sifting_conciliator_is_valid_under_all_interleavings_of_two() {
    for seed in 0..10 {
        let mut builder = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut builder, 2, Epsilon::HALF);
        let layout = builder.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..2)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), 100 + i as u64, &mut rng)
            })
            .collect();
        let rounds = c.rounds();
        let total = explore(&layout, procs, 500_000, &mut |outs| {
            for out in outs.iter().flatten() {
                assert!(
                    out.input() == 100 || out.input() == 101,
                    "invented value {}",
                    out.input()
                );
            }
            assert!(outs.iter().all(Option::is_some), "termination");
        })
        .unwrap();
        // R ops each: C(2R, R) interleavings.
        let expect = {
            let mut c = 1u64;
            for k in 1..=rounds as u64 {
                c = c * (rounds as u64 + k) / k;
            }
            c
        };
        assert_eq!(total, expect, "seed {seed}");
    }
}

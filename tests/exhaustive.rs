//! Bounded model checking: enumerate every Mazurkiewicz trace of small
//! instances and check safety on each — exhaustive proofs where
//! randomized testing only samples.
//!
//! The naive enumerator visits every raw interleaving (multinomial
//! growth) and is kept as the oracle: on instances it can still handle,
//! the DPOR explorer must visit exactly the same set of trace
//! signatures, strictly fewer executions. On larger instances (three
//! proposers at 7–8 ops each, where the naive count is in the hundreds
//! of millions to billions), only the DPOR explorer runs — with and
//! without an injected crash.

use std::collections::HashSet;

use sift::adopt_commit::{
    try_check_ac_properties, AcOutput, AdoptCommit, DigitAc, FlagsAc, GafniRegisterAc,
    GafniSnapshotAc,
};
use sift::core::{try_check_validity, Conciliator, Epsilon, SiftingConciliator};
use sift::sim::mc::{check_dpor, explore_dpor, explore_naive, trace_signature, McOptions, McStats};
use sift::sim::rng::SeedSplitter;
use sift::sim::{Layout, LayoutBuilder, Process, ProcessId};

fn flags_instance(
    n: usize,
    proposals: &[u64],
) -> (
    Layout,
    Vec<impl Process<Output = AcOutput<u64>, Value = u64> + Clone>,
) {
    let mut builder = LayoutBuilder::new();
    let ac = FlagsAc::allocate(&mut builder, n);
    let layout = builder.build();
    let procs = proposals
        .iter()
        .enumerate()
        .map(|(i, &c)| ac.proposer(ProcessId(i), c, c))
        .collect();
    (layout, procs)
}

fn digit_instance(
    code_space: u64,
    base: u64,
    proposals: &[u64],
) -> (
    Layout,
    Vec<impl Process<Output = AcOutput<u64>, Value = u64> + Clone>,
) {
    let mut builder = LayoutBuilder::new();
    let ac = DigitAc::for_code_space(&mut builder, code_space, base);
    let layout = builder.build();
    let procs = proposals
        .iter()
        .enumerate()
        .map(|(i, &c)| ac.proposer(ProcessId(i), c, c))
        .collect();
    (layout, procs)
}

/// The acceptance benchmark: on the two-proposer flags-AC instance
/// (2m+3 = 7 ops each, naive multinomial C(14,7) = 3432 per full-length
/// pair), the DPOR explorer visits *exactly* the naive enumerator's set
/// of Mazurkiewicz traces — each exactly once — in strictly fewer
/// executions. Coherence is checked on every visited execution of both.
#[test]
fn dpor_covers_all_flags_ac_traces_with_strictly_fewer_executions() {
    let mut reduced = Vec::new();
    for a in 0u64..2 {
        for b in 0u64..2 {
            let proposals = [a, b];

            let (layout, procs) = flags_instance(2, &proposals);
            let mut naive_sigs = HashSet::new();
            let naive_total = explore_naive(&layout, procs, 10_000, &mut |view| {
                naive_sigs.insert(trace_signature(view.events));
                if let Err(m) = try_check_ac_properties(&proposals, view.outputs) {
                    panic!("naive, proposals ({a},{b}): {m}");
                }
            })
            .unwrap();
            assert!(
                (1000..=3432).contains(&naive_total),
                "proposals ({a},{b}): {naive_total}"
            );

            let (layout, procs) = flags_instance(2, &proposals);
            let mut dpor_sigs = HashSet::new();
            let stats = explore_dpor(&layout, procs, McOptions::new(10_000), &mut |view| {
                assert!(
                    dpor_sigs.insert(trace_signature(view.events)),
                    "trace visited twice"
                );
                try_check_ac_properties(&proposals, view.outputs)
            })
            .unwrap();

            assert_eq!(dpor_sigs, naive_sigs, "proposals ({a},{b})");
            assert_eq!(stats.executions, naive_sigs.len() as u64);
            assert!(
                stats.executions < naive_total,
                "proposals ({a},{b}): DPOR {} vs naive {naive_total}",
                stats.executions
            );
            reduced.push((proposals, naive_total, stats.executions));
        }
    }
    // The reduction is substantial, not marginal: the unanimous pairs
    // cost the full multinomial C(14,7) = 3432 naively but only 16
    // traces; conflicting pairs finish early (1302 naive) in 8 traces.
    assert_eq!(
        reduced,
        vec![
            ([0, 0], 3432, 16),
            ([0, 1], 1302, 8),
            ([1, 0], 1302, 8),
            ([1, 1], 3432, 16),
        ]
    );
}

/// THREE flags-AC proposers at 7 ops each: the naive count is
/// 21!/(7!)³ ≈ 399 million interleavings — infeasible. The DPOR
/// explorer checks coherence over every trace.
#[test]
fn flags_ac_is_coherent_under_all_traces_of_three() {
    let proposals = [0u64, 1, 0];
    let (layout, procs) = flags_instance(3, &proposals);
    let stats = explore_dpor(&layout, procs, McOptions::new(5_000_000), &mut |view| {
        try_check_ac_properties(&proposals, view.outputs)
    })
    .unwrap();
    // Naive ≈ 3.99e8 executions; the DPOR walk is exact and
    // deterministic, so the trace count is pinned.
    assert_eq!(stats.executions, 348);
}

/// Three flags-AC proposers with one injected crash: coherence must
/// hold on every crash-truncated execution too (a crashed proposer's
/// output is `None` and is skipped by the checker).
#[test]
fn flags_ac_is_coherent_under_one_crash() {
    let proposals = [0u64, 1, 0];
    let (layout, procs) = flags_instance(3, &proposals);
    let stats = explore_dpor(
        &layout,
        procs,
        McOptions::new(20_000_000).with_crashes(1),
        &mut |view| try_check_ac_properties(&proposals, view.outputs),
    )
    .unwrap();
    // Every (crash placement, trace-of-survivors) pair, exactly once.
    assert_eq!(stats.executions, 3710);
}

/// Two digit-AC proposers, naive vs DPOR (m = 2, base 2: 8 ops each →
/// C(16,8) = 12870 raw interleavings per pair).
#[test]
fn digit_ac_is_coherent_under_all_traces_of_two() {
    for a in 0u64..2 {
        for b in 0u64..2 {
            let proposals = [a, b];
            let (layout, procs) = digit_instance(2, 2, &proposals);
            let mut naive_sigs = HashSet::new();
            let naive_total = explore_naive(&layout, procs, 20_000, &mut |view| {
                naive_sigs.insert(trace_signature(view.events));
            })
            .unwrap();

            let (layout, procs) = digit_instance(2, 2, &proposals);
            let mut dpor_sigs = HashSet::new();
            let stats = explore_dpor(&layout, procs, McOptions::new(20_000), &mut |view| {
                assert!(
                    dpor_sigs.insert(trace_signature(view.events)),
                    "trace visited twice"
                );
                try_check_ac_properties(&proposals, view.outputs)
            })
            .unwrap();
            assert_eq!(dpor_sigs, naive_sigs, "proposals ({a},{b})");
            assert!(
                stats.executions < naive_total,
                "proposals ({a},{b}): DPOR {} vs naive {naive_total}",
                stats.executions
            );
        }
    }
}

/// THREE digit-AC proposers at 8 ops each (naive: 24!/(8!)³ ≈ 9.5
/// billion — far beyond feasibility; DPOR collapses it to 348 traces
/// in milliseconds).
#[test]
fn digit_ac_is_coherent_under_all_traces_of_three() {
    let proposals = [0u64, 1, 0];
    let (layout, procs) = digit_instance(2, 2, &proposals);
    let stats = explore_dpor(&layout, procs, McOptions::new(50_000_000), &mut |view| {
        try_check_ac_properties(&proposals, view.outputs)
    })
    .unwrap();
    assert_eq!(stats.executions, 348);
}

/// Three digit-AC proposers with a crash budget of TWO: every placement
/// of up to two crashes, exhaustively.
#[test]
fn digit_ac_is_coherent_under_two_crashes_of_three() {
    let proposals = [0u64, 1, 0];
    let (layout, procs) = digit_instance(2, 2, &proposals);
    let stats = explore_dpor(
        &layout,
        procs,
        McOptions::new(50_000_000).with_crashes(2),
        &mut |view| try_check_ac_properties(&proposals, view.outputs),
    )
    .unwrap();
    assert_eq!(stats.executions, 13_276);
}

/// FOUR flags-AC proposers at 7 ops each: the naive count is
/// 28!/(7!)⁴ ≈ 4.7×10¹³ interleavings. DPOR visits 28 360 traces in a
/// few seconds (release) — run via `just mc-full` / nightly CI.
#[test]
#[ignore = "heavy: run with `just mc-full`"]
fn flags_ac_is_coherent_under_all_traces_of_four() {
    let proposals = [0u64, 1, 0, 1];
    let (layout, procs) = flags_instance(4, &proposals);
    let stats = explore_dpor(&layout, procs, McOptions::new(100_000_000), &mut |view| {
        try_check_ac_properties(&proposals, view.outputs)
    })
    .unwrap();
    assert_eq!(stats.executions, 28_360);
}

/// Four flags-AC proposers with one injected crash — the heaviest
/// instance in the suite (~467k traces; run via `just mc-full`).
#[test]
#[ignore = "heavy: run with `just mc-full`"]
fn flags_ac_is_coherent_under_one_crash_of_four() {
    let proposals = [0u64, 1, 0, 1];
    let (layout, procs) = flags_instance(4, &proposals);
    let stats = explore_dpor(
        &layout,
        procs,
        McOptions::new(100_000_000).with_crashes(1),
        &mut |view| try_check_ac_properties(&proposals, view.outputs),
    )
    .unwrap();
    assert_eq!(stats.executions, 467_312);
}

/// Four digit-AC proposers with one injected crash (naive base count
/// 32!/(8!)⁴ ≈ 10¹⁶; run via `just mc-full`).
#[test]
#[ignore = "heavy: run with `just mc-full`"]
fn digit_ac_is_coherent_under_one_crash_of_four() {
    let proposals = [0u64, 1, 0, 1];
    let (layout, procs) = digit_instance(2, 2, &proposals);
    let stats = explore_dpor(
        &layout,
        procs,
        McOptions::new(100_000_000).with_crashes(1),
        &mut |view| try_check_ac_properties(&proposals, view.outputs),
    )
    .unwrap();
    assert_eq!(stats.executions, 237_376);
}

/// Two digit-AC proposers under one injected crash.
#[test]
fn digit_ac_is_coherent_under_one_crash() {
    for a in 0u64..2 {
        for b in 0u64..2 {
            let proposals = [a, b];
            let (layout, procs) = digit_instance(2, 2, &proposals);
            explore_dpor(
                &layout,
                procs,
                McOptions::new(100_000).with_crashes(1),
                &mut |view| try_check_ac_properties(&proposals, view.outputs),
            )
            .unwrap();
        }
    }
}

/// Every trace of two snapshot-Gafni proposers, all proposal pairs.
#[test]
fn gafni_snapshot_ac_is_coherent_under_all_traces_of_two() {
    for a in 0u64..2 {
        for b in 0u64..2 {
            let proposals = [a, b];
            let mut builder = LayoutBuilder::new();
            let ac = GafniSnapshotAc::<u64>::allocate(&mut builder, 2, |v| *v);
            let layout = builder.build();
            let procs = vec![
                ac.proposer(ProcessId(0), a, a),
                ac.proposer(ProcessId(1), b, b),
            ];
            explore_dpor(&layout, procs, McOptions::new(10_000), &mut |view| {
                try_check_ac_properties(&proposals, view.outputs)
            })
            .unwrap();
        }
    }
}

/// Three snapshot-Gafni proposers with a crash budget of one — the
/// wait-freedom-dependent case the naive explorer never covered.
#[test]
fn gafni_snapshot_ac_is_coherent_under_one_crash_of_three() {
    let proposals = [0u64, 1, 0];
    let mut builder = LayoutBuilder::new();
    let ac = GafniSnapshotAc::<u64>::allocate(&mut builder, 3, |v| *v);
    let layout = builder.build();
    let procs: Vec<_> = proposals
        .iter()
        .enumerate()
        .map(|(i, &c)| ac.proposer(ProcessId(i), c, c))
        .collect();
    let stats = explore_dpor(
        &layout,
        procs,
        McOptions::new(2_000_000).with_crashes(1),
        &mut |view| try_check_ac_properties(&proposals, view.outputs),
    )
    .unwrap();
    assert_eq!(stats.executions, 730);
}

/// Every trace of two register-Gafni proposers (3n+2 = 8 ops worst case
/// at n = 2), coherent with and without a crash.
#[test]
fn gafni_register_ac_is_coherent_under_all_traces_of_two() {
    for crashes in [0usize, 1] {
        for a in 0u64..2 {
            for b in 0u64..2 {
                let proposals = [a, b];
                let mut builder = LayoutBuilder::new();
                let ac = GafniRegisterAc::<u64>::allocate(&mut builder, 2, |v| *v);
                let layout = builder.build();
                let procs = vec![
                    ac.proposer(ProcessId(0), a, a),
                    ac.proposer(ProcessId(1), b, b),
                ];
                explore_dpor(
                    &layout,
                    procs,
                    McOptions::new(100_000).with_crashes(crashes),
                    &mut |view| try_check_ac_properties(&proposals, view.outputs),
                )
                .unwrap();
            }
        }
    }
}

/// Two-process sifting conciliator: validity and termination hold on
/// every trace, for several pre-flipped coin seeds. Uses the
/// counterexample-shrinking checker so a failure would print a
/// replayable schedule.
#[test]
fn sifting_conciliator_is_valid_under_all_traces_of_two() {
    let inputs = [100u64, 101];
    for seed in 0..10 {
        let mut builder = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut builder, 2, Epsilon::HALF);
        let layout = builder.build();
        let factory = || {
            let split = SeedSplitter::new(seed);
            (0..2)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), inputs[i], &mut rng)
                })
                .collect::<Vec<_>>()
        };
        let stats: McStats = check_dpor(&layout, factory, McOptions::new(500_000), |outputs| {
            try_check_validity(&inputs, outputs)?;
            if !outputs.iter().all(Option::is_some) {
                return Err("termination violated without crashes".to_string());
            }
            Ok(())
        })
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(stats.executions > 0, "seed {seed}");
    }
}

/// Two-process sifting conciliator with one injected crash: validity
/// must still hold on every partial execution (the survivor may return
/// either input; a crashed process returns nothing).
#[test]
fn sifting_conciliator_is_valid_under_one_crash() {
    let inputs = [100u64, 101];
    for seed in 0..10 {
        let mut builder = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut builder, 2, Epsilon::HALF);
        let layout = builder.build();
        let factory = || {
            let split = SeedSplitter::new(seed);
            (0..2)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), inputs[i], &mut rng)
                })
                .collect::<Vec<_>>()
        };
        check_dpor(
            &layout,
            factory,
            McOptions::new(500_000).with_crashes(1),
            |outputs| try_check_validity(&inputs, outputs),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

//! Reproducibility: every simulated execution is a pure function of its
//! seeds, and schedule randomness is independent of process randomness
//! (the structural form of obliviousness).

use sift::core::{Conciliator, Epsilon, SiftingConciliator, SnapshotConciliator};
use sift::sim::fuzz::ScheduleGenome;
use sift::sim::rng::{SeedSplitter, Xoshiro256StarStar};
use sift::sim::schedule::{CrashSubset, RandomInterleave, Schedule, ScheduleKind};
use sift::sim::{
    Engine, LayoutBuilder, LegacyEngine, Metrics, ProcessId, RegisterSemantics, Resolution,
    RunReport,
};

fn run_sifting(master: u64, schedule_seed: u64) -> (Vec<u64>, Metrics) {
    let n = 24;
    let mut b = LayoutBuilder::new();
    let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
    let layout = b.build();
    let split = SeedSplitter::new(master);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let report = Engine::new(&layout, procs).run(RandomInterleave::new(n, schedule_seed));
    let outputs = report
        .outputs
        .iter()
        .map(|o| o.as_ref().unwrap().input())
        .collect();
    (outputs, report.metrics)
}

#[test]
fn identical_seeds_give_identical_executions() {
    let (out1, m1) = run_sifting(99, 7);
    let (out2, m2) = run_sifting(99, 7);
    assert_eq!(out1, out2);
    assert_eq!(m1, m2);
}

#[test]
fn different_master_seeds_give_different_coin_flips() {
    // Same schedule, different process coins: outcomes should differ for
    // at least one of several seeds (overwhelmingly likely).
    let (baseline, _) = run_sifting(0, 7);
    let mut any_different = false;
    for master in 1..6 {
        let (outputs, _) = run_sifting(master, 7);
        if outputs != baseline {
            any_different = true;
        }
    }
    assert!(any_different, "coin flips appear to ignore the master seed");
}

#[test]
fn schedule_seed_changes_only_the_schedule() {
    // With the same master seed, changing the schedule seed changes the
    // interleaving but never the generated personae: the first round of
    // writes must carry identical persona priorities. We verify
    // indirectly: metrics differ across schedule seeds (different
    // interleavings) while unanimity outcomes stay identical.
    let n = 8;
    let value = 3u64;
    let mut outputs_per_seed = Vec::new();
    for schedule_seed in 0..4 {
        let mut b = LayoutBuilder::new();
        let c = SnapshotConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        let split = SeedSplitter::new(1234);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), value, &mut rng)
            })
            .collect();
        let report = Engine::new(&layout, procs).run(RandomInterleave::new(n, schedule_seed));
        outputs_per_seed.push(
            report
                .outputs
                .iter()
                .map(|o| o.as_ref().unwrap().input())
                .collect::<Vec<_>>(),
        );
    }
    for outs in &outputs_per_seed {
        assert!(outs.iter().all(|&v| v == value));
    }
}

/// Builds the n=16 sifting instance used by the engine-differential
/// tests below and runs it on the given engine under `schedule`.
fn sifting_report(
    master: u64,
    schedule: impl FnOnce(usize) -> Box<dyn Schedule>,
    legacy: bool,
) -> RunReport<sift::core::SiftingParticipant> {
    let n = 16;
    let mut b = LayoutBuilder::new();
    let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
    let layout = b.build();
    let split = SeedSplitter::new(master);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    if legacy {
        let mut engine = LegacyEngine::new(&layout, procs);
        engine.enable_trace();
        engine.run(schedule(n))
    } else {
        let mut engine = Engine::new(&layout, procs);
        engine.enable_trace();
        engine.run(schedule(n))
    }
}

/// The differential digest: everything observable about a run that the
/// two engines must agree on, bit for bit.
fn assert_reports_identical<P: sift::sim::Process>(old: &RunReport<P>, new: &RunReport<P>)
where
    P::Output: PartialEq + std::fmt::Debug,
{
    assert_eq!(old.outputs, new.outputs);
    assert_eq!(old.metrics, new.metrics);
    assert_eq!(old.stop_reason, new.stop_reason);
    assert_eq!(
        old.trace.as_ref().map(|t| t.events()),
        new.trace.as_ref().map(|t| t.events()),
        "per-slot traces diverge"
    );
}

#[test]
fn event_engine_matches_legacy_on_every_schedule_family() {
    for kind in ScheduleKind::all() {
        for seed in [1u64, 17, 99] {
            let old = sifting_report(seed, |n| kind.build(n, seed), true);
            let new = sifting_report(seed, |n| kind.build(n, seed), false);
            assert_reports_identical(&old, &new);
        }
    }
}

#[test]
fn event_engine_matches_legacy_under_crashes() {
    for seed in [3u64, 31] {
        let crash = |n: usize| -> Box<dyn Schedule> {
            Box::new(CrashSubset::new(
                RandomInterleave::new(n, seed),
                [ProcessId(0), ProcessId(5)],
            ))
        };
        let old = sifting_report(seed, crash, true);
        let new = sifting_report(seed, crash, false);
        assert_reports_identical(&old, &new);
    }
}

#[test]
fn event_engine_matches_legacy_on_pinned_fuzz_genomes() {
    // The fuzz corpus's pinned genome seeds: random genomes compiled to
    // the exact schedules coverage-guided fuzzing replays.
    for genome_seed in [0xC0FFEE_u64, 0xFEED, 0xDECAF, 7, 4242] {
        let mut rng = Xoshiro256StarStar::seed_from_u64(genome_seed);
        let genome = ScheduleGenome::random(16, &mut rng);
        let old = sifting_report(genome_seed, |n| Box::new(genome.compile(n)), true);
        let new = sifting_report(genome_seed, |n| Box::new(genome.compile(n)), false);
        assert_reports_identical(&old, &new);
    }
}

#[test]
fn event_engine_matches_legacy_under_slot_limits() {
    // Budgets that land mid-round must stop both engines at the same
    // slot with the same partial state.
    for limit in [1u64, 7, 50, 173] {
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut b, 16, Epsilon::HALF);
        let layout = b.build();
        let split = SeedSplitter::new(5);
        let build = |c: &SiftingConciliator| {
            (0..16)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), i as u64, &mut rng)
                })
                .collect::<Vec<_>>()
        };
        let mut old_e = LegacyEngine::new(&layout, build(&c));
        old_e.limit_slots(limit);
        let old = old_e.run(RandomInterleave::new(16, 9));
        let mut new_e = Engine::new(&layout, build(&c));
        new_e.limit_slots(limit);
        let new = new_e.run(RandomInterleave::new(16, 9));
        assert_eq!(old.outputs, new.outputs);
        assert_eq!(old.metrics, new.metrics);
        assert_eq!(old.stop_reason, new.stop_reason);
    }
}

/// Like [`sifting_report`], but on the event engine with explicit
/// register semantics — the regular-substrate differentials below.
fn sifting_report_with_semantics(
    master: u64,
    schedule: impl FnOnce(usize) -> Box<dyn Schedule>,
    semantics: RegisterSemantics,
) -> RunReport<sift::core::SiftingParticipant> {
    let n = 16;
    let mut b = LayoutBuilder::new();
    let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
    let layout = b.build();
    let split = SeedSplitter::new(master);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let mut engine = Engine::new(&layout, procs);
    engine.enable_trace();
    engine.set_register_semantics(semantics);
    engine.run(schedule(n))
}

/// Regular registers with every overlapping read resolved to the new
/// value are observationally atomic: under any fixed schedule, each
/// read returns exactly the latest write ordered before it, which is
/// the atomic answer. The engine must reproduce this equivalence bit
/// for bit on every schedule family.
#[test]
fn always_new_regular_semantics_match_atomic_on_every_schedule_family() {
    for kind in ScheduleKind::all() {
        for seed in [1u64, 17, 99] {
            let atomic = sifting_report_with_semantics(
                seed,
                |n| kind.build(n, seed),
                RegisterSemantics::Atomic,
            );
            let regular = sifting_report_with_semantics(
                seed,
                |n| kind.build(n, seed),
                RegisterSemantics::Regular(Resolution::AlwaysNew),
            );
            assert_reports_identical(&atomic, &regular);
        }
    }
}

/// The same always-new/atomic equivalence on pinned fuzz genomes — the
/// exact schedule programs coverage-guided fuzzing replays, covering
/// solo bursts, stalls, and crash-truncated prefixes.
#[test]
fn always_new_regular_semantics_match_atomic_on_pinned_fuzz_genomes() {
    for genome_seed in [0xC0FFEE_u64, 0xFEED, 0xDECAF, 7, 4242] {
        let mut rng = Xoshiro256StarStar::seed_from_u64(genome_seed);
        let genome = ScheduleGenome::random(16, &mut rng);
        let atomic = sifting_report_with_semantics(
            genome_seed,
            |n| Box::new(genome.compile(n)),
            RegisterSemantics::Atomic,
        );
        let regular = sifting_report_with_semantics(
            genome_seed,
            |n| Box::new(genome.compile(n)),
            RegisterSemantics::Regular(Resolution::AlwaysNew),
        );
        assert_reports_identical(&atomic, &regular);
    }
}

/// Coin-resolved regular mode stays a pure function of its seeds: the
/// overlap coin is drawn from the `Resolution::Coin` stream, not from
/// ambient randomness, so identical (master, schedule, coin) seeds give
/// identical executions — and a different coin seed is allowed to
/// change the run.
#[test]
fn regular_coin_runs_are_reproducible() {
    let run = |coin: u64| {
        sifting_report_with_semantics(
            42,
            |n| kindless_random(n, 9),
            RegisterSemantics::Regular(Resolution::Coin(coin)),
        )
    };
    assert_reports_identical(&run(0xC01), &run(0xC01));
}

fn kindless_random(n: usize, seed: u64) -> Box<dyn Schedule> {
    Box::new(RandomInterleave::new(n, seed))
}

#[test]
fn schedule_kinds_are_reproducible() {
    for kind in ScheduleKind::all() {
        let mut a = kind.build(6, 42);
        let mut b = kind.build(6, 42);
        for _ in 0..100 {
            assert_eq!(
                a.next_pid(),
                b.next_pid(),
                "{} not reproducible",
                kind.name()
            );
        }
    }
}

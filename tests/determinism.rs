//! Reproducibility: every simulated execution is a pure function of its
//! seeds, and schedule randomness is independent of process randomness
//! (the structural form of obliviousness).

use sift::core::{Conciliator, Epsilon, SiftingConciliator, SnapshotConciliator};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::{RandomInterleave, ScheduleKind};
use sift::sim::{Engine, LayoutBuilder, Metrics, ProcessId};

fn run_sifting(master: u64, schedule_seed: u64) -> (Vec<u64>, Metrics) {
    let n = 24;
    let mut b = LayoutBuilder::new();
    let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
    let layout = b.build();
    let split = SeedSplitter::new(master);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let report = Engine::new(&layout, procs).run(RandomInterleave::new(n, schedule_seed));
    let outputs = report
        .outputs
        .iter()
        .map(|o| o.as_ref().unwrap().input())
        .collect();
    (outputs, report.metrics)
}

#[test]
fn identical_seeds_give_identical_executions() {
    let (out1, m1) = run_sifting(99, 7);
    let (out2, m2) = run_sifting(99, 7);
    assert_eq!(out1, out2);
    assert_eq!(m1, m2);
}

#[test]
fn different_master_seeds_give_different_coin_flips() {
    // Same schedule, different process coins: outcomes should differ for
    // at least one of several seeds (overwhelmingly likely).
    let (baseline, _) = run_sifting(0, 7);
    let mut any_different = false;
    for master in 1..6 {
        let (outputs, _) = run_sifting(master, 7);
        if outputs != baseline {
            any_different = true;
        }
    }
    assert!(any_different, "coin flips appear to ignore the master seed");
}

#[test]
fn schedule_seed_changes_only_the_schedule() {
    // With the same master seed, changing the schedule seed changes the
    // interleaving but never the generated personae: the first round of
    // writes must carry identical persona priorities. We verify
    // indirectly: metrics differ across schedule seeds (different
    // interleavings) while unanimity outcomes stay identical.
    let n = 8;
    let value = 3u64;
    let mut outputs_per_seed = Vec::new();
    for schedule_seed in 0..4 {
        let mut b = LayoutBuilder::new();
        let c = SnapshotConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        let split = SeedSplitter::new(1234);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), value, &mut rng)
            })
            .collect();
        let report = Engine::new(&layout, procs).run(RandomInterleave::new(n, schedule_seed));
        outputs_per_seed.push(
            report
                .outputs
                .iter()
                .map(|o| o.as_ref().unwrap().input())
                .collect::<Vec<_>>(),
        );
    }
    for outs in &outputs_per_seed {
        assert!(outs.iter().all(|&v| v == value));
    }
}

#[test]
fn schedule_kinds_are_reproducible() {
    for kind in ScheduleKind::all() {
        let mut a = kind.build(6, 42);
        let mut b = kind.build(6, 42);
        for _ in 0..100 {
            assert_eq!(
                a.next_pid(),
                b.next_pid(),
                "{} not reproducible",
                kind.name()
            );
        }
    }
}

# Development recipes. `just ci` mirrors .github/workflows/ci.yml.

# List recipes.
default:
    @just --list

# Format the workspace.
fmt:
    cargo fmt --all

# Fail if anything is unformatted.
fmt-check:
    cargo fmt --all -- --check

# Lint everything; warnings are errors, as in CI.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Tier-1 gate: release build plus the full test suite.
tier1:
    cargo build --release
    cargo test -q --workspace

# The whole suite again with AtomicMemory aliased to the lock-based
# reference objects (differential coverage of the substrate swap).
test-coarse:
    cargo test -q --workspace --features coarse-substrate

# Prove the executor is thread-count invariant: the determinism test
# suite, then a byte-for-byte diff of exp_all at 1 vs 4 threads.
determinism:
    cargo test -q -p sift-bench --test determinism
    cargo build --release -p sift-bench --bin exp_all
    SIFT_TRIALS=20 SIFT_THREADS=1 ./target/release/exp_all > /tmp/sift_t1.txt
    SIFT_TRIALS=20 SIFT_THREADS=4 ./target/release/exp_all > /tmp/sift_t4.txt
    diff -u /tmp/sift_t1.txt /tmp/sift_t4.txt
    @echo "exp_all output is byte-identical across thread counts"

# Model-checking suites at CI weight: DPOR exploration, linearizability
# of captured histories, and counterexample replay. Runs in debug (the
# non-ignored instances are small); `mc-full` covers the heavy tier.
mc:
    cargo test -q --test exhaustive --test linearizability --test mc_replay

# The full model-checking tier, including the `#[ignore]`d 4-proposer
# instances (hundreds of thousands of explored interleavings; release
# mode is mandatory — debug would take many minutes).
mc-full:
    cargo test --release --test exhaustive --test linearizability --test mc_replay -- --include-ignored

# The suites that touch the instrumentation, with the substrate's
# counters compiled in (`obs` feature).
test-obs:
    cargo test -q -p sift-shmem --features obs
    cargo test -q -p sift-bench --features obs

# The statistical conformance suite (E22): every quantitative claim of
# the paper as a one-sided 99% hypothesis test, plus the mutation tests
# proving that broken sifters are refuted. SIFT_TRIALS scales the
# per-claim trial counts (default 1 = the smoke tier CI gates on;
# nightly runs use a larger scale).
conformance:
    cargo run --release -p sift-bench --bin exp_conformance
    cargo test -q --release -p sift-bench --features mutants --test mutants
    cargo test -q --release -p sift-bench --test seed_stability

# Service-level suites: agreement/validity/decide-exactly-once under
# concurrent async clients, golden-pinned deterministic commit streams,
# the service-path substrate differential, and the negative paths
# (evictions, zero capacity, cancellation) — each at worker counts
# 1, 4, and 8 — plus a small load-generator smoke run.
service:
    cargo test -q --test service_agreement --test service_determinism \
        --test service_negative --test substrate_differential
    cargo test -q -p sift-service
    SIFT_SERVICE_PROPOSALS=50000 SIFT_SERVICE_INSTANCES=5000 \
        cargo run --release -p sift-bench --bin exp_service

# The full E23 load tier: one million proposals over 100k Zipf-skewed
# instances in one run (the acceptance bound for the service layer),
# both client models.
service-load:
    cargo run --release -p sift-bench --bin exp_service
    SIFT_SERVICE_MODE=open cargo run --release -p sift-bench --bin exp_service

# A coverage-guided adversary fuzzing campaign against the sifting
# conciliator's schedule-independent invariants. Knobs:
# SIFT_FUZZ_{N,GENERATIONS,POPULATION,SEED,OUT}. Set
# SIFT_FUZZ_EXTENDED=1 to also mutate the environment genes (adversary
# strength + register semantics) with tier-tagged invariants.
fuzz:
    cargo run --release -p sift-bench --bin exp_fuzz

# The adversary lattice (E24) and the negative conformance tier (E25):
# agreement vs adversary strength on both substrates, the
# expected-failure decay claims (exp_adversary exits nonzero if any
# negative case has the wrong polarity), the boundary tests, and the
# torn-publication regularity suite.
adversary:
    cargo run --release -p sift-bench --bin exp_adversary
    cargo test -q --release -p sift-bench --test adversary_boundary
    cargo test -q --test linearizability --features torn-publication

# Everything CI runs.
ci: fmt-check clippy tier1 test-coarse test-obs mc determinism conformance adversary service

# Regenerate the recorded experiment output (uses all cores).
experiments:
    cargo run --release -p sift-bench --bin exp_all | tee experiments_output.txt

# In-tree microbenchmarks.
bench:
    cargo bench -p sift-bench

# Refresh the tracked contention baseline: runs the contention bench
# (full thread sweep t ∈ {2,4,8,16}; narrow with SIFT_BENCH_THREADS)
# and writes per-benchmark medians to BENCH_shmem.json at the repo
# root, plus the observation companion BENCH_obs.json (all-zero
# substrate counters in this default build; see `bench-obs`). Also
# refreshes BENCH_sim.json with the event engine's throughput sweep
# (scheduled events/sec at n ∈ {10³, 10⁵, 10⁶}, including the
# single-digit-second n = 10⁶ sifting round), BENCH_service.json
# with the E23 service load run (1M Zipf-skewed proposals; per-shard
# latency histograms), and BENCH_adversary.json with the E24 lattice
# sweep plus the E25 negative-tier verdicts. Raise SIFT_BENCH_MS for a
# steadier baseline on a quiet machine.
bench-json:
    SIFT_BENCH_JSON={{justfile_directory()}}/BENCH_shmem.json \
    SIFT_BENCH_OBS_JSON={{justfile_directory()}}/BENCH_obs.json \
    cargo bench -p sift-bench --bench contention
    SIFT_BENCH_JSON={{justfile_directory()}}/BENCH_sim.json \
    cargo bench -p sift-bench --bench sim_engine
    SIFT_SERVICE_JSON={{justfile_directory()}}/BENCH_service.json \
    cargo run --release -p sift-bench --bin exp_service
    SIFT_ADVERSARY_JSON={{justfile_directory()}}/BENCH_adversary.json \
    cargo run --release -p sift-bench --bin exp_adversary

# The contention bench with the substrate's counters compiled in:
# BENCH_obs.json then carries real CAS-retry / retire-pile / latency
# numbers. Timings are not comparable to the default build's baseline.
bench-obs:
    SIFT_BENCH_OBS_JSON={{justfile_directory()}}/BENCH_obs.json \
    cargo bench -p sift-bench --features obs --bench contention

//! Export a conciliator run as a Chrome trace (Perfetto) JSON file.
//!
//! Runs Algorithm 2 (the sifting conciliator) for a small `n` with the
//! engine's bounded trace ring enabled, attaches the per-round persona
//! survival counter track, and writes the trace to the path given as
//! the first argument (stdout when omitted). Open the file in
//! <https://ui.perfetto.dev> or `chrome://tracing`: one track per
//! process, one slice per shared-memory operation, slots as
//! microseconds (the paper's unit-cost measure, not wall-clock).
//!
//! Run with: `cargo run --release --example trace_export -- trace.json`

use std::io::Write as _;

use sift::core::{distinct_per_round, Conciliator, Epsilon, RoundHistory, SiftingConciliator};
use sift::sim::obs::{check_trace_shape, perfetto_from_ring};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::RandomInterleave;
use sift::sim::{Engine, LayoutBuilder, ProcessId};

const N: usize = 16;
const RING_CAPACITY: usize = 4096;

fn main() {
    let mut builder = LayoutBuilder::new();
    let conciliator = SiftingConciliator::allocate(&mut builder, N, Epsilon::HALF);
    let layout = builder.build();
    let split = SeedSplitter::new(12);
    let processes: Vec<_> = (0..N)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            conciliator.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();

    let mut engine = Engine::new(&layout, processes);
    engine.enable_trace_ring(RING_CAPACITY);
    let report = engine.run(RandomInterleave::new(N, split.seed("schedule", 0)));

    let survival: Vec<(u64, u64)> =
        distinct_per_round(report.processes.iter().map(|p| p.history()))
            .into_iter()
            .enumerate()
            .map(|(round, count)| (round as u64, count as u64))
            .collect();
    let ring = report.ring.as_ref().expect("trace ring was enabled");
    let json = perfetto_from_ring(ring, N, &survival);
    let records = check_trace_shape(&json).expect("exporter output passes its own schema check");

    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &json).expect("write trace file");
            eprintln!(
                "wrote {path}: {records} records ({} ops retained, {} dropped)",
                ring.len(),
                ring.dropped()
            );
        }
        None => {
            std::io::stdout()
                .write_all(json.as_bytes())
                .expect("write trace to stdout");
        }
    }
}

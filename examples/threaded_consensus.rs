//! The same protocol, real threads: run the Corollary 1 consensus stack
//! on OS threads over lock-based linearizable shared objects, with the
//! OS scheduler as the (uncontrolled) adversary.
//!
//! Also demonstrates interning: the replicas agree on a *configuration
//! string* by interning candidate configs into u64 codes up front.
//!
//! Run with: `cargo run --example threaded_consensus`

use sift::consensus::{snapshot_consensus, ConsensusOutcome};
use sift::shmem::runtime::run_threads;
use sift::sim::rng::SeedSplitter;
use sift::sim::{LayoutBuilder, ProcessId};

fn main() {
    // The value domain: candidate configurations, interned to codes.
    let configs = [
        "primary=alpha,replicas=3",
        "primary=beta,replicas=3",
        "primary=alpha,replicas=5",
    ];

    let n = 8;
    let mut builder = LayoutBuilder::new();
    let protocol = snapshot_consensus(&mut builder, n);
    let layout = builder.build();

    let split = SeedSplitter::new(2026);
    let inputs: Vec<u64> = (0..n as u64).map(|i| i % configs.len() as u64).collect();
    let participants: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            protocol.participant(ProcessId(i), inputs[i], &mut rng)
        })
        .collect();

    // Each participant runs on its own OS thread against lock-based
    // linearizable registers and snapshots.
    let report = run_threads(&layout, participants);

    let mut agreed: Option<u64> = None;
    for (i, outcome) in report.outputs.iter().enumerate() {
        match outcome {
            ConsensusOutcome::Decided(d) => {
                println!(
                    "thread {i}: proposed {:?}, decided {:?} ({} ops, {} phase(s))",
                    configs[inputs[i] as usize], configs[d.value as usize], report.ops[i], d.phases
                );
                agreed.get_or_insert(d.value);
                assert_eq!(agreed, Some(d.value), "split brain!");
            }
            ConsensusOutcome::Exhausted { .. } => unreachable!(),
        }
    }
    let winner = agreed.expect("all threads decide");
    println!(
        "\ncluster converged on {:?} ({} total shared-memory ops)",
        configs[winner as usize],
        report.total_ops()
    );
}

//! State-machine replication on top of the paper's consensus: a tiny
//! replicated key-value store whose replicas commit operations through
//! a [`ReplicatedLog`] built from sifting conciliators — per-slot cost
//! `O(log log n)` expected steps, independent of the data.
//!
//! Run with: `cargo run --release --example replicated_log`

use std::collections::BTreeMap;

use sift::adopt_commit::DigitAc;
use sift::consensus::log::ReplicatedLog;
use sift::core::{Epsilon, SiftingConciliator};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::RandomInterleave;
use sift::sim::{Engine, LayoutBuilder, ProcessId};

/// A command is packed as `key * 100 + value` (keys 0..10, values
/// 0..100): the u64 domain of the consensus stack.
fn pack(key: u64, value: u64) -> u64 {
    key * 100 + value
}

fn unpack(cmd: u64) -> (u64, u64) {
    (cmd / 100, cmd % 100)
}

fn main() {
    let n = 6; // replicas
    let slots = 8; // log length

    let mut builder = LayoutBuilder::new();
    let log = ReplicatedLog::allocate(
        &mut builder,
        n,
        slots,
        32,
        |b| SiftingConciliator::allocate(b, n, Epsilon::HALF),
        |b| DigitAc::for_code_space(b, 1000, 2),
    );
    let layout = builder.build();

    // Each replica wants to apply its own writes.
    let split = SeedSplitter::new(31);
    let participants: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("replica", i as u64);
            let commands = vec![
                pack(i as u64, 10 + i as u64),
                pack((i as u64 + 1) % 10, 50 + i as u64),
            ];
            log.participant(ProcessId(i), commands, &mut rng)
        })
        .collect();

    let report =
        Engine::new(&layout, participants).run(RandomInterleave::new(n, split.seed("schedule", 0)));

    let total_steps = report.metrics.total_steps;
    let logs = report.unwrap_outputs();
    assert!(
        logs.windows(2).all(|w| w[0] == w[1]),
        "replicas must hold identical logs"
    );

    // Apply the agreed log to the state machine.
    let mut store: BTreeMap<u64, u64> = BTreeMap::new();
    println!("committed log ({} entries):", logs[0].len());
    for (slot, &cmd) in logs[0].iter().enumerate() {
        let (key, value) = unpack(cmd);
        let proposer = value % 10;
        store.insert(key, value);
        println!("  slot {slot}: set k{key} = {value} (from replica ~{proposer})");
    }
    println!("\nfinal store (identical on all {n} replicas): {store:?}");
    println!(
        "total shared-memory steps: {} ({:.1} per replica per slot)",
        total_steps,
        total_steps as f64 / (n * slots) as f64
    );
}

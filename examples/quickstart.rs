//! Quickstart: reach consensus among 16 simulated processes with the
//! paper's sifting conciliator (Algorithm 2), then inspect the cost.
//!
//! Run with: `cargo run --example quickstart`

use sift::consensus::{sifting_consensus, ConsensusOutcome};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::RandomInterleave;
use sift::sim::{Engine, LayoutBuilder, ProcessId};

fn main() {
    let n = 16; // processes
    let m = 8; // possible input values

    // 1. Declare the protocol's shared memory and build the stack:
    //    Algorithm 2 conciliators alternated with digit adopt-commit
    //    objects (Corollary 2 of the paper).
    let mut builder = LayoutBuilder::new();
    let protocol = sifting_consensus(&mut builder, n, m, 2);
    let layout = builder.build();

    // 2. Seed everything from one master seed. Schedule randomness and
    //    process randomness come from disjoint streams, so the adversary
    //    is oblivious by construction.
    let split = SeedSplitter::new(42);
    let schedule = RandomInterleave::new(n, split.seed("schedule", 0));

    // 3. Give each process an input and mint its participant.
    let inputs: Vec<u64> = (0..n as u64).map(|i| i % m).collect();
    let participants: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            protocol.participant(ProcessId(i), inputs[i], &mut rng)
        })
        .collect();

    // 4. Run to completion under the oblivious schedule.
    let report = Engine::new(&layout, participants).run(schedule);

    println!("inputs:  {inputs:?}");
    let mut decided = Vec::new();
    for (i, outcome) in report.outputs.iter().enumerate() {
        match outcome.as_ref().expect("all processes decide") {
            ConsensusOutcome::Decided(d) => {
                decided.push(d.value);
                println!(
                    "p{i}: decided {} after {} phase(s) \
                     ({} conciliator ops + {} adopt-commit ops)",
                    d.value, d.phases, d.conciliator_steps, d.adopt_commit_steps
                );
            }
            ConsensusOutcome::Exhausted { .. } => unreachable!("64 phases is plenty"),
        }
    }
    assert!(decided.windows(2).all(|w| w[0] == w[1]), "agreement");
    assert!(inputs.contains(&decided[0]), "validity");

    println!(
        "\nagreed on {} in {} total steps (mean {:.1} steps/process)",
        decided[0],
        report.metrics.total_steps,
        report.metrics.mean_individual_steps()
    );
}

//! One-shot lock acquisition with the sifting test-and-set: a burst of
//! workers races for a one-time initialization token; exactly one wins
//! and the rest learn they lost after only a handful of register
//! operations (the §5 connection to Alistarh–Aspnes).
//!
//! Run with: `cargo run --release --example lock_acquisition`

use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::RandomInterleave;
use sift::sim::{Engine, LayoutBuilder, ProcessId};
use sift::tas::{check_tas_properties, SiftingTas, TasOutcome};

fn main() {
    let n = 256; // racing workers
    let mut builder = LayoutBuilder::new();
    let tas = SiftingTas::allocate(&mut builder, n);
    let layout = builder.build();

    let split = SeedSplitter::new(99);
    let participants: Vec<_> = (0..n)
        .map(|i| tas.participant(ProcessId(i), &mut split.stream("worker", i as u64)))
        .collect();

    let report =
        Engine::new(&layout, participants).run(RandomInterleave::new(n, split.seed("schedule", 0)));
    check_tas_properties(&report.outputs);

    let winner = report
        .outputs
        .iter()
        .position(|o| o == &Some(TasOutcome::Won))
        .expect("exactly one winner");
    let loser_steps: Vec<u64> = report
        .outputs
        .iter()
        .enumerate()
        .filter(|(_, o)| **o == Some(TasOutcome::Lost))
        .map(|(i, _)| report.metrics.per_process_steps[i])
        .collect();
    let survivors = report
        .processes
        .iter()
        .filter(|p| p.reached_tournament())
        .count();

    println!("{n} workers raced for the initialization token");
    println!(
        "worker {winner} won after {} operations",
        report.metrics.per_process_steps[winner]
    );
    println!(
        "losers needed {:.1} operations on average (max {}) — {} sift rounds were available",
        loser_steps.iter().sum::<u64>() as f64 / loser_steps.len() as f64,
        loser_steps.iter().max().unwrap(),
        tas.sift_rounds()
    );
    println!(
        "{survivors} of {n} workers survived the sift and played the tournament; \
         everyone else left after the first register they read was already taken"
    );
}

//! Leader election for a replicated service: `n` replicas each nominate
//! a candidate (themselves, or a node they believe is healthiest) and
//! must agree on one leader for the epoch — even though replicas run at
//! wildly different speeds and some crash mid-election.
//!
//! Uses the linear-work stack (Algorithm 3 + digit adopt-commit,
//! Corollary 3): the election costs `O(n)` total steps no matter how
//! the scheduler interleaves the replicas, and a replica running alone
//! still finishes in `O(log log n)` of its own steps.
//!
//! Run with: `cargo run --example leader_election`

use sift::consensus::{linear_work_consensus, ConsensusOutcome};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::{CrashSubset, RandomInterleave, Schedule};
use sift::sim::{Engine, LayoutBuilder, ProcessId};

/// A replica's view of the cluster.
struct Replica {
    id: usize,
    /// The node this replica nominates (a u64 "node id" — the consensus
    /// value domain).
    nomination: u64,
}

fn main() {
    let n = 32; // replicas
    let split = SeedSplitter::new(7);

    // Each replica nominates a candidate based on its local health view
    // (here: a deterministic pseudo-health score).
    let replicas: Vec<Replica> = (0..n)
        .map(|id| {
            let mut rng = split.stream("health-view", id as u64);
            // A replica nominates whichever of three probes looks best.
            let nomination = (0..3).map(|_| rng.range_u64(n as u64)).min().unwrap();
            Replica { id, nomination }
        })
        .collect();

    // Build the election: inputs are node ids in 0..n.
    let mut builder = LayoutBuilder::new();
    let protocol = linear_work_consensus(&mut builder, n, n as u64, 2);
    let layout = builder.build();

    // The environment: a random interleaving with 25% of replicas
    // crashing before taking any step (a crash is indistinguishable from
    // never being scheduled).
    let schedule = CrashSubset::random(
        RandomInterleave::new(n, split.seed("schedule", 0)),
        n,
        0.25,
        split.seed("crashes", 0),
    );
    let crashed: Vec<usize> = schedule.crashed().map(|p| p.index()).collect();
    let live = schedule.support().len();

    let participants: Vec<_> = replicas
        .iter()
        .map(|r| {
            let mut rng = split.stream("process", r.id as u64);
            protocol.participant(ProcessId(r.id), r.nomination, &mut rng)
        })
        .collect();

    let report = Engine::new(&layout, participants).run(schedule);

    println!("{n} replicas, {} crashed: {crashed:?}", crashed.len());
    let mut leader = None;
    let mut decided = 0;
    for (replica, outcome) in replicas.iter().zip(&report.outputs) {
        match outcome {
            None => println!("  replica {:>2}: crashed", replica.id),
            Some(ConsensusOutcome::Decided(d)) => {
                decided += 1;
                leader.get_or_insert(d.value);
                assert_eq!(Some(d.value), leader, "two leaders elected!");
            }
            Some(ConsensusOutcome::Exhausted { .. }) => unreachable!(),
        }
    }
    let leader = leader.expect("someone decided");
    assert_eq!(
        decided, live,
        "every live replica must finish (wait-freedom)"
    );
    assert!(
        replicas.iter().any(|r| r.nomination == leader),
        "leader must have been nominated by someone"
    );

    println!(
        "elected node {leader} — all {decided} live replicas agree \
         ({} total steps, worst replica {} steps)",
        report.metrics.total_steps,
        report.metrics.max_individual_steps()
    );
}

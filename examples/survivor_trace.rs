//! Visualize the heart of the paper: how fast each conciliator whittles
//! `n` competing personae down to one, round by round.
//!
//! Prints an ASCII decay chart for Algorithm 1 (priority sift) and
//! Algorithm 2 (register sift) side by side with the analytical bounds.
//!
//! Run with: `cargo run --release --example survivor_trace`

use sift::core::analysis::{lemma1_expected_excess, sifting_expected_excess};
use sift::core::{
    distinct_per_round, Conciliator, Epsilon, RoundHistory, SiftingConciliator, SnapshotConciliator,
};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::RandomInterleave;
use sift::sim::{Engine, LayoutBuilder, ProcessId};

const N: usize = 512;
const TRIALS: u64 = 40;

fn mean_survivors<C>(build: impl Fn(&mut LayoutBuilder) -> C) -> Vec<f64>
where
    C: Conciliator,
    C::Participant: RoundHistory,
{
    let mut sums: Vec<f64> = Vec::new();
    for seed in 0..TRIALS {
        let mut b = LayoutBuilder::new();
        let c = build(&mut b);
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..N)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        let report =
            Engine::new(&layout, procs).run(RandomInterleave::new(N, split.seed("schedule", 0)));
        let counts = distinct_per_round(report.processes.iter().map(|p| p.history()));
        if sums.len() < counts.len() {
            sums.resize(counts.len(), 0.0);
        }
        for (i, &c) in counts.iter().enumerate() {
            sums[i] += c as f64;
        }
    }
    sums.iter().map(|s| s / TRIALS as f64).collect()
}

fn bar(value: f64, max: f64) -> String {
    let width = 48.0;
    let filled = ((value.max(1.0).ln() / max.ln()) * width).round() as usize;
    "#".repeat(filled.min(width as usize))
}

fn main() {
    println!("{N} processes, {TRIALS} trials, log-scale bars (surviving personae)\n");

    println!("Algorithm 1 (priority sift, Lemma 1: E[X] -> min(ln(X+1), X/2)):");
    let alg1 = mean_survivors(|b| SnapshotConciliator::allocate(b, N, Epsilon::HALF));
    println!("  round  0: {:>8.2} {}", N as f64, bar(N as f64, N as f64));
    for (i, &mean) in alg1.iter().enumerate() {
        let bound = 1.0 + lemma1_expected_excess(N as u64, (i + 1) as u32);
        println!(
            "  round {:>2}: {mean:>8.2} {} (bound {bound:.2})",
            i + 1,
            bar(mean, N as f64)
        );
    }

    println!("\nAlgorithm 2 (register sift, Lemma 3: x -> 2*sqrt(x), then 3/4-tail):");
    let alg2 = mean_survivors(|b| SiftingConciliator::allocate(b, N, Epsilon::HALF));
    println!("  round  0: {:>8.2} {}", N as f64, bar(N as f64, N as f64));
    for (i, &mean) in alg2.iter().enumerate() {
        let bound = 1.0 + sifting_expected_excess(N as u64, (i + 1) as u32);
        println!(
            "  round {:>2}: {mean:>8.2} {} (bound {bound:.2})",
            i + 1,
            bar(mean, N as f64)
        );
    }

    println!(
        "\nAlgorithm 1 collapses in ~log* n rounds; Algorithm 2 needs ~loglog n \
         aggressive rounds\nplus a geometric tail — both far below the measured bounds."
    );
}

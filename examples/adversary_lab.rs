//! Adversary lab: pit each conciliator against every shipped oblivious
//! adversary strategy and print the empirical agreement rates and step
//! costs — a compact reproduction of the paper's robustness story.
//!
//! Run with: `cargo run --release --example adversary_lab`

use sift::core::{
    CilConciliator, Conciliator, EmbeddedConciliator, Epsilon, SiftingConciliator,
    SnapshotConciliator,
};
use sift::sim::rng::SeedSplitter;
use sift::sim::schedule::ScheduleKind;
use sift::sim::{Engine, LayoutBuilder, ProcessId};
use std::collections::HashSet;

const N: usize = 48;
const TRIALS: u64 = 150;

fn trial<C: Conciliator>(
    seed: u64,
    kind: ScheduleKind,
    build: impl FnOnce(&mut LayoutBuilder) -> C,
) -> (bool, u64) {
    let mut builder = LayoutBuilder::new();
    let conciliator = build(&mut builder);
    let layout = builder.build();
    let split = SeedSplitter::new(seed);
    let schedule = kind.build(N, split.seed("schedule", 0));
    let participants: Vec<_> = (0..N)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            conciliator.participant(ProcessId(i), (i % 5) as u64, &mut rng)
        })
        .collect();
    let report = Engine::new(&layout, participants).run(schedule);
    let distinct: HashSet<_> = report.decided().map(|p| p.origin()).collect();
    (distinct.len() == 1, report.metrics.max_individual_steps())
}

fn main() {
    println!("{N} processes, {TRIALS} trials per cell — agreement rate / worst individual steps\n");
    print!("{:<22}", "conciliator");
    for kind in ScheduleKind::all() {
        print!("{:>22}", kind.name());
    }
    println!();

    type Row = fn(u64, ScheduleKind) -> (bool, u64);
    let rows: [(&str, Row); 4] = [
        ("Alg 1 (snapshot)", |s, k| {
            trial(s, k, |b| SnapshotConciliator::allocate(b, N, Epsilon::HALF))
        }),
        ("Alg 2 (sifting)", |s, k| {
            trial(s, k, |b| SiftingConciliator::allocate(b, N, Epsilon::HALF))
        }),
        ("Alg 3 (embedded)", |s, k| {
            trial(s, k, |b| EmbeddedConciliator::allocate(b, N))
        }),
        ("CIL baseline", |s, k| {
            trial(s, k, |b| CilConciliator::allocate(b, N))
        }),
    ];

    for (name, run) in rows {
        print!("{name:<22}");
        for kind in ScheduleKind::all() {
            let mut agreed = 0u64;
            let mut worst = 0u64;
            for seed in 0..TRIALS {
                let (ok, steps) = run(seed, kind);
                agreed += u64::from(ok);
                worst = worst.max(steps);
            }
            let rate = agreed as f64 / TRIALS as f64;
            print!("{:>22}", format!("{rate:.2} / {worst}"));
        }
        println!();
    }

    println!(
        "\nNote how CIL's worst individual steps explode under block-sequential \
         scheduling (a solo process must fire a 1/4n coin) while the paper's \
         conciliators keep their log*/loglog worst cases."
    );
}

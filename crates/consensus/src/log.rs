//! A replicated log: state-machine replication from repeated consensus.
//!
//! The classic downstream use of a consensus object: a sequence of log
//! slots, each decided by one consensus instance. Every process
//! proposes the front of its local command queue for the next
//! undecided slot; when a slot decides its command it pops it,
//! otherwise it re-proposes the same command at the next slot. Log
//! agreement and per-proposer FIFO order follow directly from consensus
//! agreement and validity.
//!
//! Built on any of this crate's stacks, so the per-slot cost is the
//! paper's `O(log* n)` / `O(log log n + cost(AC))` expected steps — a
//! replicated log whose slot latency is essentially independent of the
//! number of replicas.

use std::sync::Arc;

use sift_adopt_commit::AdoptCommit;
use sift_core::{Conciliator, Persona};
use sift_sim::rng::Xoshiro256StarStar;
use sift_sim::{LayoutBuilder, OpResult, Process, ProcessId, Step};

use crate::framework::{ConsensusOutcome, ConsensusParticipant, ConsensusProtocol};

/// A fixed-length replicated log over per-slot consensus instances.
///
/// # Examples
///
/// ```
/// use sift_adopt_commit::DigitAc;
/// use sift_consensus::log::ReplicatedLog;
/// use sift_core::{Epsilon, SiftingConciliator};
/// use sift_sim::rng::SeedSplitter;
/// use sift_sim::schedule::RoundRobin;
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
///
/// let n = 4;
/// let mut b = LayoutBuilder::new();
/// let log = ReplicatedLog::allocate(
///     &mut b,
///     n,
///     3, // slots
///     16,
///     |b| SiftingConciliator::allocate(b, n, Epsilon::HALF),
///     |b| DigitAc::for_code_space(b, 16, 2),
/// );
/// let layout = b.build();
/// let split = SeedSplitter::new(9);
/// let procs: Vec<_> = (0..n)
///     .map(|i| {
///         let mut rng = split.stream("process", i as u64);
///         log.participant(ProcessId(i), vec![i as u64], &mut rng)
///     })
///     .collect();
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
/// let logs = report.unwrap_outputs();
/// assert!(logs.windows(2).all(|w| w[0] == w[1]), "identical logs");
/// ```
#[derive(Debug)]
pub struct ReplicatedLog<C, A> {
    slots: Arc<Vec<ConsensusProtocol<C, A>>>,
    n: usize,
}

impl<C, A> Clone for ReplicatedLog<C, A> {
    fn clone(&self) -> Self {
        Self {
            slots: Arc::clone(&self.slots),
            n: self.n,
        }
    }
}

impl<C, A> ReplicatedLog<C, A>
where
    C: Conciliator,
    A: AdoptCommit<Persona>,
{
    /// Allocates a log with `slots` entries, each a consensus instance
    /// with `max_phases` phases built by the given constructors.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `slots == 0`.
    pub fn allocate(
        builder: &mut LayoutBuilder,
        n: usize,
        slots: usize,
        max_phases: usize,
        mut conciliator: impl FnMut(&mut LayoutBuilder) -> C,
        mut adopt_commit: impl FnMut(&mut LayoutBuilder) -> A,
    ) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(slots > 0, "need at least one log slot");
        let slots = (0..slots)
            .map(|_| {
                ConsensusProtocol::allocate(
                    builder,
                    n,
                    max_phases,
                    &mut conciliator,
                    &mut adopt_commit,
                )
            })
            .collect();
        Self {
            slots: Arc::new(slots),
            n,
        }
    }

    /// Number of log slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the log has zero slots (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Creates the participant for `pid` with its local command queue.
    /// Commands are proposed front-first; a command stays queued until
    /// some slot commits it. If the queue empties before the log fills,
    /// the participant re-proposes its last command.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or `commands` is empty.
    pub fn participant(
        &self,
        pid: ProcessId,
        commands: Vec<u64>,
        rng: &mut Xoshiro256StarStar,
    ) -> LogParticipant<C, A> {
        assert!(pid.index() < self.n, "{pid} out of range 0..{}", self.n);
        assert!(!commands.is_empty(), "need at least one command to propose");
        let own = Xoshiro256StarStar::seed_from_u64(rng.next_u64());
        let mut participant = LogParticipant {
            shared: self.clone(),
            pid,
            rng: own,
            queue: std::collections::VecDeque::from(commands),
            decided: Vec::with_capacity(self.len()),
            current: None,
            started: false,
        };
        participant.enter_next_slot();
        participant
    }
}

/// Single-use replicated-log participant; output is the decided log.
#[derive(Debug)]
pub struct LogParticipant<C: Conciliator, A: AdoptCommit<Persona>> {
    shared: ReplicatedLog<C, A>,
    pid: ProcessId,
    rng: Xoshiro256StarStar,
    queue: std::collections::VecDeque<u64>,
    decided: Vec<u64>,
    current: Option<ConsensusParticipant<C, A>>,
    started: bool,
}

impl<C: Conciliator, A: AdoptCommit<Persona>> LogParticipant<C, A> {
    /// The log entries decided so far.
    pub fn decided(&self) -> &[u64] {
        &self.decided
    }

    /// Commands still waiting to be committed.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    fn proposal(&self) -> u64 {
        *self.queue.front().expect("queue never empties below one")
    }

    fn enter_next_slot(&mut self) {
        let slot = self.decided.len();
        if slot == self.shared.len() {
            self.current = None;
            return;
        }
        let proposal = self.proposal();
        self.current = Some(self.shared.slots[slot].participant(self.pid, proposal, &mut self.rng));
        self.started = false;
    }

    fn absorb(&mut self, outcome: ConsensusOutcome) {
        let decision = outcome.unwrap_decided();
        if decision.value == self.proposal() && self.queue.len() > 1 {
            self.queue.pop_front();
        } else if decision.value == self.proposal() {
            // Keep the last command for potential re-proposal so the
            // queue never empties (duplicates are deduplicated by the
            // application layer, as in any at-least-once log).
        }
        self.decided.push(decision.value);
        self.enter_next_slot();
    }
}

impl<C: Conciliator, A: AdoptCommit<Persona>> Process for LogParticipant<C, A> {
    type Value = Persona;
    type Output = Vec<u64>;

    fn step(&mut self, mut prev: Option<OpResult<Persona>>) -> Step<Persona, Vec<u64>> {
        loop {
            let Some(consensus) = self.current.as_mut() else {
                return Step::Done(self.decided.clone());
            };
            let step = if self.started {
                consensus.step(prev.take())
            } else {
                self.started = true;
                consensus.step(None)
            };
            match step {
                Step::Issue(op) => return Step::Issue(op),
                Step::Done(outcome) => self.absorb(outcome),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_adopt_commit::{DigitAc, GafniSnapshotAc};
    use sift_core::{Epsilon, SiftingConciliator, SnapshotConciliator};
    use sift_sim::rng::SeedSplitter;
    use sift_sim::schedule::{RandomInterleave, ScheduleKind};
    use sift_sim::Engine;

    fn run_log(n: usize, slots: usize, seed: u64) -> Vec<Vec<u64>> {
        let mut b = LayoutBuilder::new();
        let log = ReplicatedLog::allocate(
            &mut b,
            n,
            slots,
            32,
            |b| SiftingConciliator::allocate(b, n, Epsilon::HALF),
            |b| DigitAc::for_code_space(b, 64, 2),
        );
        let layout = b.build();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                // Process i's commands: i*10, i*10+1, …
                let commands: Vec<u64> = (0..3).map(|k| (i as u64) * 10 + k).collect();
                log.participant(ProcessId(i), commands, &mut rng)
            })
            .collect();
        let report =
            Engine::new(&layout, procs).run(RandomInterleave::new(n, split.seed("schedule", 0)));
        report.unwrap_outputs()
    }

    #[test]
    fn all_replicas_decide_identical_logs() {
        for seed in 0..15 {
            let logs = run_log(5, 4, seed);
            for w in logs.windows(2) {
                assert_eq!(w[0], w[1], "seed {seed}: logs diverged");
            }
            assert_eq!(logs[0].len(), 4);
        }
    }

    #[test]
    fn every_entry_was_proposed_by_someone() {
        for seed in 0..15 {
            let logs = run_log(4, 5, seed);
            for &entry in &logs[0] {
                let proposer = entry / 10;
                let index = entry % 10;
                assert!(proposer < 4 && index < 3, "invented entry {entry}");
            }
        }
    }

    #[test]
    fn own_commands_commit_in_fifo_order() {
        for seed in 0..15 {
            let logs = run_log(4, 6, seed);
            for p in 0u64..4 {
                let mine: Vec<u64> = logs[0].iter().copied().filter(|&e| e / 10 == p).collect();
                let mut deduped = mine.clone();
                deduped.dedup();
                assert!(
                    deduped.windows(2).all(|w| w[0] < w[1]),
                    "seed {seed}: p{p}'s commands out of order: {mine:?}"
                );
            }
        }
    }

    #[test]
    fn works_on_the_snapshot_stack_too() {
        let n = 4;
        let mut b = LayoutBuilder::new();
        let log = ReplicatedLog::allocate(
            &mut b,
            n,
            3,
            16,
            |b| SnapshotConciliator::allocate(b, n, Epsilon::HALF),
            |b| GafniSnapshotAc::allocate(b, n, |p: &Persona| p.input()),
        );
        let layout = b.build();
        let split = SeedSplitter::new(3);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                log.participant(ProcessId(i), vec![i as u64 + 1], &mut rng)
            })
            .collect();
        let report = Engine::new(&layout, procs)
            .run(ScheduleKind::RandomInterleave.build(n, split.seed("schedule", 0)));
        let logs = report.unwrap_outputs();
        assert!(logs.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(logs[0].len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one command")]
    fn empty_command_queue_panics() {
        let mut b = LayoutBuilder::new();
        let log = ReplicatedLog::allocate(
            &mut b,
            2,
            1,
            8,
            |b| SiftingConciliator::allocate(b, 2, Epsilon::HALF),
            |b| DigitAc::for_code_space(b, 4, 2),
        );
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        let _ = log.participant(ProcessId(0), Vec::new(), &mut rng);
    }
}

//! # sift-consensus — consensus from conciliators and adopt-commit
//!
//! The paper's composition (§1.2, after \[5\]): alternate a conciliator
//! (creates agreement with probability `δ`, cannot detect it) with an
//! adopt-commit object (detects agreement, cannot create it); decide on
//! the first `(commit, v)`. Agreement and validity are absolute;
//! termination holds with probability 1 with expected phase count
//! `≤ 1/δ`, so expected cost is the sum of one conciliator and one
//! adopt-commit, times a constant:
//!
//! * [`snapshot_consensus`] — Corollary 1: `O(log* n)` expected
//!   individual steps (unit-cost snapshots), any input domain.
//! * [`max_register_consensus`] — the same over max registers.
//! * [`sifting_consensus`] — Corollary 2:
//!   `O(log log n + cost(AC(m)))` expected individual steps (registers).
//! * [`linear_work_consensus`] — Corollary 3: additionally `O(n)`
//!   expected total steps.
//! * [`cil_consensus`] — the Chor–Israeli–Li baseline.
//!
//! On top of single-shot consensus, [`log::ReplicatedLog`] provides
//! state-machine replication: a sequence of slots, each decided by one
//! consensus instance, with per-proposer FIFO commit order.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod framework;
pub mod log;
pub mod protocols;

pub use framework::{
    check_consensus, ConsensusOutcome, ConsensusParticipant, ConsensusProtocol, Decision,
    DEFAULT_MAX_PHASES,
};
pub use log::{LogParticipant, ReplicatedLog};
pub use protocols::{
    cil_consensus, linear_work_consensus, max_register_consensus, sifting_consensus,
    snapshot_consensus, CilConsensus, LinearWorkConsensus, MaxRegisterConsensus, SiftingConsensus,
    SnapshotConsensus,
};

//! Consensus from alternating conciliators and adopt-commit objects.
//!
//! The composition of the paper's §1.2 (following Aspnes's modular
//! consensus construction \[5\]): phase `r` runs a conciliator on the
//! current preference and feeds its output to an adopt-commit object; a
//! `(commit, v)` decides `v`, an `(adopt, v)` makes `v` the next
//! preference. Agreement is *absolute* (coherence pins every later
//! phase to the committed value); termination holds with probability 1
//! because each conciliator creates agreement with probability
//! `δ > 0` independently, so the expected number of phases is at most
//! `1/δ` and the expected cost is `O(cost(conciliator) + cost(AC))`.
//!
//! Phases are pre-allocated: a stack with `max_phases` phases fails
//! (returns [`ConsensusOutcome::Exhausted`]) with probability at most
//! `(1-δ)^max_phases`, which the default of 64 phases makes negligible;
//! allocation is cheap because snapshot objects materialize lazily.

use std::sync::Arc;

use sift_adopt_commit::{AcOutput, AdoptCommit, Verdict};
use sift_core::{Conciliator, Persona};
use sift_sim::rng::Xoshiro256StarStar;
use sift_sim::{LayoutBuilder, OpResult, Process, ProcessId, Step};

/// Default number of pre-allocated phases.
pub const DEFAULT_MAX_PHASES: usize = 64;

/// The result of a consensus participant.
#[derive(Debug, Clone, PartialEq)]
pub enum ConsensusOutcome {
    /// Decided on a value.
    Decided(Decision),
    /// Ran out of pre-allocated phases (probability `(1-δ)^max_phases`).
    Exhausted {
        /// The preference held when phases ran out.
        last_preference: u64,
    },
}

impl ConsensusOutcome {
    /// The decided value.
    ///
    /// # Panics
    ///
    /// Panics if the participant exhausted its phases.
    pub fn unwrap_decided(self) -> Decision {
        match self {
            ConsensusOutcome::Decided(d) => d,
            ConsensusOutcome::Exhausted { last_preference } => {
                panic!("consensus exhausted its phases (last preference {last_preference})")
            }
        }
    }

    /// The decided value, if any.
    pub fn value(&self) -> Option<u64> {
        match self {
            ConsensusOutcome::Decided(d) => Some(d.value),
            ConsensusOutcome::Exhausted { .. } => None,
        }
    }
}

/// A successful decision and its cost breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The agreed value.
    pub value: u64,
    /// Number of conciliator+adopt-commit phases this process ran
    /// (1-based: deciding in the first phase gives 1).
    pub phases: usize,
    /// Operations spent inside conciliators.
    pub conciliator_steps: u64,
    /// Operations spent inside adopt-commit objects.
    pub adopt_commit_steps: u64,
}

/// A consensus protocol: `max_phases` pre-allocated
/// (conciliator, adopt-commit) pairs.
///
/// # Examples
///
/// ```
/// use sift_adopt_commit::GafniSnapshotAc;
/// use sift_consensus::ConsensusProtocol;
/// use sift_core::{Epsilon, Persona, SnapshotConciliator};
/// use sift_sim::rng::SeedSplitter;
/// use sift_sim::schedule::RoundRobin;
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
///
/// let n = 8;
/// let mut b = LayoutBuilder::new();
/// let protocol = ConsensusProtocol::allocate(
///     &mut b,
///     n,
///     16,
///     |b| SnapshotConciliator::allocate(b, n, Epsilon::HALF),
///     |b| GafniSnapshotAc::<Persona>::allocate(b, n, |p| p.input()),
/// );
/// let layout = b.build();
/// let split = SeedSplitter::new(1);
/// let procs: Vec<_> = (0..n)
///     .map(|i| {
///         let mut rng = split.stream("process", i as u64);
///         protocol.participant(ProcessId(i), (i % 3) as u64, &mut rng)
///     })
///     .collect();
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
/// let values: Vec<u64> = report
///     .unwrap_outputs()
///     .into_iter()
///     .map(|o| o.unwrap_decided().value)
///     .collect();
/// assert!(values.windows(2).all(|w| w[0] == w[1]), "agreement is absolute");
/// ```
#[derive(Debug)]
pub struct ConsensusProtocol<C, A> {
    phases: Arc<Vec<(C, A)>>,
    n: usize,
}

impl<C, A> Clone for ConsensusProtocol<C, A> {
    fn clone(&self) -> Self {
        Self {
            phases: Arc::clone(&self.phases),
            n: self.n,
        }
    }
}

impl<C, A> ConsensusProtocol<C, A>
where
    C: Conciliator,
    A: AdoptCommit<Persona>,
{
    /// Allocates `max_phases` phases, building each phase's conciliator
    /// and adopt-commit object with the given constructors.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `max_phases == 0`.
    pub fn allocate(
        builder: &mut LayoutBuilder,
        n: usize,
        max_phases: usize,
        mut conciliator: impl FnMut(&mut LayoutBuilder) -> C,
        mut adopt_commit: impl FnMut(&mut LayoutBuilder) -> A,
    ) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(max_phases > 0, "need at least one phase");
        let phases = (0..max_phases)
            .map(|_| (conciliator(builder), adopt_commit(builder)))
            .collect();
        Self {
            phases: Arc::new(phases),
            n,
        }
    }

    /// Number of pre-allocated phases.
    pub fn max_phases(&self) -> usize {
        self.phases.len()
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.n
    }

    /// The phase objects (for analysis and tests).
    pub fn phase(&self, index: usize) -> &(C, A) {
        &self.phases[index]
    }

    /// Upper bound on the probability of exhausting all phases:
    /// `(1 - δ)^max_phases`, where `δ` is the first phase conciliator's
    /// guaranteed agreement probability.
    pub fn exhaustion_probability(&self) -> f64 {
        let delta = self.phases[0].0.agreement_probability();
        (1.0 - delta).powi(self.max_phases() as i32)
    }

    /// Creates the participant for process `pid` with input `input`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn participant(
        &self,
        pid: ProcessId,
        input: u64,
        rng: &mut Xoshiro256StarStar,
    ) -> ConsensusParticipant<C, A> {
        assert!(pid.index() < self.n, "{pid} out of range 0..{}", self.n);
        let own = Xoshiro256StarStar::seed_from_u64(rng.next_u64());
        ConsensusParticipant {
            shared: self.clone(),
            pid,
            preference: input,
            rng: own,
            phase_index: 0,
            stage: Stage::StartPhase,
            conciliator_steps: 0,
            adopt_commit_steps: 0,
        }
    }
}

enum Stage<C: Conciliator, A: AdoptCommit<Persona>> {
    /// About to mint the next phase's conciliator participant.
    StartPhase,
    /// Driving the conciliator.
    Conciliate {
        sub: C::Participant,
        started: bool,
    },
    /// Driving the adopt-commit proposer.
    Propose {
        sub: A::Proposer,
        started: bool,
    },
    Finished,
}

impl<C: Conciliator, A: AdoptCommit<Persona>> std::fmt::Debug for Stage<C, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Stage::StartPhase => "StartPhase",
            Stage::Conciliate { .. } => "Conciliate",
            Stage::Propose { .. } => "Propose",
            Stage::Finished => "Finished",
        };
        f.write_str(name)
    }
}

/// Single-use consensus participant.
#[derive(Debug)]
pub struct ConsensusParticipant<C: Conciliator, A: AdoptCommit<Persona>> {
    shared: ConsensusProtocol<C, A>,
    pid: ProcessId,
    preference: u64,
    rng: Xoshiro256StarStar,
    phase_index: usize,
    stage: Stage<C, A>,
    conciliator_steps: u64,
    adopt_commit_steps: u64,
}

impl<C: Conciliator, A: AdoptCommit<Persona>> ConsensusParticipant<C, A> {
    /// The preference going into the current phase.
    pub fn preference(&self) -> u64 {
        self.preference
    }

    /// The current phase index (0-based).
    pub fn phase_index(&self) -> usize {
        self.phase_index
    }

    fn decide(&mut self, value: u64) -> Step<Persona, ConsensusOutcome> {
        self.stage = Stage::Finished;
        Step::Done(ConsensusOutcome::Decided(Decision {
            value,
            phases: self.phase_index + 1,
            conciliator_steps: self.conciliator_steps,
            adopt_commit_steps: self.adopt_commit_steps,
        }))
    }
}

impl<C: Conciliator, A: AdoptCommit<Persona>> Process for ConsensusParticipant<C, A> {
    type Value = Persona;
    type Output = ConsensusOutcome;

    fn step(&mut self, mut prev: Option<OpResult<Persona>>) -> Step<Persona, ConsensusOutcome> {
        loop {
            match std::mem::replace(&mut self.stage, Stage::Finished) {
                Stage::StartPhase => {
                    if self.phase_index == self.shared.max_phases() {
                        return Step::Done(ConsensusOutcome::Exhausted {
                            last_preference: self.preference,
                        });
                    }
                    let (conc, _) = &self.shared.phases[self.phase_index];
                    let sub = conc.participant(self.pid, self.preference, &mut self.rng);
                    self.stage = Stage::Conciliate {
                        sub,
                        started: false,
                    };
                    // Fall through to drive the new conciliator.
                }
                Stage::Conciliate { mut sub, started } => {
                    let step = if started {
                        sub.step(prev.take())
                    } else {
                        sub.step(None)
                    };
                    match step {
                        Step::Issue(op) => {
                            self.conciliator_steps += 1;
                            self.stage = Stage::Conciliate { sub, started: true };
                            return Step::Issue(op);
                        }
                        Step::Done(persona) => {
                            let (_, ac) = &self.shared.phases[self.phase_index];
                            let proposer = ac.proposer(self.pid, persona.input(), persona.clone());
                            self.stage = Stage::Propose {
                                sub: proposer,
                                started: false,
                            };
                            // Fall through to drive the proposer.
                        }
                    }
                }
                Stage::Propose { mut sub, started } => {
                    let step = if started {
                        sub.step(prev.take())
                    } else {
                        sub.step(None)
                    };
                    match step {
                        Step::Issue(op) => {
                            self.adopt_commit_steps += 1;
                            self.stage = Stage::Propose { sub, started: true };
                            return Step::Issue(op);
                        }
                        Step::Done(AcOutput {
                            verdict,
                            code,
                            value: _,
                        }) => match verdict {
                            Verdict::Commit => return self.decide(code),
                            Verdict::Adopt => {
                                self.preference = code;
                                self.phase_index += 1;
                                self.stage = Stage::StartPhase;
                                // Fall through to the next phase.
                            }
                        },
                    }
                }
                Stage::Finished => panic!("participant stepped after completion"),
            }
        }
    }
}

/// Asserts the consensus safety properties over a finished run: all
/// decided values equal, and every decided value is one of `inputs`.
///
/// # Panics
///
/// Panics (with a description) if agreement or validity is violated, or
/// if any outcome is [`ConsensusOutcome::Exhausted`].
pub fn check_consensus<'a>(
    inputs: &[u64],
    outcomes: impl IntoIterator<Item = &'a ConsensusOutcome>,
) {
    let mut decided: Option<u64> = None;
    for outcome in outcomes {
        match outcome {
            ConsensusOutcome::Exhausted { last_preference } => {
                panic!("consensus exhausted phases (preference {last_preference})")
            }
            ConsensusOutcome::Decided(d) => {
                assert!(
                    inputs.contains(&d.value),
                    "validity violated: decided {} not in {inputs:?}",
                    d.value
                );
                match decided {
                    None => decided = Some(d.value),
                    Some(v) => assert_eq!(v, d.value, "agreement violated"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_adopt_commit::GafniSnapshotAc;
    use sift_core::{Epsilon, SiftingConciliator, SnapshotConciliator};
    use sift_sim::rng::SeedSplitter;
    use sift_sim::schedule::{RandomInterleave, RoundRobin};
    use sift_sim::Engine;

    type SnapStack = ConsensusProtocol<SnapshotConciliator, GafniSnapshotAc<Persona>>;

    fn snapshot_stack(n: usize, phases: usize) -> (sift_sim::Layout, SnapStack) {
        let mut b = LayoutBuilder::new();
        let p = ConsensusProtocol::allocate(
            &mut b,
            n,
            phases,
            |b| SnapshotConciliator::allocate(b, n, Epsilon::HALF),
            |b| GafniSnapshotAc::<Persona>::allocate(b, n, |p| p.input()),
        );
        (b.build(), p)
    }

    #[test]
    fn agreement_and_validity_always_hold() {
        for seed in 0..30 {
            let n = 9;
            let (layout, protocol) = snapshot_stack(n, 32);
            let split = SeedSplitter::new(seed);
            let inputs: Vec<u64> = (0..n).map(|i| (i % 4) as u64).collect();
            let procs: Vec<_> = (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    protocol.participant(ProcessId(i), inputs[i], &mut rng)
                })
                .collect();
            let report = Engine::new(&layout, procs).run(RandomInterleave::new(n, seed + 100));
            let outcomes = report.unwrap_outputs();
            check_consensus(&inputs, outcomes.iter());
        }
    }

    #[test]
    fn unanimous_inputs_decide_in_one_phase() {
        let n = 6;
        let (layout, protocol) = snapshot_stack(n, 8);
        let split = SeedSplitter::new(4);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                protocol.participant(ProcessId(i), 42, &mut rng)
            })
            .collect();
        let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
        for outcome in report.unwrap_outputs() {
            let d = outcome.unwrap_decided();
            assert_eq!(d.value, 42);
            assert_eq!(d.phases, 1, "unanimity must commit in the first phase");
        }
    }

    #[test]
    fn expected_phase_count_is_small() {
        // With delta >= 1/2 conciliators, mean phases should be < 3.
        let n = 8;
        let trials = 40;
        let mut total_phases = 0usize;
        for seed in 0..trials {
            let (layout, protocol) = snapshot_stack(n, 32);
            let split = SeedSplitter::new(seed);
            let procs: Vec<_> = (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    protocol.participant(ProcessId(i), i as u64, &mut rng)
                })
                .collect();
            let report = Engine::new(&layout, procs).run(RandomInterleave::new(n, seed + 7));
            total_phases += report
                .unwrap_outputs()
                .into_iter()
                .map(|o| o.unwrap_decided().phases)
                .max()
                .unwrap();
        }
        let mean = total_phases as f64 / trials as f64;
        assert!(mean < 4.0, "mean max phases {mean} too high");
    }

    #[test]
    fn sifting_stack_with_register_ac_agrees() {
        use sift_adopt_commit::DigitAc;
        let n = 12;
        let m = 16u64;
        for seed in 0..15 {
            let mut b = LayoutBuilder::new();
            let protocol = ConsensusProtocol::allocate(
                &mut b,
                n,
                48,
                |b| SiftingConciliator::allocate(b, n, Epsilon::HALF),
                |b| DigitAc::for_code_space(b, m, 2),
            );
            let layout = b.build();
            let split = SeedSplitter::new(seed);
            let inputs: Vec<u64> = (0..n).map(|i| (i as u64 * 7) % m).collect();
            let procs: Vec<_> = (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    protocol.participant(ProcessId(i), inputs[i], &mut rng)
                })
                .collect();
            let report = Engine::new(&layout, procs).run(RandomInterleave::new(n, seed + 900));
            let outcomes = report.unwrap_outputs();
            check_consensus(&inputs, outcomes.iter());
        }
    }

    #[test]
    fn step_accounting_splits_conciliator_and_ac() {
        let n = 4;
        let (layout, protocol) = snapshot_stack(n, 8);
        let split = SeedSplitter::new(11);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                protocol.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
        let metrics = report.metrics.clone();
        let decisions: Vec<Decision> = report
            .unwrap_outputs()
            .into_iter()
            .map(|o| o.unwrap_decided())
            .collect();
        let split_total: u64 = decisions
            .iter()
            .map(|d| d.conciliator_steps + d.adopt_commit_steps)
            .sum();
        assert_eq!(split_total, metrics.total_steps);
        for d in &decisions {
            assert!(d.conciliator_steps > 0);
            assert!(d.adopt_commit_steps > 0);
        }
    }

    #[test]
    fn exhausted_outcome_reports_preference() {
        let out = ConsensusOutcome::Exhausted { last_preference: 3 };
        assert_eq!(out.value(), None);
        let decided = ConsensusOutcome::Decided(Decision {
            value: 5,
            phases: 2,
            conciliator_steps: 10,
            adopt_commit_steps: 4,
        });
        assert_eq!(decided.value(), Some(5));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn unwrap_decided_panics_on_exhausted() {
        ConsensusOutcome::Exhausted { last_preference: 0 }.unwrap_decided();
    }

    #[test]
    fn exhaustion_probability_is_negligible_by_default() {
        let (_, protocol) = snapshot_stack(4, crate::DEFAULT_MAX_PHASES);
        assert!(protocol.exhaustion_probability() < 1e-15);
        let (_, small) = snapshot_stack(4, 2);
        assert!((small.exhaustion_probability() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn phase_exhaustion_is_reported_not_hidden() {
        use sift_core::SiftingConciliator;
        // A deliberately broken conciliator: every persona always
        // writes (p = 1), so nobody ever adopts and agreement never
        // happens. With 1 phase the stack must report Exhausted with
        // the preference it was left holding.
        let n = 4;
        let mut b = LayoutBuilder::new();
        let protocol = ConsensusProtocol::allocate(
            &mut b,
            n,
            1,
            |b| {
                SiftingConciliator::with_probabilities(b, n, vec![1.0; 4], sift_core::Epsilon::HALF)
            },
            |b| sift_adopt_commit::FlagsAc::allocate(b, 8),
        );
        let layout = b.build();
        let split = sift_sim::rng::SeedSplitter::new(5);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                protocol.participant(sift_sim::ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        let report =
            sift_sim::Engine::new(&layout, procs).run(sift_sim::schedule::RoundRobin::new(n));
        let outcomes = report.unwrap_outputs();
        // With all-write sifting, everyone keeps its own persona:
        // mixed inputs cannot commit, so at least one process reports
        // exhaustion, and preferences are always valid inputs.
        let exhausted = outcomes
            .iter()
            .filter(|o| matches!(o, ConsensusOutcome::Exhausted { .. }))
            .count();
        assert!(
            exhausted > 0,
            "expected exhaustion with 1 phase: {outcomes:?}"
        );
        for o in &outcomes {
            if let ConsensusOutcome::Exhausted { last_preference } = o {
                assert!(*last_preference < n as u64, "preference stays valid");
            }
        }
    }
}

//! Preconfigured consensus stacks matching the paper's corollaries.

use sift_adopt_commit::{DigitAc, GafniRegisterAc, GafniSnapshotAc};
use sift_core::{
    CilConciliator, EmbeddedConciliator, Epsilon, MaxConciliator, Persona, SiftingConciliator,
    SnapshotConciliator,
};
use sift_sim::LayoutBuilder;

use crate::framework::{ConsensusProtocol, DEFAULT_MAX_PHASES};

/// Corollary 1: Algorithm 1 alternated with the `O(1)` snapshot
/// adopt-commit — `O(log* n)` expected individual steps in the unit-cost
/// snapshot model, any input domain.
pub type SnapshotConsensus = ConsensusProtocol<SnapshotConciliator, GafniSnapshotAc<Persona>>;

/// Corollary 1 at scale: the max-register Algorithm 1 variant with the
/// snapshot adopt-commit.
pub type MaxRegisterConsensus = ConsensusProtocol<MaxConciliator, GafniSnapshotAc<Persona>>;

/// Corollary 2: Algorithm 2 alternated with the digit-decomposed
/// adopt-commit — `O(log log n + cost(AC(m)))` expected individual steps
/// in the multi-writer register model, for `m` possible inputs.
pub type SiftingConsensus = ConsensusProtocol<SiftingConciliator, DigitAc>;

/// Corollary 3: Algorithm 3 alternated with the digit-decomposed
/// adopt-commit — adds the `O(n)` expected-total-steps property.
pub type LinearWorkConsensus = ConsensusProtocol<EmbeddedConciliator, DigitAc>;

/// Baseline: the classic CIL conciliator with a register adopt-commit.
pub type CilConsensus = ConsensusProtocol<CilConciliator, GafniRegisterAc<Persona>>;

/// Builds the Corollary 1 stack ([`SnapshotConsensus`]).
///
/// # Examples
///
/// ```
/// use sift_consensus::{check_consensus, snapshot_consensus};
/// use sift_sim::rng::SeedSplitter;
/// use sift_sim::schedule::RoundRobin;
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
///
/// let n = 6;
/// let mut b = LayoutBuilder::new();
/// let protocol = snapshot_consensus(&mut b, n);
/// let layout = b.build();
/// let split = SeedSplitter::new(8);
/// let inputs: Vec<u64> = (0..n as u64).collect();
/// let procs: Vec<_> = (0..n)
///     .map(|i| {
///         let mut rng = split.stream("process", i as u64);
///         protocol.participant(ProcessId(i), inputs[i], &mut rng)
///     })
///     .collect();
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
/// let outcomes = report.unwrap_outputs();
/// check_consensus(&inputs, outcomes.iter());
/// ```
pub fn snapshot_consensus(builder: &mut LayoutBuilder, n: usize) -> SnapshotConsensus {
    ConsensusProtocol::allocate(
        builder,
        n,
        DEFAULT_MAX_PHASES,
        |b| SnapshotConciliator::allocate(b, n, Epsilon::HALF),
        |b| GafniSnapshotAc::allocate(b, n, |p: &Persona| p.input()),
    )
}

/// Builds the max-register variant of the Corollary 1 stack
/// ([`MaxRegisterConsensus`]), suitable for very large `n`.
pub fn max_register_consensus(builder: &mut LayoutBuilder, n: usize) -> MaxRegisterConsensus {
    ConsensusProtocol::allocate(
        builder,
        n,
        DEFAULT_MAX_PHASES,
        |b| MaxConciliator::allocate(b, n, Epsilon::HALF),
        |b| GafniSnapshotAc::allocate(b, n, |p: &Persona| p.input()),
    )
}

/// Builds the Corollary 2 stack ([`SiftingConsensus`]) for inputs in
/// `0..m`, with base-`base` digit conflict detectors.
///
/// # Panics
///
/// Panics if `m == 0` or `base < 2`.
pub fn sifting_consensus(
    builder: &mut LayoutBuilder,
    n: usize,
    m: u64,
    base: u64,
) -> SiftingConsensus {
    ConsensusProtocol::allocate(
        builder,
        n,
        DEFAULT_MAX_PHASES,
        |b| SiftingConciliator::allocate(b, n, Epsilon::HALF),
        |b| DigitAc::for_code_space(b, m, base),
    )
}

/// Builds the Corollary 3 stack ([`LinearWorkConsensus`]) for inputs in
/// `0..m`.
///
/// # Panics
///
/// Panics if `m == 0` or `base < 2`.
pub fn linear_work_consensus(
    builder: &mut LayoutBuilder,
    n: usize,
    m: u64,
    base: u64,
) -> LinearWorkConsensus {
    ConsensusProtocol::allocate(
        builder,
        n,
        DEFAULT_MAX_PHASES,
        |b| EmbeddedConciliator::allocate(b, n),
        |b| DigitAc::for_code_space(b, m, base),
    )
}

/// Builds the CIL baseline stack ([`CilConsensus`]).
pub fn cil_consensus(builder: &mut LayoutBuilder, n: usize) -> CilConsensus {
    ConsensusProtocol::allocate(
        builder,
        n,
        DEFAULT_MAX_PHASES,
        |b| CilConciliator::allocate(b, n),
        |b| GafniRegisterAc::allocate(b, n, |p: &Persona| p.input()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::check_consensus;
    use sift_sim::rng::SeedSplitter;
    use sift_sim::schedule::{BlockSequential, RandomInterleave};
    use sift_sim::{Engine, ProcessId};

    fn run_stack<C, A>(
        layout: sift_sim::Layout,
        protocol: ConsensusProtocol<C, A>,
        inputs: &[u64],
        seed: u64,
    ) -> Vec<crate::framework::ConsensusOutcome>
    where
        C: sift_core::Conciliator,
        A: sift_adopt_commit::AdoptCommit<Persona>,
    {
        let n = inputs.len();
        let split = SeedSplitter::new(seed);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                protocol.participant(ProcessId(i), inputs[i], &mut rng)
            })
            .collect();
        let report = Engine::new(&layout, procs).run(RandomInterleave::new(n, seed + 1));
        report.unwrap_outputs()
    }

    #[test]
    fn all_stacks_reach_consensus() {
        let n = 8;
        let inputs: Vec<u64> = (0..n as u64).map(|i| i % 3).collect();
        for seed in 0..10 {
            {
                let mut b = LayoutBuilder::new();
                let p = snapshot_consensus(&mut b, n);
                let outs = run_stack(b.build(), p, &inputs, seed);
                check_consensus(&inputs, outs.iter());
            }
            {
                let mut b = LayoutBuilder::new();
                let p = max_register_consensus(&mut b, n);
                let outs = run_stack(b.build(), p, &inputs, seed);
                check_consensus(&inputs, outs.iter());
            }
            {
                let mut b = LayoutBuilder::new();
                let p = sifting_consensus(&mut b, n, 8, 2);
                let outs = run_stack(b.build(), p, &inputs, seed);
                check_consensus(&inputs, outs.iter());
            }
            {
                let mut b = LayoutBuilder::new();
                let p = linear_work_consensus(&mut b, n, 8, 2);
                let outs = run_stack(b.build(), p, &inputs, seed);
                check_consensus(&inputs, outs.iter());
            }
            {
                let mut b = LayoutBuilder::new();
                let p = cil_consensus(&mut b, n);
                let outs = run_stack(b.build(), p, &inputs, seed);
                check_consensus(&inputs, outs.iter());
            }
        }
    }

    #[test]
    fn linear_work_stack_survives_block_adversary_cheaply() {
        let n = 64;
        let inputs: Vec<u64> = (0..n as u64).map(|i| i % 4).collect();
        let mut b = LayoutBuilder::new();
        let p = linear_work_consensus(&mut b, n, 4, 2);
        let layout = b.build();
        let split = SeedSplitter::new(3);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                p.participant(ProcessId(i), inputs[i], &mut rng)
            })
            .collect();
        let report = Engine::new(&layout, procs).run(BlockSequential::in_order(n));
        let max_individual = report.metrics.max_individual_steps();
        let outcomes = report.unwrap_outputs();
        check_consensus(&inputs, outcomes.iter());
        // Worst-case individual steps stay far below n even under the
        // solo-block adversary (the property CIL lacks).
        assert!(
            max_individual < (n as u64) * 4,
            "individual steps {max_individual} too high"
        );
    }
}

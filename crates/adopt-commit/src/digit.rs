//! Digit-decomposed adopt-commit: `O(log m)` register operations for a
//! code space of size `m`.
//!
//! Stand-in for the Aspnes–Ellen adopt-commit object (paper reference
//! \[9\], cost `O(log m / log log m)`): codes are written positionally as
//! `digits` base-`base` digits, with one flag array per position acting
//! as a per-digit conflict detector. Two distinct codes differ in at
//! least one position, and at that position the flags-array argument of
//! [`FlagsAc`](crate::flags::FlagsAc) applies verbatim, so candidate
//! uniqueness — and with it coherence — carries over.
//!
//! Cost is `2·digits·(base+1) + 2` operations; with `base = 2` this is
//! `O(log m)`, within a `log log m` factor of \[9\]. The substitution is
//! recorded in `DESIGN.md`; the experiment harness measures the actual
//! curve (experiment E14).

use std::sync::Arc;

use sift_sim::{LayoutBuilder, Op, OpResult, Process, ProcessId, RegisterId, Step, Value};

use crate::spec::{AcOutput, AdoptCommit, Verdict};

/// Shared state of a digit adopt-commit instance.
///
/// # Examples
///
/// ```
/// use sift_adopt_commit::{AdoptCommit, DigitAc};
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
/// use sift_sim::schedule::RoundRobin;
///
/// let mut b = LayoutBuilder::new();
/// // Codes 0..1024 with base-4 digits: 5 positions.
/// let ac = DigitAc::for_code_space(&mut b, 1024, 4);
/// let layout = b.build();
/// let procs: Vec<_> = (0..4).map(|i| ac.proposer(ProcessId(i), 777, 1u64)).collect();
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(4));
/// assert!(report.unwrap_outputs().iter().all(|o| o.is_commit()));
/// ```
#[derive(Debug, Clone)]
pub struct DigitAc {
    /// `a[position][digit]` announcement flags.
    a: Arc<Vec<Vec<RegisterId>>>,
    /// `bc[position][digit]` candidate flags.
    bc: Arc<Vec<Vec<RegisterId>>>,
    raw: RegisterId,
    base: u64,
    digits: usize,
}

impl DigitAc {
    /// Allocates an instance with an explicit digit layout. The code
    /// space is `base^digits`.
    ///
    /// # Panics
    ///
    /// Panics if `base < 2` or `digits == 0`.
    pub fn allocate(builder: &mut LayoutBuilder, base: u64, digits: usize) -> Self {
        assert!(base >= 2, "base must be at least 2");
        assert!(digits > 0, "need at least one digit position");
        let mk = |builder: &mut LayoutBuilder| {
            Arc::new(
                (0..digits)
                    .map(|_| builder.registers(base as usize))
                    .collect::<Vec<_>>(),
            )
        };
        let a = mk(builder);
        let bc = mk(builder);
        Self {
            a,
            bc,
            raw: builder.register(),
            base,
            digits,
        }
    }

    /// Allocates an instance covering codes `0..m` with the given base,
    /// using `⌈log_base m⌉` digit positions.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `base < 2`.
    pub fn for_code_space(builder: &mut LayoutBuilder, m: u64, base: u64) -> Self {
        assert!(m > 0, "code space must be non-empty");
        assert!(base >= 2, "base must be at least 2");
        let mut digits = 1;
        let mut span = base;
        while span < m {
            span = span.saturating_mul(base);
            digits += 1;
        }
        Self::allocate(builder, base, digits)
    }

    /// The digit base.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The number of digit positions.
    pub fn digits(&self) -> usize {
        self.digits
    }

    /// The size of the code space (`base^digits`), saturating.
    pub fn code_space(&self) -> u64 {
        self.base.saturating_pow(self.digits as u32)
    }

    fn digit(&self, code: u64, position: usize) -> usize {
        ((code / self.base.pow(position as u32)) % self.base) as usize
    }
}

impl<V: Value> AdoptCommit<V> for DigitAc {
    type Proposer = DigitProposer<V>;

    /// # Panics
    ///
    /// Panics if `code` does not fit in `digits` base-`base` digits.
    fn proposer(&self, _pid: ProcessId, code: u64, value: V) -> DigitProposer<V> {
        assert!(
            code < self.code_space(),
            "code {code} out of code space 0..{}",
            self.code_space()
        );
        let digits = self.digits;
        DigitProposer {
            shared: self.clone(),
            code,
            value,
            state: State::WriteA { position: 0 },
            saw_other: false,
            seen: vec![None; digits],
        }
    }

    fn steps_bound(&self) -> u64 {
        2 * self.digits as u64 * (self.base + 1) + 2
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    WriteA { position: usize },
    CollectA { flat: usize },
    WriteBc { position: usize },
    WriteRaw,
    CollectBc { flat: usize, cand: bool },
    ReadRaw,
    Finished,
}

/// Single-use proposer state machine of [`DigitAc`].
#[derive(Debug, Clone)]
pub struct DigitProposer<V> {
    shared: DigitAc,
    code: u64,
    value: V,
    state: State,
    saw_other: bool,
    /// Candidate digit (and stored value) observed per position during
    /// the `bc` collect. By candidate uniqueness at most one digit per
    /// position can ever be flagged.
    seen: Vec<Option<(usize, V)>>,
}

impl<V: Value> DigitProposer<V> {
    fn slot(&self, flat: usize) -> (usize, usize) {
        let base = self.shared.base as usize;
        (flat / base, flat % base)
    }

    fn total_slots(&self) -> usize {
        self.shared.digits * self.shared.base as usize
    }

    fn finish(&mut self, verdict: Verdict, code: u64, value: V) -> Step<V, AcOutput<V>> {
        self.state = State::Finished;
        Step::Done(AcOutput {
            verdict,
            code,
            value,
        })
    }
}

impl<V: Value> Process for DigitProposer<V> {
    type Value = V;
    type Output = AcOutput<V>;

    fn step(&mut self, prev: Option<OpResult<V>>) -> Step<V, AcOutput<V>> {
        loop {
            match self.state {
                State::WriteA { position } => {
                    if position < self.shared.digits {
                        let d = self.shared.digit(self.code, position);
                        self.state = State::WriteA {
                            position: position + 1,
                        };
                        return Step::Issue(Op::RegisterWrite(
                            self.shared.a[position][d],
                            self.value.clone(),
                        ));
                    }
                    self.state = State::CollectA { flat: 0 };
                }
                State::CollectA { flat } => {
                    if flat > 0 {
                        let (pos, dig) = self.slot(flat - 1);
                        let seen = prev
                            .as_ref()
                            .expect("collect resumed with a result")
                            .clone()
                            .expect_register();
                        if seen.is_some() && dig != self.shared.digit(self.code, pos) {
                            self.saw_other = true;
                        }
                    }
                    if flat < self.total_slots() {
                        let (pos, dig) = self.slot(flat);
                        self.state = State::CollectA { flat: flat + 1 };
                        return Step::Issue(Op::RegisterRead(self.shared.a[pos][dig]));
                    }
                    self.state = if self.saw_other {
                        State::WriteRaw
                    } else {
                        State::WriteBc { position: 0 }
                    };
                }
                State::WriteBc { position } => {
                    if position < self.shared.digits {
                        let d = self.shared.digit(self.code, position);
                        self.state = State::WriteBc {
                            position: position + 1,
                        };
                        return Step::Issue(Op::RegisterWrite(
                            self.shared.bc[position][d],
                            self.value.clone(),
                        ));
                    }
                    self.state = State::CollectBc {
                        flat: 0,
                        cand: true,
                    };
                }
                State::WriteRaw => {
                    self.state = State::CollectBc {
                        flat: 0,
                        cand: false,
                    };
                    return Step::Issue(Op::RegisterWrite(self.shared.raw, self.value.clone()));
                }
                State::CollectBc { flat, cand } => {
                    if flat > 0 {
                        let (pos, dig) = self.slot(flat - 1);
                        if let Some(v) = prev
                            .as_ref()
                            .expect("collect resumed with a result")
                            .clone()
                            .expect_register()
                        {
                            match &self.seen[pos] {
                                None => self.seen[pos] = Some((dig, v)),
                                Some((prev_dig, _)) => debug_assert_eq!(
                                    *prev_dig, dig,
                                    "two candidate writers with different codes"
                                ),
                            }
                        }
                    }
                    if flat < self.total_slots() {
                        let (pos, dig) = self.slot(flat);
                        self.state = State::CollectBc {
                            flat: flat + 1,
                            cand,
                        };
                        return Step::Issue(Op::RegisterRead(self.shared.bc[pos][dig]));
                    }
                    if cand {
                        self.state = State::ReadRaw;
                        return Step::Issue(Op::RegisterRead(self.shared.raw));
                    }
                    // Raw path: adopt the candidate only if its full code
                    // is visible. A partially visible candidate implies
                    // nobody committed (and nobody ever will, since our
                    // raw write precedes this collect), so adopting our
                    // own value is then safe.
                    return match self.reconstruct_candidate() {
                        Some((code, v)) => self.finish(Verdict::Adopt, code, v),
                        None => {
                            let (code, value) = (self.code, self.value.clone());
                            self.finish(Verdict::Adopt, code, value)
                        }
                    };
                }
                State::ReadRaw => {
                    let raw = prev
                        .as_ref()
                        .expect("resumed with raw register value")
                        .clone()
                        .expect_register();
                    let verdict = if raw.is_none() {
                        Verdict::Commit
                    } else {
                        Verdict::Adopt
                    };
                    let (code, value) = (self.code, self.value.clone());
                    return self.finish(verdict, code, value);
                }
                State::Finished => panic!("proposer stepped after completion"),
            }
        }
    }
}

impl<V: Value> DigitProposer<V> {
    /// Reassembles the candidate's `(code, value)` from the per-position
    /// digits observed during the `bc` collect, if every position was
    /// flagged. By candidate uniqueness all flags belong to one code, so
    /// any recorded value is the candidate's.
    fn reconstruct_candidate(&mut self) -> Option<(u64, V)> {
        if self.seen.iter().any(Option::is_none) {
            return None;
        }
        let mut code = 0u64;
        let mut value = None;
        for (pos, entry) in self.seen.iter_mut().enumerate() {
            let (dig, v) = entry.take().expect("checked above");
            code += dig as u64 * self.shared.base.pow(pos as u32);
            value = Some(v);
        }
        Some((code, value.expect("at least one digit position")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_ac_properties;
    use sift_sim::schedule::{BlockSequential, FixedSchedule, RandomInterleave, RoundRobin};
    use sift_sim::Engine;

    fn run(
        m: u64,
        base: u64,
        proposals: &[u64],
        schedule: impl sift_sim::schedule::Schedule,
    ) -> Vec<Option<AcOutput<u64>>> {
        let mut b = LayoutBuilder::new();
        let ac = DigitAc::for_code_space(&mut b, m, base);
        let layout = b.build();
        let procs: Vec<_> = proposals
            .iter()
            .enumerate()
            .map(|(i, &c)| ac.proposer(ProcessId(i), c, c + 100))
            .collect();
        let report = Engine::new(&layout, procs).run(schedule);
        let outputs = report.outputs;
        check_ac_properties(proposals, &outputs);
        outputs
    }

    #[test]
    fn unanimous_commits() {
        let outs = run(256, 2, &[200, 200, 200], RoundRobin::new(3));
        for o in outs {
            let o = o.unwrap();
            assert_eq!(o.verdict, Verdict::Commit);
            assert_eq!(o.code, 200);
            assert_eq!(o.value, 300);
        }
    }

    #[test]
    fn sequential_conflict_adopts_committed_value() {
        let mut slots = vec![0usize; 60];
        slots.extend(vec![1usize; 60]);
        let outs = run(64, 4, &[17, 42], FixedSchedule::from_indices(slots));
        assert_eq!(outs[0].as_ref().unwrap().verdict, Verdict::Commit);
        let o1 = outs[1].as_ref().unwrap();
        assert_eq!(o1.verdict, Verdict::Adopt);
        assert_eq!(o1.code, 17);
        assert_eq!(o1.value, 117);
    }

    #[test]
    fn concurrent_conflicts_are_safe_across_seeds_and_bases() {
        for base in [2u64, 3, 8] {
            for seed in 0..40 {
                let outs = run(64, base, &[5, 40, 63, 5], RandomInterleave::new(4, seed));
                let commits: Vec<u64> = outs
                    .iter()
                    .flatten()
                    .filter(|o| o.is_commit())
                    .map(|o| o.code)
                    .collect();
                assert!(
                    commits.windows(2).all(|w| w[0] == w[1]),
                    "base {base} seed {seed}: {commits:?}"
                );
            }
        }
    }

    #[test]
    fn block_schedule_chains_adoption() {
        let outs = run(1 << 16, 2, &[9999, 1, 2, 3], BlockSequential::in_order(4));
        for o in outs {
            assert_eq!(o.unwrap().code, 9999);
        }
    }

    #[test]
    fn steps_bound_holds_and_is_logarithmic() {
        let mut b = LayoutBuilder::new();
        let ac = DigitAc::for_code_space(&mut b, 1 << 20, 2);
        let layout = b.build();
        let bound = <DigitAc as AdoptCommit<u64>>::steps_bound(&ac);
        assert!(bound <= 2 * 20 * 3 + 2, "bound {bound} not logarithmic");
        let procs: Vec<_> = (0..3)
            .map(|i| ac.proposer(ProcessId(i), i as u64 * 1000, 0u64))
            .collect();
        let report = Engine::new(&layout, procs).run(RoundRobin::new(3));
        assert!(report.all_decided());
        for &steps in &report.metrics.per_process_steps {
            assert!(steps <= bound);
        }
    }

    #[test]
    fn digit_extraction() {
        let mut b = LayoutBuilder::new();
        let ac = DigitAc::allocate(&mut b, 4, 3);
        assert_eq!(ac.code_space(), 64);
        // 27 = 123 in base 4.
        assert_eq!(ac.digit(27, 0), 3);
        assert_eq!(ac.digit(27, 1), 2);
        assert_eq!(ac.digit(27, 2), 1);
    }

    #[test]
    fn for_code_space_sizes() {
        let mut b = LayoutBuilder::new();
        let ac = DigitAc::for_code_space(&mut b, 100, 10);
        assert_eq!(ac.digits(), 2);
        assert_eq!(ac.base(), 10);
        let ac2 = DigitAc::for_code_space(&mut b, 101, 10);
        assert_eq!(ac2.digits(), 3);
    }

    #[test]
    #[should_panic(expected = "out of code space")]
    fn oversized_code_panics() {
        let mut b = LayoutBuilder::new();
        let ac = DigitAc::allocate(&mut b, 2, 3);
        let _ = ac.proposer(ProcessId(0), 8, 0u64);
    }
}

//! The 2-value adopt-commit used by the combining stage of the paper's
//! Algorithm 3.

use sift_sim::{LayoutBuilder, ProcessId, Value};

use crate::flags::{FlagsAc, FlagsProposer};
use crate::spec::{AcOutput, AdoptCommit};

/// A binary adopt-commit object: codes are `0` and `1`, cost is `O(1)`
/// (7 register operations at most).
///
/// Algorithm 3 of the paper uses one of these to reconcile values coming
/// from the embedded sifter (side 0) with values coming from the
/// Chor–Israeli–Li `proposal` register (side 1).
///
/// # Examples
///
/// ```
/// use sift_adopt_commit::{AdoptCommit, BinaryAc};
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
/// use sift_sim::schedule::RoundRobin;
///
/// let mut b = LayoutBuilder::new();
/// let ac = BinaryAc::allocate(&mut b);
/// let layout = b.build();
/// let procs = vec![ac.propose_bit(ProcessId(0), false), ac.propose_bit(ProcessId(1), false)];
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(2));
/// assert!(report.unwrap_outputs().iter().all(|o| o.is_commit()));
/// ```
#[derive(Debug, Clone)]
pub struct BinaryAc {
    inner: FlagsAc,
}

impl BinaryAc {
    /// Allocates a binary adopt-commit instance.
    pub fn allocate(builder: &mut LayoutBuilder) -> Self {
        Self {
            inner: FlagsAc::allocate(builder, 2),
        }
    }

    /// Creates a proposer for a bare bit (value = code).
    pub fn propose_bit(&self, pid: ProcessId, bit: bool) -> FlagsProposer<u64> {
        let code = u64::from(bit);
        self.inner.proposer(pid, code, code)
    }
}

impl<V: Value> AdoptCommit<V> for BinaryAc {
    type Proposer = FlagsProposer<V>;

    /// # Panics
    ///
    /// Panics if `code > 1`.
    fn proposer(&self, pid: ProcessId, code: u64, value: V) -> FlagsProposer<V> {
        self.inner.proposer(pid, code, value)
    }

    fn steps_bound(&self) -> u64 {
        <FlagsAc as AdoptCommit<V>>::steps_bound(&self.inner)
    }
}

/// Convenience alias for binary adopt-commit results over bare bits.
pub type BitOutput = AcOutput<u64>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_ac_properties, Verdict};
    use sift_sim::schedule::{RandomInterleave, RoundRobin};
    use sift_sim::Engine;

    #[test]
    fn unanimous_bits_commit() {
        let mut b = LayoutBuilder::new();
        let ac = BinaryAc::allocate(&mut b);
        let layout = b.build();
        let procs: Vec<_> = (0..4).map(|i| ac.propose_bit(ProcessId(i), true)).collect();
        let report = Engine::new(&layout, procs).run(RoundRobin::new(4));
        let outputs = report.outputs;
        check_ac_properties(&[1, 1, 1, 1], &outputs);
        for o in outputs {
            let o = o.unwrap();
            assert_eq!(o.verdict, Verdict::Commit);
            assert_eq!(o.code, 1);
        }
    }

    #[test]
    fn mixed_bits_are_coherent_across_seeds() {
        for seed in 0..100 {
            let mut b = LayoutBuilder::new();
            let ac = BinaryAc::allocate(&mut b);
            let layout = b.build();
            let procs: Vec<_> = (0..4)
                .map(|i| ac.propose_bit(ProcessId(i), i % 2 == 0))
                .collect();
            let report = Engine::new(&layout, procs).run(RandomInterleave::new(4, seed));
            check_ac_properties(&[1, 0, 1, 0], &report.outputs);
        }
    }

    #[test]
    fn constant_step_bound() {
        let mut b = LayoutBuilder::new();
        let ac = BinaryAc::allocate(&mut b);
        assert_eq!(<BinaryAc as AdoptCommit<u64>>::steps_bound(&ac), 7);
    }
}

//! Value-indexed two-phase adopt-commit: `O(m)` register operations for a
//! code space of size `m`.
//!
//! This is the multi-writer register analogue of Gafni's two-phase
//! adopt-commit, with the per-process arrays replaced by per-*value*
//! flag registers (the natural construction when the code space is
//! small). Phase 1 announces the proposal in `a[code]` and collects `a`;
//! a proposer that saw only its own value becomes a *candidate writer*
//! and records `bc[code]`, others record the shared `raw` register.
//! Phase 2 collects `bc` and `raw` and decides.
//!
//! Safety sketch (full proofs as property tests in this crate):
//!
//! * *Candidate uniqueness*: two candidate writers with different codes
//!   would each have to read the other's `a` slot as ⊥ after writing
//!   their own — impossible for atomic registers.
//! * *Coherence*: a committer read `raw` as ⊥ after writing `bc[code]`,
//!   so every raw proposer (whose `raw` write therefore follows that
//!   read) sees `bc[code]` in its later collect and adopts it; by
//!   uniqueness no other candidate code exists.

use std::sync::Arc;

use sift_sim::{LayoutBuilder, Op, OpResult, Process, ProcessId, RegisterId, Step, Value};

use crate::spec::{AcOutput, AdoptCommit, Verdict};

/// Shared state of a flags adopt-commit instance over codes `0..m`.
///
/// # Examples
///
/// ```
/// use sift_adopt_commit::{AdoptCommit, FlagsAc};
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
/// use sift_sim::schedule::RoundRobin;
///
/// let mut b = LayoutBuilder::new();
/// let ac = FlagsAc::allocate(&mut b, 4);
/// let layout = b.build();
/// let procs: Vec<_> = (0..3).map(|i| ac.proposer(ProcessId(i), 2, 20u64)).collect();
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(3));
/// for out in report.unwrap_outputs() {
///     assert!(out.is_commit()); // unanimous input commits
///     assert_eq!(out.code, 2);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FlagsAc {
    a: Arc<Vec<RegisterId>>,
    bc: Arc<Vec<RegisterId>>,
    raw: RegisterId,
    m: usize,
}

impl FlagsAc {
    /// Allocates an instance for codes `0..m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn allocate(builder: &mut LayoutBuilder, m: usize) -> Self {
        assert!(m > 0, "code space must be non-empty");
        Self {
            a: Arc::new(builder.registers(m)),
            bc: Arc::new(builder.registers(m)),
            raw: builder.register(),
            m,
        }
    }

    /// Size of the code space.
    pub fn code_space(&self) -> usize {
        self.m
    }
}

impl<V: Value> AdoptCommit<V> for FlagsAc {
    type Proposer = FlagsProposer<V>;

    /// # Panics
    ///
    /// Panics if `code >= m`.
    fn proposer(&self, _pid: ProcessId, code: u64, value: V) -> FlagsProposer<V> {
        assert!(
            (code as usize) < self.m,
            "code {code} out of code space 0..{}",
            self.m
        );
        FlagsProposer {
            shared: self.clone(),
            code: code as usize,
            value,
            state: State::Start,
            saw_other: false,
            candidate: None,
        }
    }

    fn steps_bound(&self) -> u64 {
        2 * self.m as u64 + 3
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Start,
    CollectA { next: usize },
    CollectBc { next: usize, cand: bool },
    ReadRaw,
    Finished,
}

/// Single-use proposer state machine of [`FlagsAc`].
#[derive(Debug, Clone)]
pub struct FlagsProposer<V> {
    shared: FlagsAc,
    code: usize,
    value: V,
    state: State,
    saw_other: bool,
    /// First candidate entry observed in the `bc` collect.
    candidate: Option<(usize, V)>,
}

impl<V: Value> FlagsProposer<V> {
    fn decide(&mut self, raw_empty: bool, cand: bool) -> Step<V, AcOutput<V>> {
        self.state = State::Finished;
        if cand {
            // Candidate-writer path: by uniqueness our code is the only
            // candidate code; commit iff nobody recorded a conflict.
            let verdict = if raw_empty {
                Verdict::Commit
            } else {
                Verdict::Adopt
            };
            Step::Done(AcOutput {
                verdict,
                code: self.code as u64,
                value: self.value.clone(),
            })
        } else {
            // Raw path: adopt the (unique) candidate if one is visible.
            match self.candidate.take() {
                Some((code, value)) => Step::Done(AcOutput {
                    verdict: Verdict::Adopt,
                    code: code as u64,
                    value,
                }),
                None => Step::Done(AcOutput {
                    verdict: Verdict::Adopt,
                    code: self.code as u64,
                    value: self.value.clone(),
                }),
            }
        }
    }
}

impl<V: Value> Process for FlagsProposer<V> {
    type Value = V;
    type Output = AcOutput<V>;

    fn step(&mut self, prev: Option<OpResult<V>>) -> Step<V, AcOutput<V>> {
        let m = self.shared.m;
        {
            match self.state {
                State::Start => {
                    self.state = State::CollectA { next: 0 };
                    Step::Issue(Op::RegisterWrite(
                        self.shared.a[self.code],
                        self.value.clone(),
                    ))
                }
                State::CollectA { next } => {
                    if next > 0 {
                        // Result of reading slot `next - 1`.
                        let seen = prev
                            .as_ref()
                            .expect("collect resumed with a result")
                            .clone()
                            .expect_register();
                        if seen.is_some() && next - 1 != self.code {
                            self.saw_other = true;
                        }
                    }
                    if next < m {
                        self.state = State::CollectA { next: next + 1 };
                        return Step::Issue(Op::RegisterRead(self.shared.a[next]));
                    }
                    let cand = !self.saw_other;
                    self.state = State::CollectBc { next: 0, cand };
                    if cand {
                        Step::Issue(Op::RegisterWrite(
                            self.shared.bc[self.code],
                            self.value.clone(),
                        ))
                    } else {
                        Step::Issue(Op::RegisterWrite(self.shared.raw, self.value.clone()))
                    }
                }
                State::CollectBc { next, cand } => {
                    if next > 0 {
                        let slot = next - 1;
                        if let Some(v) = prev
                            .as_ref()
                            .expect("collect resumed with a result")
                            .clone()
                            .expect_register()
                        {
                            if self.candidate.is_none() && slot != self.code {
                                self.candidate = Some((slot, v));
                            }
                        }
                    }
                    if next < m {
                        self.state = State::CollectBc {
                            next: next + 1,
                            cand,
                        };
                        return Step::Issue(Op::RegisterRead(self.shared.bc[next]));
                    }
                    if cand {
                        // Candidate uniqueness: no other candidate code
                        // can be visible.
                        debug_assert!(
                            self.candidate.is_none(),
                            "two candidate writers with different codes"
                        );
                        self.state = State::ReadRaw;
                        return Step::Issue(Op::RegisterRead(self.shared.raw));
                    }
                    self.decide(false, false)
                }
                State::ReadRaw => {
                    let raw = prev
                        .as_ref()
                        .expect("resumed with raw register value")
                        .clone()
                        .expect_register();
                    self.decide(raw.is_none(), true)
                }
                State::Finished => panic!("proposer stepped after completion"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_ac_properties;
    use sift_sim::schedule::{BlockSequential, FixedSchedule, RandomInterleave, RoundRobin};
    use sift_sim::Engine;

    fn run(
        m: usize,
        proposals: &[u64],
        schedule: impl sift_sim::schedule::Schedule,
    ) -> Vec<Option<AcOutput<u64>>> {
        let mut b = LayoutBuilder::new();
        let ac = FlagsAc::allocate(&mut b, m);
        let layout = b.build();
        let procs: Vec<_> = proposals
            .iter()
            .enumerate()
            .map(|(i, &c)| ac.proposer(ProcessId(i), c, c * 10))
            .collect();
        let report = Engine::new(&layout, procs).run(schedule);
        let outputs = report.outputs;
        check_ac_properties(proposals, &outputs);
        outputs
    }

    #[test]
    fn unanimous_commits() {
        let outs = run(4, &[1, 1, 1, 1], RoundRobin::new(4));
        for o in outs {
            let o = o.unwrap();
            assert_eq!(o.verdict, Verdict::Commit);
            assert_eq!(o.code, 1);
            assert_eq!(o.value, 10);
        }
    }

    #[test]
    fn solo_proposer_commits() {
        let outs = run(8, &[5], RoundRobin::new(1));
        assert_eq!(outs[0].as_ref().unwrap().verdict, Verdict::Commit);
    }

    #[test]
    fn sequential_conflict_adopts_committed_value() {
        // p0 runs alone and commits 0; p1 then proposes 1 and must adopt 0.
        let mut slots = vec![0usize; 20];
        slots.extend(vec![1usize; 20]);
        let outs = run(2, &[0, 1], FixedSchedule::from_indices(slots));
        assert_eq!(outs[0].as_ref().unwrap().verdict, Verdict::Commit);
        assert_eq!(outs[0].as_ref().unwrap().code, 0);
        let o1 = outs[1].as_ref().unwrap();
        assert_eq!(o1.verdict, Verdict::Adopt);
        assert_eq!(o1.code, 0);
        assert_eq!(o1.value, 0, "adopted value travels with its code");
    }

    #[test]
    fn concurrent_conflict_never_double_commits() {
        for seed in 0..50 {
            let outs = run(3, &[0, 1, 2], RandomInterleave::new(3, seed));
            let commits: Vec<u64> = outs
                .iter()
                .flatten()
                .filter(|o| o.is_commit())
                .map(|o| o.code)
                .collect();
            let mut unique = commits.clone();
            unique.dedup();
            assert!(unique.len() <= 1, "seed {seed}: commits on {commits:?}");
        }
    }

    #[test]
    fn block_schedule_chains_adoption() {
        let outs = run(4, &[3, 1, 2], BlockSequential::in_order(3));
        // p0 commits 3 solo; everyone else adopts 3.
        for o in outs {
            assert_eq!(o.unwrap().code, 3);
        }
    }

    #[test]
    fn steps_bound_holds() {
        let mut b = LayoutBuilder::new();
        let ac = FlagsAc::allocate(&mut b, 6);
        let layout = b.build();
        let bound = <FlagsAc as AdoptCommit<u64>>::steps_bound(&ac);
        let procs: Vec<_> = (0..4)
            .map(|i| ac.proposer(ProcessId(i), i as u64, i as u64))
            .collect();
        let report = Engine::new(&layout, procs).run(RoundRobin::new(4));
        assert!(report.all_decided());
        for &steps in &report.metrics.per_process_steps {
            assert!(steps <= bound, "{steps} > bound {bound}");
        }
    }

    #[test]
    #[should_panic(expected = "out of code space")]
    fn oversized_code_panics() {
        let mut b = LayoutBuilder::new();
        let ac = FlagsAc::allocate(&mut b, 2);
        let _ = ac.proposer(ProcessId(0), 2, 0u64);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_code_space_panics() {
        let mut b = LayoutBuilder::new();
        let _ = FlagsAc::allocate(&mut b, 0);
    }
}

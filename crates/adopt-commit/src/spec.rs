//! The adopt-commit object contract and a reusable checking harness.
//!
//! An adopt-commit object ([Gafni 1998]; terminology of the paper's
//! §1.2) provides a single operation `AdoptCommit(v)` returning
//! `(commit, v')` or `(adopt, v')`, subject to:
//!
//! * **Termination** — every operation finishes in a bounded number of
//!   its caller's steps (all implementations here are wait-free).
//! * **Validity** — `v'` equals some operation's input.
//! * **Convergence** — if all operations have the same input `v`, all
//!   return `(commit, v)`.
//! * **Coherence** — if any operation returns `(commit, v)`, every
//!   operation returns `(commit, v)` or `(adopt, v)`.
//!
//! Values are identified by a caller-supplied `code`: two proposals are
//! "the same value" iff their codes are equal. This lets personae that
//! wrap the same input value (with different attached coin flips) be
//! treated as equal, as the paper's consensus construction requires.
//!
//! [Gafni 1998]: https://doi.org/10.1145/277697.277724

use sift_sim::{Process, ProcessId, Value};

/// Whether the object detected agreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The caller may safely decide on the value.
    Commit,
    /// The caller must adopt the value as its new preference.
    Adopt,
}

/// The result of an `AdoptCommit` operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcOutput<V> {
    /// Commit or adopt.
    pub verdict: Verdict,
    /// Code of the returned value (codes identify values).
    pub code: u64,
    /// The returned value: some proposal whose code is `code`.
    pub value: V,
}

impl<V> AcOutput<V> {
    /// Returns `true` if the verdict is [`Verdict::Commit`].
    pub fn is_commit(&self) -> bool {
        self.verdict == Verdict::Commit
    }
}

/// A family of adopt-commit proposer state machines over one shared
/// object instance.
///
/// Implementations hold the shared-object ids (allocated from a
/// [`LayoutBuilder`](sift_sim::LayoutBuilder)) and mint one single-use
/// [`Process`] per proposing process.
pub trait AdoptCommit<V: Value> {
    /// The proposer state machine type.
    type Proposer: Process<Value = V, Output = AcOutput<V>>;

    /// Creates the proposer for process `pid` proposing `value` with
    /// identity `code`.
    ///
    /// Callers must ensure that equal values get equal codes and distinct
    /// values distinct codes, and that codes are within the object's
    /// configured code space.
    fn proposer(&self, pid: ProcessId, code: u64, value: V) -> Self::Proposer;

    /// Worst-case number of shared-memory operations per proposer.
    fn steps_bound(&self) -> u64;
}

/// Checks the adopt-commit safety properties over a finished execution,
/// returning the first violation as an error message.
///
/// `proposals[i]` is the code proposed by process `i`; `outputs[i]` its
/// result (or `None` if it crashed before finishing). This is the hook
/// the model checker's visitors use
/// (see [`check_dpor`](sift_sim::mc::check_dpor)); tests that just want
/// a panic use [`check_ac_properties`].
///
/// # Errors
///
/// Returns a description of the first violated property (validity,
/// convergence, or coherence).
pub fn try_check_ac_properties<V: Value>(
    proposals: &[u64],
    outputs: &[Option<AcOutput<V>>],
) -> Result<(), String> {
    let decided: Vec<&AcOutput<V>> = outputs.iter().flatten().collect();

    // Validity: every returned code was proposed.
    for out in &decided {
        if !proposals.contains(&out.code) {
            return Err(format!(
                "validity violated: returned code {} was never proposed (proposals {proposals:?})",
                out.code
            ));
        }
    }

    // Convergence: unanimous input => unanimous commit on it.
    // (Only meaningful when every proposer finished: a crashed proposer
    // may have blocked nobody, but unanimity is judged over actual
    // participants, which we approximate by all proposals.)
    let unanimous = proposals.windows(2).all(|w| w[0] == w[1]);
    if unanimous && !proposals.is_empty() {
        for out in &decided {
            if out.verdict != Verdict::Commit || out.code != proposals[0] {
                return Err(format!(
                    "convergence violated: unanimous input {} but got {:?} on code {}",
                    proposals[0], out.verdict, out.code
                ));
            }
        }
    }

    // Coherence: a commit on v forces everyone to v.
    if let Some(committed) = decided.iter().find(|o| o.is_commit()) {
        for out in &decided {
            if out.code != committed.code {
                return Err(format!(
                    "coherence violated: committed code {} but another process returned code {}",
                    committed.code, out.code
                ));
            }
        }
    }
    Ok(())
}

/// Checks the adopt-commit safety properties over a finished execution.
///
/// Panicking wrapper around [`try_check_ac_properties`]; intended for
/// tests.
///
/// # Panics
///
/// Panics if validity, convergence, or coherence is violated.
pub fn check_ac_properties<V: Value>(proposals: &[u64], outputs: &[Option<AcOutput<V>>]) {
    if let Err(message) = try_check_ac_properties(proposals, outputs) {
        panic!("{message}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(verdict: Verdict, code: u64) -> Option<AcOutput<u64>> {
        Some(AcOutput {
            verdict,
            code,
            value: code,
        })
    }

    #[test]
    fn accepts_legal_outcomes() {
        check_ac_properties(
            &[3, 3, 3],
            &[out(Verdict::Commit, 3), out(Verdict::Commit, 3), None],
        );
        check_ac_properties(&[1, 2], &[out(Verdict::Adopt, 2), out(Verdict::Adopt, 1)]);
        check_ac_properties(&[1, 2], &[out(Verdict::Commit, 2), out(Verdict::Adopt, 2)]);
        check_ac_properties::<u64>(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "validity violated")]
    fn rejects_invented_value() {
        check_ac_properties(&[1, 2], &[out(Verdict::Adopt, 9), None]);
    }

    #[test]
    #[should_panic(expected = "convergence violated")]
    fn rejects_adopt_on_unanimous_input() {
        check_ac_properties(&[5, 5], &[out(Verdict::Adopt, 5), out(Verdict::Commit, 5)]);
    }

    #[test]
    #[should_panic(expected = "coherence violated")]
    fn rejects_commit_conflict() {
        check_ac_properties(&[1, 2], &[out(Verdict::Commit, 1), out(Verdict::Adopt, 2)]);
    }

    #[test]
    fn is_commit_helper() {
        assert!(AcOutput {
            verdict: Verdict::Commit,
            code: 0,
            value: 0u64
        }
        .is_commit());
        assert!(!AcOutput {
            verdict: Verdict::Adopt,
            code: 0,
            value: 0u64
        }
        .is_commit());
    }
}

//! Gafni's two-phase adopt-commit with per-process slots.
//!
//! Phase 1: announce the proposal in slot `A[pid]` and collect `A`; a
//! proposer that saw only its own code becomes a *candidate*. Phase 2:
//! record the proposal in `Bcand[pid]` (candidates) or `Braw[pid]`
//! (others) — the tag is encoded by *which* array is written, so a single
//! atomic write suffices — then collect and decide:
//!
//! * a candidate that sees no raw entry **commits** its value;
//! * a candidate that sees a raw entry adopts its own value (which is the
//!   unique candidate value);
//! * a raw proposer adopts any visible candidate entry, falling back to
//!   its own value.
//!
//! Two collect flavors are provided:
//!
//! * [`GafniSnapshotAc`] — collects are snapshot scans: **at most 5
//!   operations** per proposer. This is the `O(1)` adopt-commit of the
//!   paper's reference \[16\], used by Corollary 1.
//! * [`GafniRegisterAc`] — collects read `n` single-writer registers:
//!   `3n + 2` operations, the classic register-model construction.
//!
//! Unlike the code-indexed objects ([`FlagsAc`](crate::flags::FlagsAc),
//! [`DigitAc`](crate::digit::DigitAc)), cost here depends on the number
//! of *processes*, not on the code space, so any `u64` code is accepted.
//! Values are compared through a caller-supplied code extractor
//! (equal values ⇒ equal codes), which is how personae wrapping the same
//! input are recognized as the same proposal.

use std::sync::Arc;

use sift_sim::{
    LayoutBuilder, Op, OpResult, Process, ProcessId, RegisterId, ScanView, SnapshotId, Step, Value,
};

use crate::spec::{AcOutput, AdoptCommit, Verdict};

/// Shared code extractor: recovers a value's code. Must agree with the
/// codes passed to [`AdoptCommit::proposer`].
pub type CodeOf<V> = Arc<dyn Fn(&V) -> u64 + Send + Sync>;

fn decide<V: Value>(
    cand: bool,
    raw_empty: bool,
    candidate: Option<(u64, V)>,
    code: u64,
    value: V,
) -> AcOutput<V> {
    if cand {
        AcOutput {
            verdict: if raw_empty {
                Verdict::Commit
            } else {
                Verdict::Adopt
            },
            code,
            value,
        }
    } else {
        match candidate {
            Some((c, v)) => AcOutput {
                verdict: Verdict::Adopt,
                code: c,
                value: v,
            },
            None => AcOutput {
                verdict: Verdict::Adopt,
                code,
                value,
            },
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot flavor
// ---------------------------------------------------------------------

/// Shared state of a snapshot-collect Gafni adopt-commit for `n`
/// processes.
///
/// # Examples
///
/// ```
/// use sift_adopt_commit::{AdoptCommit, GafniSnapshotAc};
/// use sift_sim::{Engine, LayoutBuilder, ProcessId};
/// use sift_sim::schedule::RoundRobin;
///
/// let mut b = LayoutBuilder::new();
/// let ac = GafniSnapshotAc::<u64>::allocate(&mut b, 3, |v| *v);
/// let layout = b.build();
/// let procs: Vec<_> = (0..3).map(|i| ac.proposer(ProcessId(i), 9, 9u64)).collect();
/// let report = Engine::new(&layout, procs).run(RoundRobin::new(3));
/// assert!(report.unwrap_outputs().iter().all(|o| o.is_commit()));
/// ```
#[derive(Clone)]
pub struct GafniSnapshotAc<V> {
    a: SnapshotId,
    bcand: SnapshotId,
    braw: SnapshotId,
    n: usize,
    code_of: CodeOf<V>,
}

impl<V: Value> GafniSnapshotAc<V> {
    /// Allocates an instance for `n` processes with the given code
    /// extractor.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn allocate(
        builder: &mut LayoutBuilder,
        n: usize,
        code_of: impl Fn(&V) -> u64 + Send + Sync + 'static,
    ) -> Self {
        assert!(n > 0, "need at least one process");
        Self {
            a: builder.snapshot(n),
            bcand: builder.snapshot(n),
            braw: builder.snapshot(n),
            n,
            code_of: Arc::new(code_of),
        }
    }

    /// Number of processes the instance was sized for.
    pub fn process_count(&self) -> usize {
        self.n
    }
}

impl<V> std::fmt::Debug for GafniSnapshotAc<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GafniSnapshotAc")
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<V: Value> AdoptCommit<V> for GafniSnapshotAc<V> {
    type Proposer = GafniSnapshotProposer<V>;

    /// # Panics
    ///
    /// Panics if `pid` is out of range or `code_of(&value) != code`.
    fn proposer(&self, pid: ProcessId, code: u64, value: V) -> GafniSnapshotProposer<V> {
        assert!(pid.index() < self.n, "{pid} out of range 0..{}", self.n);
        assert_eq!(
            (self.code_of)(&value),
            code,
            "code extractor disagrees with the proposed code"
        );
        GafniSnapshotProposer {
            shared: self.clone(),
            pid,
            code,
            value,
            phase: SnapPhase::Init,
        }
    }

    fn steps_bound(&self) -> u64 {
        5
    }
}

#[derive(Debug, Clone)]
enum SnapPhase<V> {
    Init,
    AwaitAckA,
    AwaitViewA,
    AwaitAckB { cand: bool },
    AwaitViewBc { cand: bool },
    AwaitViewBr { candidate: Option<(u64, V)> },
    Finished,
}

/// Single-use proposer of [`GafniSnapshotAc`]: at most 5 snapshot
/// operations.
#[derive(Debug, Clone)]
pub struct GafniSnapshotProposer<V> {
    shared: GafniSnapshotAc<V>,
    pid: ProcessId,
    code: u64,
    value: V,
    phase: SnapPhase<V>,
}

impl<V: Value> GafniSnapshotProposer<V> {
    fn first_candidate(&self, view: &ScanView<V>) -> Option<(u64, V)> {
        view.present()
            .next()
            .map(|(_, v)| ((self.shared.code_of)(v), v.clone()))
    }
}

impl<V: Value> Process for GafniSnapshotProposer<V> {
    type Value = V;
    type Output = AcOutput<V>;

    fn step(&mut self, prev: Option<OpResult<V>>) -> Step<V, AcOutput<V>> {
        match std::mem::replace(&mut self.phase, SnapPhase::Finished) {
            SnapPhase::Init => {
                self.phase = SnapPhase::AwaitAckA;
                Step::Issue(Op::SnapshotUpdate(
                    self.shared.a,
                    self.pid.index(),
                    self.value.clone(),
                ))
            }
            SnapPhase::AwaitAckA => {
                self.phase = SnapPhase::AwaitViewA;
                Step::Issue(Op::SnapshotScan(self.shared.a))
            }
            SnapPhase::AwaitViewA => {
                let view = prev.expect("resumed with scan of A").expect_view();
                let cand = view
                    .present()
                    .all(|(_, v)| (self.shared.code_of)(v) == self.code);
                let target = if cand {
                    self.shared.bcand
                } else {
                    self.shared.braw
                };
                self.phase = SnapPhase::AwaitAckB { cand };
                Step::Issue(Op::SnapshotUpdate(
                    target,
                    self.pid.index(),
                    self.value.clone(),
                ))
            }
            SnapPhase::AwaitAckB { cand } => {
                self.phase = SnapPhase::AwaitViewBc { cand };
                Step::Issue(Op::SnapshotScan(self.shared.bcand))
            }
            SnapPhase::AwaitViewBc { cand } => {
                let view = prev.expect("resumed with scan of Bcand").expect_view();
                if cand {
                    debug_assert!(
                        view.present()
                            .all(|(_, v)| (self.shared.code_of)(v) == self.code),
                        "two candidate writers with different codes"
                    );
                    self.phase = SnapPhase::AwaitViewBr { candidate: None };
                    Step::Issue(Op::SnapshotScan(self.shared.braw))
                } else {
                    // Raw path never commits, so the raw array is
                    // irrelevant: decide now (4 ops total).
                    let candidate = self.first_candidate(&view);
                    Step::Done(decide(
                        false,
                        false,
                        candidate,
                        self.code,
                        self.value.clone(),
                    ))
                }
            }
            SnapPhase::AwaitViewBr { candidate } => {
                let view = prev.expect("resumed with scan of Braw").expect_view();
                let raw_empty = view.present().next().is_none();
                Step::Done(decide(
                    true,
                    raw_empty,
                    candidate,
                    self.code,
                    self.value.clone(),
                ))
            }
            SnapPhase::Finished => panic!("proposer stepped after completion"),
        }
    }
}

// ---------------------------------------------------------------------
// Register flavor
// ---------------------------------------------------------------------

/// Shared state of a register-collect Gafni adopt-commit for `n`
/// processes: `3n + 2` operations per proposer.
#[derive(Clone)]
pub struct GafniRegisterAc<V> {
    a: Arc<Vec<RegisterId>>,
    bcand: Arc<Vec<RegisterId>>,
    braw: Arc<Vec<RegisterId>>,
    n: usize,
    code_of: CodeOf<V>,
}

impl<V: Value> GafniRegisterAc<V> {
    /// Allocates an instance for `n` processes with the given code
    /// extractor.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn allocate(
        builder: &mut LayoutBuilder,
        n: usize,
        code_of: impl Fn(&V) -> u64 + Send + Sync + 'static,
    ) -> Self {
        assert!(n > 0, "need at least one process");
        Self {
            a: Arc::new(builder.registers(n)),
            bcand: Arc::new(builder.registers(n)),
            braw: Arc::new(builder.registers(n)),
            n,
            code_of: Arc::new(code_of),
        }
    }

    /// Number of processes the instance was sized for.
    pub fn process_count(&self) -> usize {
        self.n
    }
}

impl<V> std::fmt::Debug for GafniRegisterAc<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GafniRegisterAc")
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<V: Value> AdoptCommit<V> for GafniRegisterAc<V> {
    type Proposer = GafniRegisterProposer<V>;

    /// # Panics
    ///
    /// Panics if `pid` is out of range or `code_of(&value) != code`.
    fn proposer(&self, pid: ProcessId, code: u64, value: V) -> GafniRegisterProposer<V> {
        assert!(pid.index() < self.n, "{pid} out of range 0..{}", self.n);
        assert_eq!(
            (self.code_of)(&value),
            code,
            "code extractor disagrees with the proposed code"
        );
        GafniRegisterProposer {
            shared: self.clone(),
            pid,
            code,
            value,
            phase: RegPhase::Init,
            saw_other: false,
            candidate: None,
            raw_empty: true,
        }
    }

    fn steps_bound(&self) -> u64 {
        3 * self.n as u64 + 2
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegPhase {
    Init,
    CollectA { next: usize },
    CollectBc { next: usize, cand: bool },
    CollectBr { next: usize },
    Finished,
}

/// Single-use proposer of [`GafniRegisterAc`].
#[derive(Debug, Clone)]
pub struct GafniRegisterProposer<V> {
    shared: GafniRegisterAc<V>,
    pid: ProcessId,
    code: u64,
    value: V,
    phase: RegPhase,
    saw_other: bool,
    candidate: Option<(u64, V)>,
    raw_empty: bool,
}

impl<V: Value> Process for GafniRegisterProposer<V> {
    type Value = V;
    type Output = AcOutput<V>;

    fn step(&mut self, prev: Option<OpResult<V>>) -> Step<V, AcOutput<V>> {
        let n = self.shared.n;
        loop {
            match self.phase {
                RegPhase::Init => {
                    self.phase = RegPhase::CollectA { next: 0 };
                    return Step::Issue(Op::RegisterWrite(
                        self.shared.a[self.pid.index()],
                        self.value.clone(),
                    ));
                }
                RegPhase::CollectA { next } => {
                    if next > 0 {
                        if let Some(v) = prev
                            .as_ref()
                            .expect("collect resumed with a result")
                            .clone()
                            .expect_register()
                        {
                            if (self.shared.code_of)(&v) != self.code {
                                self.saw_other = true;
                            }
                        }
                    }
                    if next < n {
                        self.phase = RegPhase::CollectA { next: next + 1 };
                        return Step::Issue(Op::RegisterRead(self.shared.a[next]));
                    }
                    let cand = !self.saw_other;
                    let target = if cand {
                        self.shared.bcand[self.pid.index()]
                    } else {
                        self.shared.braw[self.pid.index()]
                    };
                    self.phase = RegPhase::CollectBc { next: 0, cand };
                    return Step::Issue(Op::RegisterWrite(target, self.value.clone()));
                }
                RegPhase::CollectBc { next, cand } => {
                    if next > 0 {
                        if let Some(v) = prev
                            .as_ref()
                            .expect("collect resumed with a result")
                            .clone()
                            .expect_register()
                        {
                            let code = (self.shared.code_of)(&v);
                            debug_assert!(
                                !cand || code == self.code,
                                "two candidate writers with different codes"
                            );
                            if self.candidate.is_none() {
                                self.candidate = Some((code, v));
                            }
                        }
                    }
                    if next < n {
                        self.phase = RegPhase::CollectBc {
                            next: next + 1,
                            cand,
                        };
                        return Step::Issue(Op::RegisterRead(self.shared.bcand[next]));
                    }
                    if cand {
                        self.phase = RegPhase::CollectBr { next: 0 };
                        continue;
                    }
                    self.phase = RegPhase::Finished;
                    let candidate = self.candidate.take();
                    return Step::Done(decide(
                        false,
                        false,
                        candidate,
                        self.code,
                        self.value.clone(),
                    ));
                }
                RegPhase::CollectBr { next } => {
                    if next > 0
                        && prev
                            .as_ref()
                            .expect("collect resumed with a result")
                            .clone()
                            .expect_register()
                            .is_some()
                    {
                        self.raw_empty = false;
                    }
                    if next < n {
                        self.phase = RegPhase::CollectBr { next: next + 1 };
                        return Step::Issue(Op::RegisterRead(self.shared.braw[next]));
                    }
                    self.phase = RegPhase::Finished;
                    return Step::Done(decide(
                        true,
                        self.raw_empty,
                        None,
                        self.code,
                        self.value.clone(),
                    ));
                }
                RegPhase::Finished => panic!("proposer stepped after completion"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_ac_properties;
    use sift_sim::schedule::{BlockSequential, FixedSchedule, RandomInterleave, RoundRobin};
    use sift_sim::Engine;

    enum Flavor {
        Snapshot,
        Register,
    }

    fn run(
        flavor: Flavor,
        proposals: &[u64],
        schedule: impl sift_sim::schedule::Schedule,
    ) -> Vec<Option<AcOutput<u64>>> {
        let n = proposals.len();
        let mut b = LayoutBuilder::new();
        let outputs = match flavor {
            Flavor::Snapshot => {
                let ac = GafniSnapshotAc::<u64>::allocate(&mut b, n, |v| *v);
                let layout = b.build();
                let procs: Vec<_> = proposals
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| ac.proposer(ProcessId(i), c, c))
                    .collect();
                Engine::new(&layout, procs).run(schedule).outputs
            }
            Flavor::Register => {
                let ac = GafniRegisterAc::<u64>::allocate(&mut b, n, |v| *v);
                let layout = b.build();
                let procs: Vec<_> = proposals
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| ac.proposer(ProcessId(i), c, c))
                    .collect();
                Engine::new(&layout, procs).run(schedule).outputs
            }
        };
        check_ac_properties(proposals, &outputs);
        outputs
    }

    #[test]
    fn unanimous_commits_both_flavors() {
        for flavor in [Flavor::Snapshot, Flavor::Register] {
            let outs = run(flavor, &[7, 7, 7], RoundRobin::new(3));
            for o in outs {
                assert_eq!(o.unwrap().verdict, Verdict::Commit);
            }
        }
    }

    #[test]
    fn sequential_conflict_adopts_committed_value() {
        for flavor in [Flavor::Snapshot, Flavor::Register] {
            let mut slots = vec![0usize; 20];
            slots.extend(vec![1usize; 20]);
            let outs = run(flavor, &[4, 9], FixedSchedule::from_indices(slots));
            assert_eq!(outs[0].as_ref().unwrap().verdict, Verdict::Commit);
            assert_eq!(outs[1].as_ref().unwrap().code, 4);
        }
    }

    #[test]
    fn concurrent_conflicts_never_double_commit() {
        for flavor in [Flavor::Snapshot, Flavor::Register] {
            for seed in 0..50 {
                let outs = run(
                    match flavor {
                        Flavor::Snapshot => Flavor::Snapshot,
                        Flavor::Register => Flavor::Register,
                    },
                    &[1, 2, 3, 1],
                    RandomInterleave::new(4, seed),
                );
                let commits: Vec<u64> = outs
                    .iter()
                    .flatten()
                    .filter(|o| o.is_commit())
                    .map(|o| o.code)
                    .collect();
                assert!(commits.windows(2).all(|w| w[0] == w[1]), "seed {seed}");
            }
        }
    }

    #[test]
    fn block_schedule_chains_adoption() {
        for flavor in [Flavor::Snapshot, Flavor::Register] {
            let outs = run(flavor, &[8, 1, 2], BlockSequential::in_order(3));
            for o in outs {
                assert_eq!(o.unwrap().code, 8);
            }
        }
    }

    #[test]
    fn snapshot_flavor_uses_constant_ops() {
        let mut b = LayoutBuilder::new();
        let ac = GafniSnapshotAc::<u64>::allocate(&mut b, 64, |v| *v);
        let layout = b.build();
        let procs: Vec<_> = (0..64)
            .map(|i| ac.proposer(ProcessId(i), i as u64 % 3, i as u64 % 3))
            .collect();
        let report = Engine::new(&layout, procs).run(RoundRobin::new(64));
        assert!(report.all_decided());
        for &steps in &report.metrics.per_process_steps {
            assert!(steps <= 5, "snapshot Gafni must be O(1), got {steps}");
        }
    }

    #[test]
    fn register_flavor_bound_holds() {
        let n = 16;
        let mut b = LayoutBuilder::new();
        let ac = GafniRegisterAc::<u64>::allocate(&mut b, n, |v| *v);
        let layout = b.build();
        let bound = <GafniRegisterAc<u64> as AdoptCommit<u64>>::steps_bound(&ac);
        assert_eq!(bound, 3 * n as u64 + 2);
        let procs: Vec<_> = (0..n)
            .map(|i| ac.proposer(ProcessId(i), i as u64 % 2, i as u64 % 2))
            .collect();
        let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
        for &steps in &report.metrics.per_process_steps {
            assert!(steps <= bound);
        }
    }

    #[test]
    fn codes_identify_values_not_processes() {
        // Different processes proposing the same code must be treated as
        // agreeing, even though they are distinct proposers.
        let outs = run(Flavor::Snapshot, &[5, 5, 5, 5], RandomInterleave::new(4, 3));
        for o in outs {
            assert_eq!(o.unwrap().verdict, Verdict::Commit);
        }
    }

    #[test]
    #[should_panic(expected = "code extractor disagrees")]
    fn mismatched_code_panics() {
        let mut b = LayoutBuilder::new();
        let ac = GafniSnapshotAc::<u64>::allocate(&mut b, 2, |v| *v);
        let _ = ac.proposer(ProcessId(0), 1, 2u64);
    }
}

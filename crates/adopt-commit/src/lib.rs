//! # sift-adopt-commit — adopt-commit objects
//!
//! Adopt-commit objects *detect* agreement without creating it: the
//! operation `AdoptCommit(v)` returns `(commit, v')` or `(adopt, v')`
//! subject to validity, convergence, and coherence (see
//! [`spec`]). Alternating them with conciliators — which *create*
//! agreement with constant probability but cannot detect it — yields
//! consensus (paper §1.2; the alternation lives in `sift-consensus`).
//!
//! Implementations, by cost profile:
//!
//! | Object | Collects | Cost per proposer | Paper role |
//! |---|---|---|---|
//! | [`GafniSnapshotAc`] | snapshot scans | ≤ 5 ops | the `O(1)` object of \[16\] (Corollary 1) |
//! | [`GafniRegisterAc`] | register reads | `3n + 2` ops | classic register construction |
//! | [`FlagsAc`] | per-code flags | `2m + 3` ops | small code spaces |
//! | [`DigitAc`] | per-digit flags | `2·⌈log_b m⌉·(b+1) + 2` ops | stand-in for Aspnes–Ellen \[9\] (Corollaries 2–3) |
//! | [`BinaryAc`] | per-code flags | ≤ 7 ops | Algorithm 3's combining stage |
//!
//! All proposers are wait-free state machines over `sift-sim`'s
//! [`Process`](sift_sim::Process) trait, so they run on the simulator or
//! any other runtime and compose into larger protocols.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binary;
pub mod digit;
pub mod flags;
pub mod gafni;
pub mod spec;

pub use binary::{BinaryAc, BitOutput};
pub use digit::{DigitAc, DigitProposer};
pub use flags::{FlagsAc, FlagsProposer};
pub use gafni::{GafniRegisterAc, GafniRegisterProposer, GafniSnapshotAc, GafniSnapshotProposer};
pub use spec::{check_ac_properties, try_check_ac_properties, AcOutput, AdoptCommit, Verdict};

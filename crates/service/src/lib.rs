//! # sift-service — consensus as a service
//!
//! A sharded, multi-instance frontend over the paper's conciliator +
//! adopt-commit stacks: clients propose `(instance, value)` pairs, each
//! instance is one single-shot consensus, and every instance freezes
//! into an immutable [`CommitFact`] the moment it first decides.
//! Ordering across instances is deliberately *not* provided — the
//! service emits commit facts; an outer session sequences them if the
//! application needs a log (see DESIGN.md, "Service layer").
//!
//! The pieces:
//!
//! * [`shard`] — the instance table, batching, and per-batch consensus
//!   execution over an `ObjectMemory` (substrate-generic);
//! * [`service`] — the threaded async frontend: shard workers, the
//!   [`propose`](Service::propose) future, eviction, introspection;
//! * [`det`] — the deterministic current-thread mode whose commit-fact
//!   stream digest is golden-pinned in CI;
//! * [`runtime`] — the minimal in-tree async runtime (`block_on`,
//!   oneshot channels, a small thread-pool executor). The workspace
//!   builds fully offline, so no external runtime (tokio) is linked;
//!   the API surface is future-based and would port to one directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod det;
pub mod fact;
pub mod runtime;
pub mod service;
pub mod shard;

pub use det::DeterministicService;
pub use fact::{CommitFact, DecideMeta, InstanceId, ServiceError};
pub use service::{ProposeFuture, Service, ServiceConfig};
pub use shard::{shard_of, InstanceMemory, Proposal, ShardConfig, ShardCore, ShardStats};

use sift_obs::ObsReport;

/// Merges per-shard observation reports into one: every key appears
/// both per shard (`shardNNN.<key>`) and aggregated (`service.<key>`).
/// Shard ids render zero-padded so the JSON key order is shard order.
pub fn shard_obs_report<'a>(shards: impl Iterator<Item = (u16, &'a ObsReport)>) -> ObsReport {
    let mut merged = ObsReport::new();
    for (id, obs) in shards {
        for (key, value) in obs.counters() {
            merged.add_count(&format!("shard{id:03}.{key}"), value);
            merged.add_count(&format!("service.{key}"), value);
        }
        for (key, value) in obs.maxima() {
            merged.observe_max(&format!("shard{id:03}.{key}"), value);
            merged.observe_max(&format!("service.{key}"), value);
        }
        for (key, hist) in obs.hists() {
            merged.merge_hist(&format!("shard{id:03}.{key}"), hist);
            merged.merge_hist(&format!("service.{key}"), hist);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_obs_report_prefixes_and_aggregates() {
        let mut a = ObsReport::new();
        a.add_count("proposals", 3);
        a.observe_max("max_batch", 2);
        a.record_hist("batch_size", 2);
        let mut b = ObsReport::new();
        b.add_count("proposals", 4);
        b.observe_max("max_batch", 5);
        b.record_hist("batch_size", 1);
        let merged = shard_obs_report([(0u16, &a), (1u16, &b)].into_iter());
        assert_eq!(merged.count("shard000.proposals"), 3);
        assert_eq!(merged.count("shard001.proposals"), 4);
        assert_eq!(merged.count("service.proposals"), 7);
        assert_eq!(merged.max("service.max_batch"), 5);
        assert_eq!(merged.hist("service.batch_size").unwrap().count(), 2);
        assert_eq!(merged.hist("shard001.batch_size").unwrap().count(), 1);
    }
}

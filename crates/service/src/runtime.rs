//! A minimal async runtime: oneshot channels, `block_on`, and a small
//! thread-pool executor.
//!
//! The workspace builds fully offline, so the service cannot link an
//! external runtime (tokio); this module provides the thin slice the
//! service needs — completion futures for proposals, a way for plain
//! threads to wait on them, and a pool to run many client tasks
//! concurrently in tests and load generators. Nothing here is specific
//! to consensus; it is deliberately tiny rather than general.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};

/// One-shot channel: a [`Sender`] half that delivers at most one value
/// and a [`Receiver`] half that is a [`Future`] of it.
pub mod oneshot {
    use super::*;

    enum State<T> {
        /// Nothing sent yet; the receiver may have parked a waker.
        Empty(Option<Waker>),
        /// A value is waiting for the receiver.
        Value(T),
        /// The sender dropped without sending.
        SenderGone,
        /// The receiver is gone (dropped or already took the value).
        Closed,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
    }

    /// The sending half; delivering is infallible bookkeeping even if
    /// the receiver has been dropped (the value is simply discarded).
    pub struct Sender<T>(Arc<Inner<T>>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("oneshot::Sender")
        }
    }

    /// The receiving half: a future resolving to `Ok(value)` or
    /// `Err(RecvError)` if the sender dropped without sending.
    pub struct Receiver<T>(Arc<Inner<T>>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("oneshot::Receiver")
        }
    }

    /// The sender was dropped before sending a value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("oneshot sender dropped without sending")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates a connected sender/receiver pair.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State::Empty(None)),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    impl<T> Sender<T> {
        /// Delivers `value`. Returns it back if the receiver is gone —
        /// callers that treat cancellation as uninteresting can ignore
        /// the result.
        pub fn send(self, value: T) -> Result<(), T> {
            let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            match std::mem::replace(&mut *state, State::Closed) {
                State::Empty(waker) => {
                    *state = State::Value(value);
                    drop(state);
                    if let Some(w) = waker {
                        w.wake();
                    }
                    Ok(())
                }
                State::Closed => Err(value),
                // A oneshot sender is consumed by `send`, so the state
                // cannot already hold a value or a dropped-sender mark.
                State::Value(_) | State::SenderGone => unreachable!("oneshot sent twice"),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            // `send` consumes the sender, so this also runs right after
            // a successful send — only a still-empty channel means the
            // sender is going away without a value.
            if matches!(*state, State::Empty(_)) {
                if let State::Empty(waker) = std::mem::replace(&mut *state, State::SenderGone) {
                    drop(state);
                    if let Some(w) = waker {
                        w.wake();
                    }
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            *state = State::Closed;
        }
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, RecvError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            match std::mem::replace(&mut *state, State::Closed) {
                State::Value(v) => Poll::Ready(Ok(v)),
                State::SenderGone => Poll::Ready(Err(RecvError)),
                State::Empty(_) => {
                    *state = State::Empty(Some(cx.waker().clone()));
                    Poll::Pending
                }
                State::Closed => unreachable!("oneshot receiver polled after completion"),
            }
        }
    }
}

struct ThreadUnparker {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for ThreadUnparker {
    fn wake(self: Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// Drives `future` to completion on the current thread, parking between
/// polls. This is how plain (OS-thread) clients wait on a proposal.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = std::pin::pin!(future);
    let unparker = Arc::new(ThreadUnparker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&unparker));
    let mut cx = Context::from_waker(&waker);
    loop {
        if let Poll::Ready(out) = future.as_mut().poll(&mut cx) {
            return out;
        }
        while !unparker.notified.swap(false, Ordering::Acquire) {
            std::thread::park();
        }
    }
}

type BoxedFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

struct PoolShared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    fn push(&self, task: Arc<Task>) {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(task);
        drop(queue);
        self.available.notify_one();
    }
}

struct Task {
    /// `Some` while the task still has work; taken for good once the
    /// future completes.
    future: Mutex<Option<BoxedFuture>>,
    pool: Weak<PoolShared>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if let Some(pool) = self.pool.upgrade() {
            pool.push(self);
        }
    }
}

/// A fixed-size thread-pool executor for `Send` futures.
///
/// Just enough to run "N concurrent clients" workloads: spawn returns a
/// [`JoinHandle`] future (also joinable from a plain thread). Dropping
/// the pool stops the workers after their current poll; tasks still
/// queued are dropped, which surfaces to their join handles as a
/// [`oneshot::RecvError`].
///
/// # Examples
///
/// ```
/// use sift_service::runtime::Pool;
///
/// let pool = Pool::new(4);
/// let handles: Vec<_> = (0..8).map(|i| pool.spawn(async move { i * 2 })).collect();
/// let sum: i32 = handles.into_iter().map(|h| h.join()).sum();
/// assert_eq!(sum, 56);
/// ```
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Starts `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "pool needs at least one thread");
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sift-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Schedules `future` and returns a handle to its output.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let (tx, rx) = oneshot::channel();
        let wrapped = async move {
            // A dropped JoinHandle makes delivery fail; that is
            // cancellation-by-disinterest, not an error.
            let _ = tx.send(future.await);
        };
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(wrapped))),
            pool: Arc::downgrade(&self.shared),
        });
        self.shared.push(task);
        JoinHandle { receiver: rx }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Arc<PoolShared>) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // Holding the slot lock across the poll serializes concurrent
        // wake-ups of the same task: a second worker that pops it
        // blocks here until this poll returns, then sees either the
        // parked future (and polls it again, as the wake demanded) or
        // `None` (task finished; nothing to do).
        let mut slot = task.future.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(mut future) = slot.take() {
            let waker = Waker::from(Arc::clone(&task));
            let mut cx = Context::from_waker(&waker);
            if future.as_mut().poll(&mut cx).is_pending() {
                *slot = Some(future);
            }
        }
    }
}

/// Handle to a spawned task's output: await it from async code or
/// [`join`](JoinHandle::join) it from a plain thread.
pub struct JoinHandle<T> {
    receiver: oneshot::Receiver<T>,
}

impl<T> JoinHandle<T> {
    /// Blocks the current thread until the task completes.
    ///
    /// # Panics
    ///
    /// Panics if the task was dropped unfinished (pool shut down).
    pub fn join(self) -> T {
        block_on(self.receiver).expect("task dropped before completing")
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, oneshot::RecvError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut self.receiver).poll(cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneshot_delivers() {
        let (tx, rx) = oneshot::channel();
        tx.send(41u32).unwrap();
        assert_eq!(block_on(rx), Ok(41));
    }

    #[test]
    fn oneshot_reports_dropped_sender() {
        let (tx, rx) = oneshot::channel::<u32>();
        drop(tx);
        assert_eq!(block_on(rx), Err(oneshot::RecvError));
    }

    #[test]
    fn oneshot_send_to_dropped_receiver_is_harmless() {
        let (tx, rx) = oneshot::channel();
        drop(rx);
        assert_eq!(tx.send(7u32), Err(7));
    }

    #[test]
    fn block_on_waits_for_cross_thread_send() {
        let (tx, rx) = oneshot::channel();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(99u64).unwrap();
        });
        assert_eq!(block_on(rx), Ok(99));
        sender.join().unwrap();
    }

    #[test]
    fn pool_runs_many_tasks_on_few_threads() {
        let pool = Pool::new(2);
        let handles: Vec<_> = (0..64u64).map(|i| pool.spawn(async move { i })).collect();
        let total: u64 = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(total, 64 * 63 / 2);
    }

    #[test]
    fn pool_tasks_can_await_each_other() {
        let pool = Pool::new(2);
        let (tx, rx) = oneshot::channel();
        let downstream = pool.spawn(async move { rx.await.unwrap() + 1 });
        let upstream = pool.spawn(async move {
            tx.send(10u32).unwrap();
        });
        upstream.join();
        assert_eq!(downstream.join(), 11);
    }

    #[test]
    fn dropping_a_join_handle_cancels_nothing_and_panics_nothing() {
        let pool = Pool::new(1);
        let flag = Arc::new(AtomicBool::new(false));
        let seen = Arc::clone(&flag);
        let handle = pool.spawn(async move {
            seen.store(true, Ordering::Release);
        });
        drop(handle);
        // The task still runs; give the worker a moment.
        for _ in 0..100 {
            if flag.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("spawned task never ran after its handle was dropped");
    }
}

//! Commit facts: the immutable output of one service instance.
//!
//! A [`CommitFact`] is produced exactly once per instance, at the
//! moment the instance's consensus stack first commits, and is never
//! mutated afterwards: every later proposal to the same instance — from
//! any client, on any worker — receives a clone of the *same* fact,
//! metadata included. Sequencing across instances is deliberately not
//! provided; an outer session orders commit facts if it needs to (see
//! DESIGN.md, "Service layer").

use std::fmt;

/// Identifies one single-shot consensus instance.
///
/// Instance ids are chosen by clients; the service maps them onto
/// shards with a fixed hash, so the same id always lands on the same
/// shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u64);

impl InstanceId {
    /// The raw id.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl From<u64> for InstanceId {
    fn from(raw: u64) -> Self {
        InstanceId(raw)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst:{}", self.0)
    }
}

/// Metadata about the batch and run that decided an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecideMeta {
    /// The shard that owned the instance.
    pub shard: u16,
    /// Shard-local decision sequence number (0-based, dense per shard).
    pub seq: u64,
    /// Number of proposals batched into the deciding consensus run.
    pub batch_size: u32,
    /// Consensus attempts run (1 unless phase escalation retried).
    pub attempts: u32,
    /// Conciliator + adopt-commit phases the first decider used.
    pub phases: u32,
    /// The client-supplied tag of the deciding proposal: the first
    /// proposal in batch order whose value the instance decided.
    pub deciding_tag: u64,
}

/// The immutable record that an instance decided a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitFact {
    /// The instance that decided.
    pub instance: InstanceId,
    /// The decided value — always one of the batched proposals' values.
    pub value: u64,
    /// How the decision came about.
    pub meta: DecideMeta,
}

impl fmt::Display for CommitFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {} (shard {} seq {} batch {})",
            self.instance, self.value, self.meta.shard, self.meta.seq, self.meta.batch_size
        )
    }
}

/// Why a proposal was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The instance decided, was retained up to the shard's capacity,
    /// and has since been evicted; its commit fact is gone.
    Evicted(InstanceId),
    /// The service dropped the proposal while shutting down.
    ShuttingDown,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Evicted(id) => write!(f, "{id} was evicted"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_id_round_trips() {
        let id: InstanceId = 7u64.into();
        assert_eq!(id.get(), 7);
        assert_eq!(id.to_string(), "inst:7");
    }

    #[test]
    fn errors_display() {
        assert!(ServiceError::Evicted(InstanceId(3))
            .to_string()
            .contains("inst:3"));
        assert!(ServiceError::ShuttingDown.to_string().contains("shutting"));
    }

    #[test]
    fn facts_compare_structurally() {
        let fact = CommitFact {
            instance: InstanceId(1),
            value: 9,
            meta: DecideMeta {
                shard: 0,
                seq: 0,
                batch_size: 2,
                attempts: 1,
                phases: 1,
                deciding_tag: 5,
            },
        };
        assert_eq!(fact.clone(), fact);
        assert!(fact.to_string().contains("inst:1 = 9"));
    }
}

//! The threaded async frontend: shard workers plus a proposal future.
//!
//! [`Service::start`] spins up `workers` OS threads; worker `w` owns
//! shards `w, w + workers, …` and ticks them whenever proposals are
//! pending. Clients call [`Service::propose`] from any thread or async
//! task: the proposal lands in its shard's inbox and resolves — as a
//! future — with the instance's [`CommitFact`]. Proposals that reach an
//! already-decided instance resolve immediately from the table;
//! proposals that land on an open instance within the same shard tick
//! are batched into one consensus run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sift_core::Persona;
use sift_obs::ObsReport;
use sift_shmem::memory::AtomicMemory;

use crate::fact::{CommitFact, InstanceId, ServiceError};
use crate::runtime::{block_on, oneshot};
use crate::shard::{shard_of, Proposal, ShardConfig, ShardCore, ShardStats};
use crate::shard_obs_report;

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards (instance-table partitions).
    pub shards: usize,
    /// Number of worker threads ticking the shards.
    pub workers: usize,
    /// Per-shard configuration (seed, capacity, phase budgets).
    pub shard: ShardConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            workers: 4,
            shard: ShardConfig::default(),
        }
    }
}

type Core = ShardCore<AtomicMemory<Persona>>;

struct ShardSlot {
    core: Mutex<Core>,
    /// Set when the shard has proposals waiting for a tick.
    dirty: AtomicBool,
}

struct Inner {
    slots: Vec<ShardSlot>,
    shutdown: AtomicBool,
    wake_lock: Mutex<()>,
    wake: Condvar,
}

impl Inner {
    fn notify(&self) {
        let _guard = self.wake_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.wake.notify_all();
    }
}

/// The running service. Cheap to share behind an [`Arc`]; consumed by
/// [`shutdown`](Service::shutdown).
///
/// # Examples
///
/// ```
/// use sift_service::{Service, ServiceConfig, InstanceId};
///
/// let service = Service::start(ServiceConfig::default());
/// let fact = service.propose_sync(InstanceId(1), 42).unwrap();
/// assert_eq!(fact.value, 42);
/// // A repeat proposal — even with another value — returns the same fact.
/// assert_eq!(service.propose_sync(InstanceId(1), 7).unwrap(), fact);
/// service.shutdown();
/// ```
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    next_tag: AtomicU64,
}

impl Service {
    /// Starts the shard workers.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `workers` is zero, or `shards` exceeds
    /// `u16::MAX`.
    pub fn start(config: ServiceConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.shards <= u16::MAX as usize, "too many shards");
        assert!(config.workers > 0, "need at least one worker");
        let inner = Arc::new(Inner {
            slots: (0..config.shards)
                .map(|id| ShardSlot {
                    core: Mutex::new(ShardCore::new(id as u16, config.shard.clone())),
                    dirty: AtomicBool::new(false),
                })
                .collect(),
            shutdown: AtomicBool::new(false),
            wake_lock: Mutex::new(()),
            wake: Condvar::new(),
        });
        let workers = (0..config.workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                let stride = config.workers;
                std::thread::Builder::new()
                    .name(format!("sift-shard-{w}"))
                    .spawn(move || worker_loop(&inner, w, stride))
                    .expect("spawn shard worker")
            })
            .collect();
        Self {
            inner,
            workers,
            next_tag: AtomicU64::new(0),
        }
    }

    /// Proposes `value` for `instance` with an auto-assigned unique
    /// tag. The returned future resolves with the instance's commit
    /// fact — the new one if this batch decides, the original one if
    /// the instance already decided.
    pub fn propose(&self, instance: InstanceId, value: u64) -> ProposeFuture {
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        self.propose_tagged(instance, value, tag)
    }

    /// [`propose`](Self::propose) with a caller-chosen tag (echoed in
    /// [`DecideMeta::deciding_tag`](crate::DecideMeta::deciding_tag) if
    /// this proposal's value wins).
    pub fn propose_tagged(&self, instance: InstanceId, value: u64, tag: u64) -> ProposeFuture {
        let (tx, rx) = oneshot::channel();
        let shard = shard_of(instance, self.inner.slots.len());
        let slot = &self.inner.slots[shard];
        let pending = {
            let mut core = slot.core.lock().unwrap_or_else(|e| e.into_inner());
            core.submit(Proposal {
                instance,
                value,
                tag,
                waiter: Some(tx),
                submitted: Some(Instant::now()),
            })
        };
        if pending {
            slot.dirty.store(true, Ordering::Release);
            self.inner.notify();
        }
        ProposeFuture { receiver: rx }
    }

    /// Blocking [`propose`](Self::propose), for plain-thread clients.
    pub fn propose_sync(
        &self,
        instance: InstanceId,
        value: u64,
    ) -> Result<CommitFact, ServiceError> {
        block_on(self.propose(instance, value))
    }

    /// Evicts a decided instance (drops its fact, leaves a tombstone).
    /// Returns `false` if the instance is not currently decided.
    pub fn evict(&self, instance: InstanceId) -> bool {
        let shard = shard_of(instance, self.inner.slots.len());
        let mut core = self.inner.slots[shard]
            .core
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        core.evict(instance)
    }

    /// The stored fact for `instance`, if decided and retained.
    pub fn fact(&self, instance: InstanceId) -> Option<CommitFact> {
        let shard = shard_of(instance, self.inner.slots.len());
        let core = self.inner.slots[shard]
            .core
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        core.fact(instance).cloned()
    }

    /// Aggregated table introspection across all shards.
    pub fn stats(&self) -> ShardStats {
        self.shard_stats()
            .into_iter()
            .fold(ShardStats::default(), ShardStats::merge)
    }

    /// Per-shard table introspection, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.inner
            .slots
            .iter()
            .map(|slot| slot.core.lock().unwrap_or_else(|e| e.into_inner()).stats())
            .collect()
    }

    /// A live snapshot of the merged observation report (per-shard
    /// `shardNNN.*` keys plus `service.*` aggregates).
    pub fn obs_report(&self) -> ObsReport {
        let shards: Vec<(u16, ObsReport)> = self
            .inner
            .slots
            .iter()
            .map(|slot| {
                let core = slot.core.lock().unwrap_or_else(|e| e.into_inner());
                (core.id(), core.obs().clone())
            })
            .collect();
        shard_obs_report(shards.iter().map(|(id, obs)| (*id, obs)))
    }

    /// Stops the workers, drains every shard one final time (pending
    /// waiters resolve with their facts), and returns the final merged
    /// observation report.
    pub fn shutdown(mut self) -> ObsReport {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.notify();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers drain before exiting, but a proposal may have raced
        // past the final worker pass; settle every shard here.
        for slot in &self.inner.slots {
            let mut core = slot.core.lock().unwrap_or_else(|e| e.into_inner());
            core.tick();
        }
        self.obs_report()
    }
}

fn worker_loop(inner: &Arc<Inner>, worker: usize, stride: usize) {
    let owned: Vec<usize> = (worker..inner.slots.len()).step_by(stride).collect();
    loop {
        let mut did_work = false;
        for &index in &owned {
            let slot = &inner.slots[index];
            if slot.dirty.swap(false, Ordering::Acquire) {
                let mut core = slot.core.lock().unwrap_or_else(|e| e.into_inner());
                did_work |= !core.tick().is_empty();
            }
        }
        if did_work {
            continue;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            // Final drain: settle anything that raced in after the
            // last scan, then exit.
            for &index in &owned {
                let mut core = inner.slots[index]
                    .core
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                core.tick();
            }
            return;
        }
        // The timeout bounds the residual lost-wakeup window (a client
        // can set `dirty` between our scan and this wait).
        let guard = inner.wake_lock.lock().unwrap_or_else(|e| e.into_inner());
        let _ = inner
            .wake
            .wait_timeout(guard, Duration::from_millis(1))
            .unwrap_or_else(|e| e.into_inner());
    }
}

/// Future for one proposal's outcome. Dropping it cancels nothing but
/// the delivery: the proposal still participates in (or reads) the
/// decision; the shard just discards the reply.
pub struct ProposeFuture {
    receiver: oneshot::Receiver<Result<CommitFact, ServiceError>>,
}

impl std::future::Future for ProposeFuture {
    type Output = Result<CommitFact, ServiceError>;

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        std::pin::Pin::new(&mut self.receiver).poll(cx).map(|r| {
            // A dropped sender means the service shut down with this
            // proposal still queued.
            r.unwrap_or(Err(ServiceError::ShuttingDown))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propose_decides_and_is_idempotent() {
        let service = Service::start(ServiceConfig {
            shards: 4,
            workers: 2,
            ..ServiceConfig::default()
        });
        let first = service.propose_sync(InstanceId(5), 11).unwrap();
        assert_eq!(first.value, 11);
        let repeat = service.propose_sync(InstanceId(5), 999).unwrap();
        assert_eq!(repeat, first, "idempotence must return the original fact");
        let report = service.shutdown();
        assert_eq!(report.count("service.decided"), 1);
        assert_eq!(report.count("service.idempotent"), 1);
        assert!(report.hist("service.latency_ns").is_some());
    }

    #[test]
    fn concurrent_conflicting_proposals_agree() {
        let service = Arc::new(Service::start(ServiceConfig::default()));
        let clients: Vec<_> = (0..8u64)
            .map(|i| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || service.propose_sync(InstanceId(77), i).unwrap())
            })
            .collect();
        let facts: Vec<CommitFact> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        let value = facts[0].value;
        assert!(value < 8, "validity");
        assert!(facts.iter().all(|f| *f == facts[0]), "agreement");
        Arc::try_unwrap(service).ok().unwrap().shutdown();
    }

    #[test]
    fn shutdown_resolves_or_rejects_every_waiter() {
        let service = Service::start(ServiceConfig {
            shards: 2,
            workers: 1,
            ..ServiceConfig::default()
        });
        let futures: Vec<_> = (0..16u64)
            .map(|i| service.propose(InstanceId(i), i))
            .collect();
        service.shutdown();
        for (i, f) in futures.into_iter().enumerate() {
            // The final drain decides everything that was queued.
            let fact = block_on(f).expect("queued proposal resolves on shutdown");
            assert_eq!(fact.value, i as u64);
        }
    }
}

//! Deterministic (current-thread) service mode.
//!
//! [`DeterministicService`] drives the *same* [`ShardCore`]s the
//! threaded frontend runs, but single-threaded, with an explicit tick
//! cadence and no wall clock — so a seeded proposal script always
//! produces the same commit-fact stream, byte for byte. The stream
//! [`digest`](DeterministicService::digest) is golden-pinned in
//! `tests/service_determinism.rs`, which is what makes service
//! behaviour replayable in CI (mirroring the fuzz/conformance golden
//! digests in `crates/bench/tests/seed_stability.rs`).

use sift_core::Persona;
use sift_obs::ObsReport;
use sift_shmem::memory::AtomicMemory;
use sift_sim::rng::Xoshiro256StarStar;

use crate::fact::{CommitFact, InstanceId};
use crate::shard::{shard_of, InstanceMemory, Proposal, ShardConfig, ShardCore, ShardStats};
use crate::shard_obs_report;

/// A single-threaded, seeded service over `S` shards.
///
/// Generic over the substrate so the differential tests can replay one
/// script against `LockFreeMemory` and `CoarseMemory` and compare the
/// resulting streams; defaults to the runtime's
/// [`AtomicMemory`].
///
/// # Examples
///
/// ```
/// use sift_service::det::DeterministicService;
/// use sift_service::{InstanceId, ShardConfig};
///
/// let mut svc: DeterministicService = DeterministicService::new(4, ShardConfig::default());
/// svc.propose(InstanceId(1), 10, 0);
/// svc.propose(InstanceId(1), 20, 1);
/// let facts = svc.tick_all();
/// assert_eq!(facts.len(), 1);
/// assert!([10, 20].contains(&facts[0].value));
/// ```
#[derive(Debug)]
pub struct DeterministicService<M: InstanceMemory = AtomicMemory<Persona>> {
    shards: Vec<ShardCore<M>>,
    stream: Vec<CommitFact>,
}

impl<M: InstanceMemory> DeterministicService<M> {
    /// Creates `shards` empty shards sharing `config`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or does not fit in `u16`.
    pub fn new(shards: usize, config: ShardConfig) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(shards <= u16::MAX as usize, "too many shards");
        Self {
            shards: (0..shards)
                .map(|id| ShardCore::new(id as u16, config.clone()))
                .collect(),
            stream: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Enqueues one proposal on its shard (fire-and-forget; facts are
    /// read back from [`tick_all`](Self::tick_all) or
    /// [`fact`](Self::fact)).
    pub fn propose(&mut self, instance: InstanceId, value: u64, tag: u64) {
        let shard = shard_of(instance, self.shards.len());
        self.shards[shard].submit(Proposal {
            instance,
            value,
            tag,
            waiter: None,
            submitted: None,
        });
    }

    /// Ticks every shard in shard order, appending newly decided facts
    /// to the stream and returning this tick's batch of them.
    pub fn tick_all(&mut self) -> Vec<CommitFact> {
        let mut new_facts = Vec::new();
        for shard in &mut self.shards {
            new_facts.extend(shard.tick());
        }
        self.stream.extend(new_facts.iter().cloned());
        new_facts
    }

    /// Replays a proposal script, ticking every `window` proposals (and
    /// once at the end). Tags are script positions. `window == 0` means
    /// one final tick only — maximal batching.
    pub fn run_script(&mut self, script: &[(InstanceId, u64)], window: usize) {
        for (position, &(instance, value)) in script.iter().enumerate() {
            self.propose(instance, value, position as u64);
            if window > 0 && (position + 1) % window == 0 {
                self.tick_all();
            }
        }
        self.tick_all();
    }

    /// The stored fact for `instance`, if decided and retained.
    pub fn fact(&self, instance: InstanceId) -> Option<&CommitFact> {
        self.shards[shard_of(instance, self.shards.len())].fact(instance)
    }

    /// Explicitly evicts a decided instance (see
    /// [`ShardCore::evict`]).
    pub fn evict(&mut self, instance: InstanceId) -> bool {
        let shard = shard_of(instance, self.shards.len());
        self.shards[shard].evict(instance)
    }

    /// The commit-fact stream so far, in tick order (shard order within
    /// a tick, decision order within a shard).
    pub fn stream(&self) -> &[CommitFact] {
        &self.stream
    }

    /// FNV-1a digest of the full commit-fact stream, metadata included.
    /// Two runs produce equal digests iff they decided the same values
    /// with the same batches, attempts, phases, and deciding proposals.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf29ce484222325;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
        };
        for fact in &self.stream {
            mix(fact.instance.0);
            mix(fact.value);
            mix(fact.meta.shard as u64);
            mix(fact.meta.seq);
            mix(fact.meta.batch_size as u64);
            mix(fact.meta.attempts as u64);
            mix(fact.meta.phases as u64);
            mix(fact.meta.deciding_tag);
        }
        hash
    }

    /// Aggregated table introspection across shards.
    pub fn stats(&self) -> ShardStats {
        self.shards
            .iter()
            .map(ShardCore::stats)
            .fold(ShardStats::default(), ShardStats::merge)
    }

    /// Per-shard stats, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(ShardCore::stats).collect()
    }

    /// The merged observation report (per-shard `shardNNN.*` keys plus
    /// `service.*` aggregates).
    pub fn obs_report(&self) -> ObsReport {
        shard_obs_report(self.shards.iter().map(|s| (s.id(), s.obs())))
    }
}

/// Generates a seeded proposal script: `proposals` entries over
/// `instances` uniformly random instances with values in `0..values`.
/// The deterministic golden tests and the differential suite share this
/// generator.
///
/// # Panics
///
/// Panics if `instances == 0` or `values == 0`.
pub fn uniform_script(
    seed: u64,
    proposals: usize,
    instances: u64,
    values: u64,
) -> Vec<(InstanceId, u64)> {
    assert!(instances > 0, "need at least one instance");
    assert!(values > 0, "need at least one value");
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..proposals)
        .map(|_| (InstanceId(rng.range_u64(instances)), rng.range_u64(values)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_script_same_digest() {
        let script = uniform_script(9, 60, 12, 4);
        let run = |window| {
            let mut svc: DeterministicService =
                DeterministicService::new(4, ShardConfig::default());
            svc.run_script(&script, window);
            svc.digest()
        };
        assert_eq!(run(5), run(5));
        // A different tick cadence changes batching, hence the stream.
        assert_ne!(run(5), run(1), "batching must be observable in the digest");
    }

    #[test]
    fn every_instance_decides_exactly_once() {
        let script = uniform_script(3, 100, 10, 5);
        let mut svc: DeterministicService = DeterministicService::new(3, ShardConfig::default());
        svc.run_script(&script, 7);
        let mut seen = std::collections::HashSet::new();
        for fact in svc.stream() {
            assert!(
                seen.insert(fact.instance),
                "{} decided twice",
                fact.instance
            );
        }
        // Exactly the distinct proposed instances decided.
        let distinct: std::collections::HashSet<_> = script.iter().map(|&(id, _)| id).collect();
        assert_eq!(seen, distinct);
        assert_eq!(svc.stats().pending, 0);
    }

    #[test]
    fn obs_report_aggregates_across_shards() {
        let script = uniform_script(5, 40, 8, 3);
        let mut svc: DeterministicService = DeterministicService::new(2, ShardConfig::default());
        svc.run_script(&script, 4);
        let report = svc.obs_report();
        assert_eq!(report.count("service.proposals"), 40);
        assert_eq!(
            report.count("shard000.proposals") + report.count("shard001.proposals"),
            40
        );
        assert_eq!(report.count("service.decided"), svc.stream().len() as u64);
        assert!(report.hist("service.batch_size").is_some());
    }
}

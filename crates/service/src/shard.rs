//! One shard: an instance table plus batching consensus executor.
//!
//! A [`ShardCore`] owns every instance whose id hashes to it. Each
//! instance is a single-shot consensus: the proposals that have
//! arrived by the time the shard ticks form the instance's *batch*, the
//! batch becomes the participant set of a fresh conciliator +
//! adopt-commit stack over an [`ObjectMemory`](sift_shmem::ObjectMemory)
//! built for exactly that batch, and the stack's decision is frozen
//! into a [`CommitFact`]. Proposals that arrive after the decision
//! never re-run consensus — they read the stored fact (idempotence).
//!
//! The core is single-owner and synchronous; the async frontend in
//! [`service`](crate::service) wraps one core per shard in a mutex and
//! ticks it from a worker thread, and the deterministic mode in
//! [`det`](crate::det) drives cores directly on one thread. Both paths
//! execute this exact code, so the deterministic suite exercises the
//! same batching and decision logic the threaded service runs.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

use sift_consensus::{ConsensusOutcome, ConsensusProtocol};
use sift_core::{Epsilon, Persona, SnapshotConciliator};
use sift_obs::ObsReport;
use sift_shmem::memory::{
    ExecuteOps, ObjectMemory, SharedMaxRegister, SharedRegister, SharedSnapshot,
};
use sift_shmem::run_lockstep_on;
use sift_sim::rng::SeedSplitter;
use sift_sim::{Layout, LayoutBuilder, ProcessId, Value};

use crate::fact::{CommitFact, DecideMeta, InstanceId, ServiceError};
use crate::runtime::oneshot;

/// The completion side of one proposal: resolved with the instance's
/// commit fact (or a rejection) when the shard processes it.
pub type Waiter = oneshot::Sender<Result<CommitFact, ServiceError>>;

/// Memory that can be instantiated from a [`Layout`] — what a shard
/// builds per consensus run. Implemented by every
/// [`ObjectMemory`] assembly, so shards are generic over the substrate
/// (the differential tests pin `LockFreeMemory` against
/// `CoarseMemory`).
pub trait InstanceMemory: ExecuteOps<Persona> {
    /// Builds the memory for `layout`.
    fn for_layout(layout: &Layout) -> Self;
}

impl<V, R, S, M> InstanceMemory for ObjectMemory<V, R, S, M>
where
    V: Value,
    R: SharedRegister<V>,
    S: SharedSnapshot<V>,
    M: SharedMaxRegister<V>,
    ObjectMemory<V, R, S, M>: ExecuteOps<Persona>,
{
    fn for_layout(layout: &Layout) -> Self {
        ObjectMemory::new(layout)
    }
}

/// Per-shard configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Master seed; every consensus run draws its randomness from
    /// `(seed, shard, instance, attempt)`, so decisions are replayable.
    pub seed: u64,
    /// Decided facts retained per shard. When the table exceeds this,
    /// the oldest decided instances are evicted (their facts dropped,
    /// later proposals rejected with
    /// [`ServiceError::Evicted`]). `usize::MAX` retains everything.
    pub capacity: usize,
    /// Phase budget of the first consensus attempt. Unanimous batches
    /// commit in one phase; contended ones need a few more, and an
    /// exhausted attempt retries with the budget doubled.
    pub base_phases: usize,
    /// Cap for the escalating phase budget.
    pub max_phases: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            capacity: usize::MAX,
            base_phases: 4,
            max_phases: 64,
        }
    }
}

/// One proposal travelling through the service.
#[derive(Debug)]
pub struct Proposal {
    /// Target instance.
    pub instance: InstanceId,
    /// Proposed value.
    pub value: u64,
    /// Client-chosen tag, echoed in [`DecideMeta::deciding_tag`] if
    /// this proposal's value wins.
    pub tag: u64,
    /// Completion channel; `None` for fire-and-forget submission (the
    /// deterministic driver reads facts from [`ShardCore::tick`]
    /// instead).
    pub waiter: Option<Waiter>,
    /// Submission time for latency accounting; `None` in deterministic
    /// mode, which must not read the wall clock.
    pub submitted: Option<Instant>,
}

/// Introspection snapshot of one shard's table (leak assertions in the
/// negative-path tests are built on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Proposals waiting for the next tick.
    pub pending: usize,
    /// How many of those carry a live completion channel.
    pub waiters: usize,
    /// Decided facts currently retained.
    pub decided: usize,
    /// Instances evicted so far (tombstones).
    pub evicted: usize,
}

impl ShardStats {
    /// Key-wise sum, for aggregating across shards.
    pub fn merge(self, other: ShardStats) -> ShardStats {
        ShardStats {
            pending: self.pending + other.pending,
            waiters: self.waiters + other.waiters,
            decided: self.decided + other.decided,
            evicted: self.evicted + other.evicted,
        }
    }
}

/// The state of one shard. See the module docs for the lifecycle.
#[derive(Debug)]
pub struct ShardCore<M: InstanceMemory> {
    id: u16,
    config: ShardConfig,
    /// Proposals accepted since the last tick, in arrival order.
    inbox: Vec<Proposal>,
    /// Decided instances and their immutable facts.
    decided: HashMap<InstanceId, CommitFact>,
    /// Decision order, for FIFO eviction under `capacity`.
    decided_order: VecDeque<InstanceId>,
    /// Tombstones: evicted instances are remembered (one u64 each) so
    /// late proposals get a definite rejection instead of silently
    /// re-deciding a fresh instance.
    evicted: HashSet<InstanceId>,
    seq: u64,
    obs: ObsReport,
    _marker: std::marker::PhantomData<M>,
}

impl<M: InstanceMemory> ShardCore<M> {
    /// Creates an empty shard with the given id and configuration.
    pub fn new(id: u16, config: ShardConfig) -> Self {
        Self {
            id,
            config,
            inbox: Vec::new(),
            decided: HashMap::new(),
            decided_order: VecDeque::new(),
            evicted: HashSet::new(),
            seq: 0,
            obs: ObsReport::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// This shard's id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Accepts one proposal. Decided instances answer immediately from
    /// the table; evicted ones reject immediately; open ones batch
    /// until the next [`tick`](Self::tick).
    ///
    /// Returns `true` if the proposal is waiting for a tick (the
    /// caller should schedule one).
    pub fn submit(&mut self, proposal: Proposal) -> bool {
        self.obs.add_count("proposals", 1);
        if let Some(fact) = self.decided.get(&proposal.instance) {
            self.obs.add_count("idempotent", 1);
            let fact = fact.clone();
            self.complete(proposal, Ok(fact));
            return false;
        }
        if self.evicted.contains(&proposal.instance) {
            self.obs.add_count("evicted_rejects", 1);
            let instance = proposal.instance;
            self.complete(proposal, Err(ServiceError::Evicted(instance)));
            return false;
        }
        self.inbox.push(proposal);
        true
    }

    /// Processes every proposal accepted since the last tick: groups
    /// them by instance (arrival order preserved), runs one consensus
    /// per still-open instance, completes all waiters, and applies the
    /// eviction policy. Returns the newly minted facts in decision
    /// order.
    pub fn tick(&mut self) -> Vec<CommitFact> {
        if self.inbox.is_empty() {
            return Vec::new();
        }
        let inbox = std::mem::take(&mut self.inbox);
        // Group by instance, keeping both first-arrival instance order
        // and intra-batch arrival order — the batch order is what makes
        // deterministic runs replayable.
        let mut batches: Vec<(InstanceId, Vec<Proposal>)> = Vec::new();
        let mut index: HashMap<InstanceId, usize> = HashMap::new();
        for proposal in inbox {
            match index.entry(proposal.instance) {
                Entry::Occupied(slot) => batches[*slot.get()].1.push(proposal),
                Entry::Vacant(slot) => {
                    slot.insert(batches.len());
                    batches.push((proposal.instance, vec![proposal]));
                }
            }
        }
        let mut facts = Vec::with_capacity(batches.len());
        for (instance, batch) in batches {
            let fact = self.decide(instance, &batch);
            for proposal in batch {
                self.complete(proposal, Ok(fact.clone()));
            }
            self.decided.insert(instance, fact.clone());
            self.decided_order.push_back(instance);
            facts.push(fact);
            self.enforce_capacity();
        }
        facts
    }

    /// Runs the consensus stack for one instance's batch.
    fn decide(&mut self, instance: InstanceId, batch: &[Proposal]) -> CommitFact {
        let n = batch.len();
        let mut phases = self.config.base_phases.max(1);
        let mut attempt: u64 = 0;
        let (value, decider_phases) = loop {
            let split = self.run_seed(instance, attempt);
            let mut builder = LayoutBuilder::new();
            let protocol = ConsensusProtocol::allocate(
                &mut builder,
                n,
                phases,
                |b| SnapshotConciliator::allocate(b, n, Epsilon::HALF),
                |b| sift_adopt_commit_snapshot(b, n),
            );
            let layout = builder.build();
            let memory = M::for_layout(&layout);
            let participants: Vec<_> = batch
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let mut rng = split.stream("participant", i as u64);
                    protocol.participant(ProcessId(i), p.value, &mut rng)
                })
                .collect();
            let outcomes = run_lockstep_on(&memory, participants);
            // Agreement is absolute, so the first decider speaks for
            // all; exhausted participants would have adopted the same
            // value had they been given more phases.
            if let Some(decision) = outcomes.iter().find_map(|o| match o {
                ConsensusOutcome::Decided(d) => Some(d),
                ConsensusOutcome::Exhausted { .. } => None,
            }) {
                break (decision.value, decision.phases);
            }
            // Every participant exhausted its phases (probability at
            // most (1-δ)^phases per attempt): retry with a doubled
            // budget and fresh randomness.
            attempt += 1;
            assert!(
                attempt < 64,
                "shard {} instance {instance}: 64 consensus attempts all exhausted",
                self.id
            );
            self.obs.add_count("retries", 1);
            phases = (phases * 2).min(self.config.max_phases.max(1));
        };
        let deciding_tag = batch
            .iter()
            .find(|p| p.value == value)
            .map(|p| p.tag)
            .expect("validity: decided value was proposed by someone in the batch");
        let fact = CommitFact {
            instance,
            value,
            meta: DecideMeta {
                shard: self.id,
                seq: self.seq,
                batch_size: n as u32,
                attempts: attempt as u32 + 1,
                phases: decider_phases as u32,
                deciding_tag,
            },
        };
        self.seq += 1;
        self.obs.add_count("decided", 1);
        self.obs.record_hist("batch_size", n as u64);
        self.obs.record_hist("phases", decider_phases as u64);
        self.obs.observe_max("max_batch", n as u64);
        fact
    }

    /// Seed material for `(seed, shard, instance, attempt)`.
    fn run_seed(&self, instance: InstanceId, attempt: u64) -> SeedSplitter {
        let shard_seed = SeedSplitter::new(self.config.seed).seed("shard", self.id as u64);
        let instance_seed = SeedSplitter::new(shard_seed).seed("instance", instance.0);
        SeedSplitter::new(SeedSplitter::new(instance_seed).seed("attempt", attempt))
    }

    /// Resolves one proposal, recording latency; a dropped receiver
    /// (client cancelled mid-proposal) is counted, never an error.
    fn complete(&mut self, proposal: Proposal, result: Result<CommitFact, ServiceError>) {
        if let Some(submitted) = proposal.submitted {
            self.obs
                .record_hist("latency_ns", submitted.elapsed().as_nanos() as u64);
        }
        if let Some(waiter) = proposal.waiter {
            if waiter.send(result).is_err() {
                self.obs.add_count("cancelled", 1);
            }
        }
    }

    fn enforce_capacity(&mut self) {
        while self.decided.len() > self.config.capacity {
            let Some(oldest) = self.decided_order.pop_front() else {
                break;
            };
            self.decided.remove(&oldest);
            self.evicted.insert(oldest);
            self.obs.add_count("evictions", 1);
        }
    }

    /// Explicitly evicts a *decided* instance: drops its fact and
    /// leaves a tombstone. Returns `false` if the instance is not
    /// currently decided (open, unknown, or already evicted).
    pub fn evict(&mut self, instance: InstanceId) -> bool {
        if self.decided.remove(&instance).is_none() {
            return false;
        }
        self.decided_order.retain(|&id| id != instance);
        self.evicted.insert(instance);
        self.obs.add_count("evictions", 1);
        true
    }

    /// The stored fact for `instance`, if it is decided and retained.
    pub fn fact(&self, instance: InstanceId) -> Option<&CommitFact> {
        self.decided.get(&instance)
    }

    /// Current table introspection (see [`ShardStats`]).
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            pending: self.inbox.len(),
            waiters: self.inbox.iter().filter(|p| p.waiter.is_some()).count(),
            decided: self.decided.len(),
            evicted: self.evicted.len(),
        }
    }

    /// This shard's observations so far.
    pub fn obs(&self) -> &ObsReport {
        &self.obs
    }
}

/// The adopt-commit half of the per-instance stack (kept out of the
/// closure so the turbofish stays readable).
fn sift_adopt_commit_snapshot(
    builder: &mut LayoutBuilder,
    n: usize,
) -> sift_adopt_commit::GafniSnapshotAc<Persona> {
    sift_adopt_commit::GafniSnapshotAc::allocate(builder, n, |p: &Persona| p.input())
}

/// Maps an instance id onto one of `shards` shards with a fixed
/// splitmix-style mix, so placement is stable across runs, workers, and
/// processes.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn shard_of(instance: InstanceId, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    let mut z = instance.0.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_shmem::memory::AtomicMemory;

    type Core = ShardCore<AtomicMemory<Persona>>;

    fn proposal(instance: u64, value: u64, tag: u64) -> Proposal {
        Proposal {
            instance: InstanceId(instance),
            value,
            tag,
            waiter: None,
            submitted: None,
        }
    }

    #[test]
    fn single_proposal_decides_its_own_value() {
        let mut core = Core::new(0, ShardConfig::default());
        assert!(core.submit(proposal(7, 42, 1)));
        let facts = core.tick();
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].value, 42);
        assert_eq!(facts[0].meta.batch_size, 1);
        assert_eq!(facts[0].meta.deciding_tag, 1);
        assert_eq!(facts[0].meta.seq, 0);
    }

    #[test]
    fn conflicting_batch_decides_one_proposed_value() {
        let mut core = Core::new(3, ShardConfig::default());
        for (i, v) in [5u64, 9, 5, 13].into_iter().enumerate() {
            core.submit(proposal(1, v, i as u64));
        }
        let facts = core.tick();
        assert_eq!(facts.len(), 1);
        assert!([5, 9, 13].contains(&facts[0].value));
        assert_eq!(facts[0].meta.batch_size, 4);
        // The deciding tag names the first proposal with the value.
        let expected_tag = [5u64, 9, 5, 13]
            .iter()
            .position(|&v| v == facts[0].value)
            .unwrap() as u64;
        assert_eq!(facts[0].meta.deciding_tag, expected_tag);
    }

    #[test]
    fn repeat_proposals_return_the_original_fact() {
        let mut core = Core::new(0, ShardConfig::default());
        core.submit(proposal(2, 10, 0));
        let original = core.tick().remove(0);
        // Late proposal with a *different* value: answered from the
        // table, no new consensus, identical fact.
        assert!(!core.submit(proposal(2, 999, 7)));
        assert!(core.tick().is_empty());
        assert_eq!(core.fact(InstanceId(2)), Some(&original));
        assert_eq!(core.obs().count("idempotent"), 1);
        assert_eq!(core.obs().count("decided"), 1);
    }

    #[test]
    fn decisions_are_replayable_from_the_seed() {
        let run = || {
            let mut core = Core::new(1, ShardConfig::default());
            for i in 0..6u64 {
                core.submit(proposal(4, i % 3, i));
            }
            core.tick().remove(0)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn capacity_evicts_oldest_decided_first() {
        let config = ShardConfig {
            capacity: 2,
            ..ShardConfig::default()
        };
        let mut core = Core::new(0, config);
        for id in 0..4u64 {
            core.submit(proposal(id, id, id));
            core.tick();
        }
        let stats = core.stats();
        assert_eq!(stats.decided, 2);
        assert_eq!(stats.evicted, 2);
        assert!(core.fact(InstanceId(0)).is_none());
        assert!(core.fact(InstanceId(3)).is_some());
        // A late proposal to an evicted instance is rejected.
        let (tx, rx) = oneshot::channel();
        core.submit(Proposal {
            instance: InstanceId(0),
            value: 1,
            tag: 0,
            waiter: Some(tx),
            submitted: None,
        });
        assert_eq!(
            crate::runtime::block_on(rx).unwrap(),
            Err(ServiceError::Evicted(InstanceId(0)))
        );
    }

    #[test]
    fn explicit_evict_only_touches_decided_instances() {
        let mut core = Core::new(0, ShardConfig::default());
        assert!(!core.evict(InstanceId(9)), "unknown instance");
        core.submit(proposal(9, 1, 0));
        assert!(!core.evict(InstanceId(9)), "still open");
        core.tick();
        assert!(core.evict(InstanceId(9)));
        assert!(!core.evict(InstanceId(9)), "already evicted");
    }

    #[test]
    fn zero_capacity_still_decides_and_answers() {
        let config = ShardConfig {
            capacity: 0,
            ..ShardConfig::default()
        };
        let mut core = Core::new(0, config);
        let (tx, rx) = oneshot::channel();
        core.submit(Proposal {
            instance: InstanceId(5),
            value: 77,
            tag: 0,
            waiter: Some(tx),
            submitted: None,
        });
        core.tick();
        let fact = crate::runtime::block_on(rx).unwrap().unwrap();
        assert_eq!(fact.value, 77);
        // The fact was delivered, then immediately evicted.
        assert_eq!(core.stats().decided, 0);
        assert_eq!(core.stats().evicted, 1);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 7, 64] {
            for id in 0..200u64 {
                let s = shard_of(InstanceId(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(InstanceId(id), shards));
            }
        }
    }
}

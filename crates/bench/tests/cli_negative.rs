//! Negative-path coverage for the shared `exp_*` CLI: malformed
//! `--obs-json` destinations must produce a clean diagnostic and exit
//! code 1 (never a panic), and unknown flags must keep exiting 2.
//!
//! Drives the real `exp_fuzz` binary (the cheapest `exp_*` at a tiny
//! campaign size) via `CARGO_BIN_EXE_`.

use std::process::Command;

/// A throwaway-cheap `exp_fuzz` invocation.
fn exp_fuzz() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_exp_fuzz"));
    cmd.env("SIFT_FUZZ_N", "3")
        .env("SIFT_FUZZ_GENERATIONS", "1")
        .env("SIFT_FUZZ_POPULATION", "2")
        .env("SIFT_THREADS", "1")
        .env_remove("SIFT_OBS_JSON");
    cmd
}

#[test]
fn unwritable_obs_json_parent_exits_cleanly() {
    let dir = std::env::temp_dir().join(format!("sift-cli-neg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"file, not dir").unwrap();
    let target = blocker.join("obs.json");

    let out = exp_fuzz()
        .arg("--obs-json")
        .arg(&target)
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected exit 1, stderr: {stderr}"
    );
    assert!(
        stderr.contains("failed to write observations"),
        "diagnostic missing: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must not panic on I/O errors: {stderr}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn malformed_obs_json_path_exits_cleanly() {
    // An empty path can never be created, regardless of privileges, so
    // this holds even in root-everything CI containers. (NUL-byte paths
    // are covered by the `obs::try_finish` unit tests — argv cannot
    // carry them.)
    let out = exp_fuzz()
        .arg("--obs-json")
        .arg("")
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected exit 1, stderr: {stderr}"
    );
    assert!(
        stderr.contains("failed to write observations"),
        "diagnostic missing: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "must not panic: {stderr}");
}

#[test]
fn writable_obs_json_still_works_end_to_end() {
    let dir = std::env::temp_dir().join(format!("sift-cli-pos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let target = dir.join("obs.json");
    let out = exp_fuzz()
        .arg("--obs-json")
        .arg(&target)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let body = std::fs::read_to_string(&target).unwrap();
    assert!(body.starts_with('{'), "JSON object expected: {body}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_flags_keep_exiting_two() {
    let out = exp_fuzz().arg("--no-such-flag").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--no-such-flag"), "stderr: {stderr}");
}

#[test]
fn bad_fuzz_env_knob_exits_two_with_a_diagnostic() {
    let out = exp_fuzz()
        .env("SIFT_FUZZ_GENERATIONS", "zero")
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("SIFT_FUZZ_GENERATIONS"), "stderr: {stderr}");
}

//! Mutation testing of the test-stack itself: the deliberately broken
//! sifting variants behind `sift-core`'s `mutants` feature must be
//! caught within the CI smoke budget, or the fuzzer and conformance
//! layers are theater.
//!
//! Run with `cargo test -p sift-bench --features mutants --test mutants`
//! (the `just conformance` / CI `conformance-smoke` recipes do).
//!
//! Division of labor (see `DESIGN.md`):
//!
//! * `BiasedCoin` is *statistical* — every single run looks fine, only
//!   the disagreement rate is wrong, so the conformance layer's
//!   Clopper–Pearson test must refute it.
//! * `StuckRead` is *schedule-dependent* — reader-first interleavings
//!   push a process past the exact `R`-step bound of Theorem 2, and its
//!   persona convergence livelocks round-robin tails; the fuzzer must
//!   find both and shrink the reproducible one to a minimal script.
#![cfg(feature = "mutants")]

use sift_bench::conformance;
use sift_bench::fuzz::{run_fuzz_mutant, FuzzConfig};
use sift_core::SiftingMutation;

#[test]
fn conformance_refutes_the_biased_coin_mutant() {
    let results = conformance::run_sifting_mutant(1, SiftingMutation::BiasedCoin);
    assert!(
        !conformance::all_pass(&results),
        "the biased-coin mutant must fail at least one sifting claim"
    );
    // The broken tail stops sifting, so specifically the disagreement
    // bound must be excluded at 99% confidence.
    let disagreement = results
        .iter()
        .find(|r| r.id == "mutant.T2.disagreement")
        .expect("disagreement claim present");
    assert!(
        !disagreement.pass,
        "ε-disagreement must be refuted, got: {disagreement:?}"
    );
}

#[test]
fn conformance_passes_the_identity_mutant() {
    // `SiftingMutation::None` compiles the mutant plumbing but leaves
    // the protocol intact: the same claims must still pass, so a
    // failure above really is the mutation's doing.
    let results = conformance::run_sifting_mutant(1, SiftingMutation::None);
    assert!(
        conformance::all_pass(&results),
        "the identity mutant must pass every claim: {results:?}"
    );
}

#[test]
fn fuzzer_catches_and_shrinks_the_stuck_read_mutant() {
    let report = run_fuzz_mutant(&FuzzConfig::default(), SiftingMutation::StuckRead);
    assert!(
        !report.violations.is_empty(),
        "the stuck-read mutant must violate an invariant within the smoke budget"
    );
    // At least one violation must reproduce from its finite charged
    // script and carry a shrunk, replayable FixedSchedule script.
    let shrunk = report
        .violations
        .iter()
        .filter_map(|v| v.failure.shrunk.as_ref().map(|s| (v, s)))
        .min_by_key(|(_, s)| s.len())
        .expect("at least one violation should shrink to a finite replay script");
    let (violation, script) = shrunk;
    assert!(
        !script.is_empty() && script.len() <= violation.script.len(),
        "shrinking must not grow the script"
    );
    assert!(
        violation.failure.message.contains("step bound"),
        "expected a step-bound violation, got: {}",
        violation.failure.message
    );
    // The printed report is what CI surfaces on failure: it must carry
    // the replay recipe.
    let rendered = violation.to_string();
    assert!(rendered.contains("FixedSchedule::from_indices"));
}

#[test]
fn fuzzer_reports_no_violations_on_the_identity_mutant() {
    let report = run_fuzz_mutant(&FuzzConfig::default(), SiftingMutation::None);
    assert!(
        report.violations.is_empty(),
        "identity mutant must be clean, got: {}",
        report.violations[0]
    );
}

//! Cross-thread-count determinism of the observation pipeline: the
//! merged `--obs-json` report must be **byte-identical** for any
//! `SIFT_THREADS`, because the trial set depends only on the master
//! seed and [`ObsReport::merge`] is commutative and associative — the
//! completion order in which workers fold their trials cannot show.
//!
//! [`ObsReport::merge`]: sift_obs::ObsReport::merge

use sift_bench::exec::{self, Batch};
use sift_core::{Epsilon, SiftingConciliator};
use sift_sim::schedule::ScheduleKind;

/// Serializes the tests: the thread override and the observation
/// collector are process-wide.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs a 96-trial sweep at `threads` workers with observation
/// collection on and returns the merged report's JSON rendering.
fn sweep_json(threads: usize) -> String {
    exec::set_threads(threads);
    sift_bench::obs::enable();
    let n = 16;
    let ops = Batch::new(n, 96, ScheduleKind::RandomInterleave).run(
        |b| SiftingConciliator::allocate(b, n, Epsilon::HALF),
        || 0u64,
        |acc, t| *acc += t.metrics.total_ops,
    );
    exec::set_threads(0);
    assert!(ops > 0, "sweep must execute operations");
    sift_bench::obs::collect().to_json()
}

#[test]
fn obs_json_is_byte_identical_for_1_4_and_8_threads() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let serial = sweep_json(1);
    assert!(serial.contains("\"trials\": 96"), "{serial}");
    for threads in [4, 8] {
        let parallel = sweep_json(threads);
        assert_eq!(
            serial, parallel,
            "thread count {threads} changed the observation report"
        );
    }
}

#[test]
fn obs_json_reports_trial_aggregates_and_substrate_marker() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let json = sweep_json(2);
    for key in [
        "\"trials\"",
        "\"sim.total_steps\"",
        "\"sim.total_ops\"",
        "\"trial.total_steps\"",
        "\"sim.max_individual_steps\"",
        "\"substrate.enabled\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    // The substrate marker records whether the hooks were compiled in,
    // so one file says which build produced it.
    let expected = format!(
        "\"substrate.enabled\": {}",
        sift_shmem::obs::enabled() as u64
    );
    assert!(json.contains(&expected), "{json}");
}

#[test]
fn obs_json_file_round_trips_through_finish() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = std::env::temp_dir().join("sift_obs_determinism_roundtrip.json");
    sift_bench::obs::set_output(path.clone());
    let in_memory = sweep_json(2);
    sift_bench::cli::finish();
    let written = std::fs::read_to_string(&path).expect("finish wrote the file");
    let _ = std::fs::remove_file(&path);
    assert_eq!(written, in_memory);
}

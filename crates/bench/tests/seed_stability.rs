//! Seed-stability regression: golden digests for the fuzzer and the
//! conformance suite.
//!
//! Both pipelines promise byte-identical results for a fixed seed,
//! regardless of `SIFT_THREADS` — that promise is what makes CI
//! failures replayable on a laptop and golden digests meaningful at
//! all. These tests pin it twice over:
//!
//! 1. *Across thread counts*: the digest of one run must not move
//!    between 1, 4, and 8 workers.
//! 2. *Across history*: the digests must equal the hardcoded values
//!    captured when this suite was written. Any intentional change to
//!    schedule genomes, fingerprinting, claim definitions, or trial
//!    seeding will shift them — bump the constants consciously in the
//!    same commit and say why, exactly like a golden-file test.

use sift_bench::fuzz::{run_fuzz, FuzzConfig};
use sift_bench::{conformance, exec};
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that touch the global thread override (integration
/// tests in one binary may run concurrently).
fn threads_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` under each thread override, restoring the default after.
fn under_thread_counts(f: impl Fn() -> u64) -> Vec<u64> {
    let digests = [1usize, 4, 8]
        .into_iter()
        .map(|t| {
            exec::set_threads(t);
            f()
        })
        .collect();
    exec::set_threads(0);
    digests
}

const FUZZ_GOLDEN: [(u64, u64); 3] = [
    (1, 0x7fb12f871e2729a5),
    (2, 0x31812e093604353c),
    (3, 0x2a5d489b693f1499),
];

#[test]
fn fuzzer_digests_match_golden_across_thread_counts() {
    let _guard = threads_lock();
    for (seed, golden) in FUZZ_GOLDEN {
        let config = FuzzConfig {
            seed,
            ..FuzzConfig::default()
        };
        for (t, digest) in [1, 4, 8]
            .into_iter()
            .zip(under_thread_counts(|| run_fuzz(&config).digest()))
        {
            assert_eq!(
                digest, golden,
                "fuzz seed {seed} at {t} threads: digest {digest:#018x}, \
                 golden {golden:#018x}"
            );
        }
    }
}

const CONFORMANCE_GOLDEN: [(usize, u64); 3] = [
    (1, 0x384ff6e9b823604d),
    (2, 0x11afe05423e2dd3d),
    (3, 0x38ef119c4456cee3),
];

#[test]
fn conformance_digests_match_golden_across_thread_counts() {
    let _guard = threads_lock();
    for (scale, golden) in CONFORMANCE_GOLDEN {
        for (t, digest) in [1, 4, 8].into_iter().zip(under_thread_counts(|| {
            conformance::digest(&conformance::run(scale))
        })) {
            assert_eq!(
                digest, golden,
                "conformance scale {scale} at {t} threads: digest {digest:#018x}, \
                 golden {golden:#018x}"
            );
        }
    }
}

#[test]
fn conformance_keeps_passing_at_every_golden_scale() {
    let _guard = threads_lock();
    for (scale, _) in CONFORMANCE_GOLDEN {
        let results = conformance::run(scale);
        assert!(
            conformance::all_pass(&results),
            "scale {scale}: {:?}",
            results.iter().filter(|r| !r.pass).collect::<Vec<_>>()
        );
    }
}

/// Golden digest of the E24 adversary-lattice sweep at its default
/// shape (n = 32, 100 trials/cell). Integer tallies only, so the
/// digest is exact — any drift means the lattice seeds, the breaker,
/// or the regular-register resolution changed.
const LATTICE_GOLDEN: u64 = 0x1e9879224b49e644;

#[test]
fn adversary_lattice_digest_matches_golden_across_thread_counts() {
    use sift_bench::experiments::adversary;
    let _guard = threads_lock();
    for (t, digest) in [1, 4, 8].into_iter().zip(under_thread_counts(|| {
        adversary::run_lattice(adversary::LATTICE_N, adversary::LATTICE_TRIALS).digest()
    })) {
        assert_eq!(
            digest, LATTICE_GOLDEN,
            "lattice at {t} threads: digest {digest:#018x}, golden {LATTICE_GOLDEN:#018x}"
        );
    }
}

/// Golden digest of the negative conformance tier at scale 1. Pins
/// both the verdicts (adaptive/always-old refuted, controls hold) and
/// the rendered statistics behind them.
const NEGATIVE_GOLDEN: u64 = 0xce7e13b2f9f68eca;

#[test]
fn negative_conformance_digest_matches_golden_across_thread_counts() {
    let _guard = threads_lock();
    for (t, digest) in [1, 4, 8].into_iter().zip(under_thread_counts(|| {
        conformance::digest(&conformance::run_negative(1))
    })) {
        assert_eq!(
            digest, NEGATIVE_GOLDEN,
            "negative tier at {t} threads: digest {digest:#018x}, \
             golden {NEGATIVE_GOLDEN:#018x}"
        );
    }
}

#[test]
fn negative_conformance_keeps_its_expected_polarities() {
    let _guard = threads_lock();
    let results = conformance::run_negative(1);
    assert!(
        conformance::all_pass(&results),
        "a case landed on the wrong side of the obliviousness boundary: {:?}",
        results.iter().filter(|r| !r.pass).collect::<Vec<_>>()
    );
}

//! Cross-thread-count determinism: every aggregate the experiment
//! harness reports — means, confidence intervals, rate counters,
//! per-round survivor vectors — must be **bit-identical** for any
//! `SIFT_THREADS`, because chunk boundaries and per-trial seeds depend
//! only on the trial count and master seed.

use sift_bench::exec::{self, Batch};
use sift_bench::stats::{RateCounter, RoundExcess, Welford};
use sift_core::{Epsilon, SiftingConciliator};
use sift_sim::schedule::ScheduleKind;

/// Everything folded out of one sweep, frozen to raw bits.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    mean_bits: u64,
    ci95_bits: u64,
    std_dev_bits: u64,
    min_bits: u64,
    max_bits: u64,
    count: usize,
    rate: RateCounter,
    survivor_mean_bits: Vec<u64>,
}

fn sweep(threads: usize, master_seed: u64) -> Fingerprint {
    exec::set_threads(threads);
    let n = 32;
    let (steps, rate, excess) = Batch::new(n, 96, ScheduleKind::RandomInterleave)
        .with_master_seed(master_seed)
        .run_with_history(
            |b| SiftingConciliator::allocate(b, n, Epsilon::HALF),
            || (Welford::new(), RateCounter::new(), RoundExcess::new()),
            |(steps, rate, excess), t| {
                steps.push(t.metrics.total_steps as f64);
                rate.record(t.agreed);
                excess.record(&t.survivors.expect("history collected"));
            },
        );
    exec::set_threads(0);
    let s = steps.summary();
    Fingerprint {
        mean_bits: s.mean.to_bits(),
        ci95_bits: s.ci95.to_bits(),
        std_dev_bits: s.std_dev.to_bits(),
        min_bits: s.min.to_bits(),
        max_bits: s.max.to_bits(),
        count: s.count,
        rate,
        survivor_mean_bits: excess.means().iter().map(|m| m.to_bits()).collect(),
    }
}

/// Serializes the tests: `set_threads` is a process-wide override.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn aggregates_are_bit_identical_for_1_2_and_8_threads() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let serial = sweep(1, 0);
    assert_eq!(serial.count, 96);
    assert!(!serial.survivor_mean_bits.is_empty());
    for threads in [2, 8] {
        let parallel = sweep(threads, 0);
        assert_eq!(
            serial, parallel,
            "thread count {threads} changed the aggregates"
        );
    }
}

#[test]
fn nonzero_master_seed_is_also_thread_invariant() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let serial = sweep(1, 0xC0FFEE);
    let parallel = sweep(8, 0xC0FFEE);
    assert_eq!(serial, parallel);
    // And a different master seed really does change the trials.
    assert_ne!(serial, sweep(1, 0));
}

//! The obliviousness boundary as first-class negative tests.
//!
//! The paper's sifting bounds (Lemmas 2–3) are proved against an
//! *oblivious* adversary on *atomic* registers. These tests pin that
//! boundary from both sides at fixed per-claim seeds: the decay claim
//! must be decisively refuted — `cp_lower(violations, N, 1%)` excludes
//! the Markov cap, or the sample-mean LCB exceeds the bound — the
//! moment either hypothesis is dropped (adaptive scheduling, or
//! always-old regular registers), and must keep holding when both
//! hypotheses stand. A silent pass under the breaker would mean the
//! conformance machinery cannot detect the very failure mode the
//! obliviousness assumption exists to rule out.

use sift_bench::conformance::{self, ClaimResult};
use sift_bench::experiments::adversary;

fn by_id<'a>(results: &'a [ClaimResult], id: &str) -> &'a ClaimResult {
    results
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("negative tier is missing claim {id}"))
}

#[test]
fn negative_tier_pins_the_boundary_from_both_sides() {
    let results = conformance::run_negative(1);
    assert_eq!(results.len(), 4, "the tier is exactly four cases");

    // Under the adaptive sifting breaker the blow-up is *detected*: the
    // inner decay verdict is a refutation, which is exactly what this
    // expected-failure case requires.
    let adaptive = by_id(&results, "NEG.adaptive.decay");
    assert!(
        adaptive.cp.contains("decay refuted"),
        "adaptive breaker must refute the decay bound: {adaptive:?}"
    );
    assert!(adaptive.pass, "refutation is the expected polarity");

    // Always-old regular registers starve first-round readers of every
    // concurrent write, which defeats sifting even obliviously.
    let regular = by_id(&results, "NEG.regular.decay");
    assert!(
        regular.cp.contains("decay refuted"),
        "always-old substrate must refute the decay bound: {regular:?}"
    );
    assert!(regular.pass, "refutation is the expected polarity");

    // The controls: inside the paper's model the same statistics at the
    // same trial counts do NOT refute the claim — the detector has a
    // calibrated zero, not a hair trigger.
    for id in ["NEG.oblivious.control", "NEG.alwaysnew.control"] {
        let control = by_id(&results, id);
        assert!(
            control.cp.contains("decay holds"),
            "{id} must leave the bound standing: {control:?}"
        );
        assert!(control.pass, "holding is the expected polarity for {id}");
    }
}

/// The E24 lattice endpoints agree with the negative tier: the
/// oblivious/atomic cell is the paper's model and agrees in the large
/// majority of trials, while both adaptive cells never agree and keep
/// all n personae alive in every trial.
#[test]
fn lattice_extremes_bracket_the_boundary() {
    let trials = 40;
    let report = adversary::run_lattice(adversary::LATTICE_N, trials);
    let cell = |strength: &str, substrate: &str| {
        report
            .cells
            .iter()
            .find(|c| c.strength == strength && c.substrate == substrate)
            .unwrap_or_else(|| panic!("missing lattice cell {strength}/{substrate}"))
    };

    let model = cell("oblivious", "atomic");
    assert!(
        model.agree_rate() >= 0.7,
        "the paper's model must mostly agree: {model:?}"
    );

    for substrate in ["atomic", "regular"] {
        let broken = cell("adaptive", substrate);
        assert_eq!(broken.agreements, 0, "the breaker defeats sifting");
        assert_eq!(
            broken.distinct_sum,
            trials as u64 * adversary::LATTICE_N as u64,
            "every persona survives every adaptive trial ({substrate})"
        );
    }
}

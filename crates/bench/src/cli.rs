//! Shared command-line handling for the `exp_*` binaries.
//!
//! Every experiment binary accepts the same three knobs, mirroring the
//! `SIFT_*` environment variables (flags win):
//!
//! * `--threads N` — worker threads for the parallel executor
//!   (`SIFT_THREADS`).
//! * `--trials N` — trial count scale (`SIFT_TRIALS`).
//! * `--seed N` — master seed for per-trial seed derivation
//!   (`SIFT_SEED`).
//! * `--obs-json PATH` — collect per-trial observations and write them
//!   as JSON on exit (`SIFT_OBS_JSON`); see [`crate::obs`].

use crate::exec;

const USAGE: &str = "\
Options:
  --threads N     worker threads (default: available parallelism; env SIFT_THREADS)
  --trials N      trials per configuration (env SIFT_TRIALS)
  --seed N        master seed, 0 = historical seed layout (env SIFT_SEED)
  --obs-json PATH write merged trial observations as JSON (env SIFT_OBS_JSON)
  -h, --help      print this help\
";

/// Parses the standard experiment flags from `std::env::args` and
/// applies them to the executor. Call first in every `exp_*` `main`.
///
/// Exits with usage on `-h`/`--help` or an unknown flag; panics on a
/// malformed value (same contract as the env knobs).
pub fn init() {
    // Env first so the flag wins by overwriting.
    if let Ok(path) = std::env::var("SIFT_OBS_JSON") {
        if !path.is_empty() {
            crate::obs::set_output(path);
        }
    }
    let argv: Vec<String> = std::env::args().collect();
    apply(&argv[1..]);
}

/// Writes the `--obs-json` observation file, if one was requested.
/// Call last in every `exp_*` `main`.
///
/// An unwritable path (missing or non-directory parent, permission,
/// NUL byte, ...) is a clean diagnostic and exit code 1 — never a
/// panic, and never a silent success with the file missing.
pub fn finish() {
    match crate::obs::try_finish() {
        Ok(Some(path)) => eprintln!("wrote observations to {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: failed to write observations: {e}");
            std::process::exit(1);
        }
    }
}

fn apply(args: &[String]) {
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "-h" | "--help" => {
                println!("usage: {} [options]\n{USAGE}", bin_name());
                std::process::exit(0);
            }
            "--obs-json" => {
                let value = args
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("{flag} requires a value\n{USAGE}"));
                crate::obs::set_output(value);
                i += 2;
            }
            "--threads" | "--trials" | "--seed" => {
                let value = args
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("{flag} requires a value\n{USAGE}"));
                let parsed: u64 = value
                    .parse()
                    .unwrap_or_else(|_| panic!("{flag} must be an integer, got {value:?}"));
                match flag {
                    "--threads" => {
                        assert!(parsed > 0, "--threads must be positive");
                        exec::set_threads(parsed as usize);
                    }
                    "--trials" => {
                        assert!(parsed > 0, "--trials must be positive");
                        // `default_trials` reads the env variable, so the
                        // flag writes through to it.
                        std::env::set_var("SIFT_TRIALS", value);
                    }
                    _ => exec::set_master_seed(parsed),
                }
                i += 2;
            }
            other => {
                eprintln!(
                    "unknown option {other:?}\nusage: {} [options]\n{USAGE}",
                    bin_name()
                );
                std::process::exit(2);
            }
        }
    }
}

fn bin_name() -> String {
    std::env::args()
        .next()
        .as_deref()
        .and_then(|p| p.rsplit('/').next().map(str::to_owned))
        .unwrap_or_else(|| "exp".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn applies_threads_and_seed() {
        let _guard = crate::exec::override_lock();
        apply(&args(&["--threads", "3", "--seed", "9"]));
        assert_eq!(exec::threads(), 3);
        assert_eq!(exec::master_seed(), 9);
        exec::set_threads(0);
        exec::set_master_seed(0);
    }

    #[test]
    #[should_panic(expected = "--threads must be an integer")]
    fn rejects_malformed_value() {
        apply(&args(&["--threads", "many"]));
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn rejects_missing_value() {
        apply(&args(&["--seed"]));
    }
}

//! Streaming, mergeable statistics for experiment aggregation.
//!
//! Workers of the parallel executor fold trial results into chunk-local
//! accumulators which are merged at the barrier (see
//! [`Merge`](crate::exec::Merge)), so sweeps never materialize a full
//! `Vec<f64>` of samples. [`Welford`] is the workhorse; [`Summary`] is
//! its frozen, printable form.

use crate::exec::Merge;
use sift_sim::StopReason;

/// Summary statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator).
    pub std_dev: f64,
    /// Half-width of a normal-approximation 95% confidence interval.
    pub ci95: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples` (single streaming pass).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Self {
        let mut w = Welford::new();
        for &x in samples {
            w.push(x);
        }
        w.summary()
    }

    /// Summarizes an iterator of integer samples.
    pub fn of_counts(samples: impl IntoIterator<Item = u64>) -> Self {
        let mut w = Welford::new();
        for x in samples {
            w.push(x as f64);
        }
        w.summary()
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm) with an
/// exact parallel merge (Chan et al.).
///
/// # Examples
///
/// ```
/// use sift_bench::exec::Merge;
/// use sift_bench::stats::Welford;
///
/// let mut a = Welford::new();
/// let mut b = Welford::new();
/// a.push(1.0);
/// a.push(2.0);
/// b.push(3.0);
/// b.push(4.0);
/// a.merge(b);
/// let s = a.summary();
/// assert_eq!(s.count, 4);
/// assert!((s.mean - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Absorbs one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples absorbed so far.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// The running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// One-sided normal-approximation upper confidence bound on the
    /// population mean: `mean + z·s/√n`. With [`Z_99`] this is the
    /// conformance suite's 99% mean test.
    ///
    /// # Panics
    ///
    /// Panics if no samples were absorbed.
    pub fn mean_ucb(&self, z: f64) -> f64 {
        let s = self.summary();
        s.mean + z * s.std_dev / (s.count as f64).sqrt()
    }

    /// One-sided normal-approximation lower confidence bound on the
    /// population mean: `mean - z·s/√n`. The conformance suite refutes
    /// a claimed expectation bound only when this *lower* bound exceeds
    /// it — the data then excludes the claim at the chosen confidence.
    ///
    /// # Panics
    ///
    /// Panics if no samples were absorbed.
    pub fn mean_lcb(&self, z: f64) -> f64 {
        let s = self.summary();
        s.mean - z * s.std_dev / (s.count as f64).sqrt()
    }

    /// Freezes the accumulator into a [`Summary`].
    ///
    /// # Panics
    ///
    /// Panics if no samples were absorbed (matches the historical
    /// "cannot summarize an empty sample" contract).
    pub fn summary(&self) -> Summary {
        assert!(self.count > 0, "cannot summarize an empty sample");
        let var = if self.count > 1 {
            self.m2 / (self.count - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        Summary {
            count: self.count as usize,
            mean: self.mean,
            std_dev,
            ci95: 1.96 * std_dev / (self.count as f64).sqrt(),
            min: self.min,
            max: self.max,
        }
    }
}

impl Merge for Welford {
    fn merge(&mut self, other: Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// `P(X ≤ k)` for `X ~ Binomial(n, p)`, computed with an iterative
/// log-space pmf recurrence (no special-function dependencies; exact to
/// double rounding for the `n` used in the conformance suite).
///
/// Terms that underflow `exp` contribute 0, which only matters when the
/// whole CDF is far below any confidence threshold we test against.
pub fn binomial_cdf(k: u64, n: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if p == 0.0 {
        return 1.0;
    }
    if p == 1.0 {
        return if k >= n { 1.0 } else { 0.0 };
    }
    if k >= n {
        return 1.0;
    }
    let ln_ratio = (p / (1.0 - p)).ln();
    // ln pmf(0) = n·ln(1−p); pmf(i+1)/pmf(i) = (n−i)/(i+1) · p/(1−p).
    let mut ln_pmf = n as f64 * (-p).ln_1p();
    let mut cdf = ln_pmf.exp();
    for i in 0..k {
        ln_pmf += ((n - i) as f64 / (i + 1) as f64).ln() + ln_ratio;
        cdf += ln_pmf.exp();
    }
    cdf.min(1.0)
}

/// One-sided Clopper–Pearson **upper** confidence bound at confidence
/// `1 - alpha` on a binomial success probability, having observed `x`
/// successes in `n` trials: the largest `p` not rejected by
/// `P(X ≤ x) ≥ alpha`.
///
/// # Panics
///
/// Panics if `n == 0`, `x > n`, or `alpha` is outside `(0, 1)`.
pub fn cp_upper(x: u64, n: u64, alpha: f64) -> f64 {
    assert!(n > 0, "need at least one trial");
    assert!(x <= n, "successes {x} exceed trials {n}");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    if x >= n {
        return 1.0;
    }
    // binomial_cdf(x, n, ·) is strictly decreasing in p: bisect for the
    // p where it crosses alpha. 60 iterations pin p to ~1e-18.
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if binomial_cdf(x, n, mid) > alpha {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// One-sided Clopper–Pearson **lower** confidence bound at confidence
/// `1 - alpha` on a binomial success probability, having observed `x`
/// successes in `n` trials: the smallest `p` not rejected by
/// `P(X ≥ x) ≥ alpha`.
///
/// This is the conformance suite's refutation tool: if even the 99%
/// lower confidence bound on a failure rate exceeds the paper's bound,
/// the data excludes the bound at 99% confidence.
///
/// # Panics
///
/// Panics if `n == 0`, `x > n`, or `alpha` is outside `(0, 1)`.
pub fn cp_lower(x: u64, n: u64, alpha: f64) -> f64 {
    assert!(n > 0, "need at least one trial");
    assert!(x <= n, "successes {x} exceed trials {n}");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    if x == 0 {
        return 0.0;
    }
    // P(X ≥ x) = 1 − P(X ≤ x−1) is strictly increasing in p.
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if 1.0 - binomial_cdf(x - 1, n, mid) < alpha {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// z-quantile for one-sided 99% confidence, used by the conformance
/// suite's mean tests (`Φ(2.326) ≈ 0.99`).
pub const Z_99: f64 = 2.326;

/// An online success-rate counter (for agreement probabilities).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RateCounter {
    hits: u64,
    total: u64,
}

impl RateCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial.
    pub fn record(&mut self, hit: bool) {
        self.hits += u64::from(hit);
        self.total += 1;
    }

    /// Number of successes.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of trials.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The empirical rate (0 when no trials were recorded).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

impl Merge for RateCounter {
    fn merge(&mut self, other: Self) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

/// Running maximum of integer samples (e.g. worst observed steps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Peak(u64);

impl Peak {
    /// Creates a zeroed peak tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one sample.
    pub fn record(&mut self, x: u64) {
        self.0 = self.0.max(x);
    }

    /// The maximum sample seen (0 when empty).
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl Merge for Peak {
    fn merge(&mut self, other: Self) {
        self.0 = self.0.max(other.0);
    }
}

/// Keeps the value recorded by the highest-indexed trial (chunk merges
/// preserve trial order, so "last wins" is deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Last<T>(Option<T>);

impl<T> Last<T> {
    /// Creates an empty holder.
    pub fn new() -> Self {
        Self(None)
    }

    /// Records a value, replacing any earlier one.
    pub fn record(&mut self, value: T) {
        self.0 = Some(value);
    }

    /// The last recorded value, if any.
    pub fn get(&self) -> Option<&T> {
        self.0.as_ref()
    }
}

impl<T> Merge for Last<T> {
    fn merge(&mut self, other: Self) {
        if other.0.is_some() {
            self.0 = other.0;
        }
    }
}

/// Per-round sums of excess personae (`survivors - 1`), the aggregation
/// behind the survivor-decay experiments (E1/E4/E5).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundExcess {
    sums: Vec<f64>,
    trials: u64,
}

impl RoundExcess {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one trial's per-round survivor counts.
    pub fn record(&mut self, survivors: &[usize]) {
        if self.sums.len() < survivors.len() {
            self.sums.resize(survivors.len(), 0.0);
        }
        for (sum, &s) in self.sums.iter_mut().zip(survivors) {
            *sum += s.saturating_sub(1) as f64;
        }
        self.trials += 1;
    }

    /// Mean excess per round over all absorbed trials.
    pub fn means(&self) -> Vec<f64> {
        self.sums.iter().map(|s| s / self.trials as f64).collect()
    }

    /// Number of trials absorbed.
    pub fn trials(&self) -> u64 {
        self.trials
    }
}

impl Merge for RoundExcess {
    fn merge(&mut self, other: Self) {
        if self.sums.len() < other.sums.len() {
            self.sums.resize(other.sums.len(), 0.0);
        }
        for (sum, o) in self.sums.iter_mut().zip(&other.sums) {
            *sum += o;
        }
        self.trials += other.trials;
    }
}

/// Counts runs that ended without every process deciding, by
/// [`StopReason`] — reported separately instead of being silently
/// folded into "disagreed".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Truncations {
    /// Runs stopped because the (finite) schedule ran out of slots.
    pub schedule_exhausted: u64,
    /// Runs stopped by an explicit slot limit.
    pub slot_limit: u64,
}

impl Truncations {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one run's stop reason.
    pub fn record(&mut self, reason: StopReason) {
        match reason {
            StopReason::AllDone => {}
            StopReason::ScheduleExhausted => self.schedule_exhausted += 1,
            StopReason::SlotLimit => self.slot_limit += 1,
        }
    }

    /// Total truncated runs.
    pub fn total(&self) -> u64 {
        self.schedule_exhausted + self.slot_limit
    }

    /// A table footnote describing the truncations, or `None` when every
    /// run completed (the common case — tables stay unchanged).
    pub fn note(&self) -> Option<String> {
        (self.total() > 0).then(|| {
            format!(
                "{} truncated run(s) not counted as disagreement: \
                 {} schedule-exhausted, {} slot-limited.",
                self.total(),
                self.schedule_exhausted,
                self.slot_limit
            )
        })
    }
}

impl Merge for Truncations {
    fn merge(&mut self, other: Self) {
        self.schedule_exhausted += other.schedule_exhausted;
        self.slot_limit += other.slot_limit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[4.0, 4.0, 4.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Variance = (2.25+0.25+0.25+2.25)/3 = 5/3.
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_of_single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn summary_of_counts() {
        let s = Summary::of_counts([2u64, 4, 6]);
        assert!((s.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn welford_merge_matches_serial_fold() {
        let samples: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut serial = Welford::new();
        for &x in &samples {
            serial.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &samples[..37] {
            left.push(x);
        }
        for &x in &samples[37..] {
            right.push(x);
        }
        left.merge(right);
        let (a, b) = (serial.summary(), left.summary());
        assert_eq!(a.count, b.count);
        assert!((a.mean - b.mean).abs() < 1e-12);
        assert!((a.std_dev - b.std_dev).abs() < 1e-12);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
    }

    #[test]
    fn welford_merge_with_empty_sides() {
        let mut w = Welford::new();
        w.merge(Welford::new());
        assert_eq!(w.count(), 0);
        let mut filled = Welford::new();
        filled.push(5.0);
        w.merge(filled);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 5.0);
        let mut other = Welford::new();
        other.merge(w);
        assert_eq!(other.count(), 1);
    }

    #[test]
    fn rate_counter() {
        let mut r = RateCounter::new();
        assert_eq!(r.rate(), 0.0);
        r.record(true);
        r.record(false);
        r.record(true);
        r.record(true);
        assert_eq!(r.hits(), 3);
        assert_eq!(r.total(), 4);
        assert!((r.rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rate_counter_merges_by_sum() {
        let mut a = RateCounter::new();
        a.record(true);
        let mut b = RateCounter::new();
        b.record(false);
        b.record(true);
        a.merge(b);
        assert_eq!(a.hits(), 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut p = Peak::new();
        p.record(3);
        p.record(9);
        p.record(5);
        let mut q = Peak::new();
        q.record(7);
        p.merge(q);
        assert_eq!(p.get(), 9);
    }

    #[test]
    fn last_keeps_later_side() {
        let mut a = Last::new();
        a.record(1);
        let mut b = Last::new();
        b.record(2);
        a.merge(b);
        assert_eq!(a.get(), Some(&2));
        a.merge(Last::<i32>::new());
        assert_eq!(a.get(), Some(&2));
    }

    #[test]
    fn round_excess_means_and_merge() {
        let mut a = RoundExcess::new();
        a.record(&[4, 2, 1]);
        let mut b = RoundExcess::new();
        b.record(&[2, 1]);
        a.merge(b);
        assert_eq!(a.trials(), 2);
        let means = a.means();
        // Round 1: (3 + 1)/2 = 2; round 2: (1 + 0)/2 = 0.5; round 3: 0/2.
        assert_eq!(means, vec![2.0, 0.5, 0.0]);
    }

    #[test]
    fn binomial_cdf_matches_exact_small_cases() {
        // Binomial(10, 1/2): P(X ≤ 5) = 638/1024.
        assert!((binomial_cdf(5, 10, 0.5) - 638.0 / 1024.0).abs() < 1e-12);
        // P(X ≤ 0) = (1-p)^n.
        assert!((binomial_cdf(0, 20, 0.3) - 0.7f64.powi(20)).abs() < 1e-12);
        // Full support sums to 1.
        assert!((binomial_cdf(10, 10, 0.37) - 1.0).abs() < 1e-12);
        assert_eq!(binomial_cdf(3, 10, 0.0), 1.0);
        assert_eq!(binomial_cdf(3, 10, 1.0), 0.0);
        assert_eq!(binomial_cdf(10, 10, 1.0), 1.0);
    }

    #[test]
    fn binomial_cdf_is_monotone_in_its_arguments() {
        for k in 0..19u64 {
            assert!(binomial_cdf(k, 20, 0.4) <= binomial_cdf(k + 1, 20, 0.4));
        }
        let mut last = 1.0;
        for i in 1..20 {
            let p = i as f64 / 20.0;
            let c = binomial_cdf(7, 20, p);
            assert!(c <= last, "CDF must decrease in p");
            last = c;
        }
    }

    #[test]
    fn cp_upper_matches_the_zero_successes_closed_form() {
        // x = 0: the upper bound solves (1-p)^n = alpha, i.e.
        // p = 1 - alpha^(1/n).
        for (n, alpha) in [(10u64, 0.05f64), (100, 0.01), (400, 0.01)] {
            let expect = 1.0 - alpha.powf(1.0 / n as f64);
            assert!(
                (cp_upper(0, n, alpha) - expect).abs() < 1e-9,
                "n={n} alpha={alpha}"
            );
        }
    }

    #[test]
    fn cp_lower_matches_the_all_successes_closed_form() {
        // x = n: the lower bound solves p^n = alpha.
        for (n, alpha) in [(10u64, 0.05f64), (100, 0.01)] {
            let expect = alpha.powf(1.0 / n as f64);
            assert!(
                (cp_lower(n, n, alpha) - expect).abs() < 1e-9,
                "n={n} alpha={alpha}"
            );
        }
        assert_eq!(cp_lower(0, 50, 0.01), 0.0);
        assert_eq!(cp_upper(50, 50, 0.01), 1.0);
    }

    #[test]
    fn cp_interval_brackets_the_empirical_rate() {
        // The one-sided bounds must straddle x/n and tighten with n.
        for (x, n) in [(3u64, 20u64), (17, 100), (250, 1000)] {
            let rate = x as f64 / n as f64;
            let lo = cp_lower(x, n, 0.01);
            let hi = cp_upper(x, n, 0.01);
            assert!(lo < rate && rate < hi, "({x},{n}): {lo} < {rate} < {hi}");
        }
        let wide = cp_upper(5, 50, 0.01) - cp_lower(5, 50, 0.01);
        let tight = cp_upper(50, 500, 0.01) - cp_lower(50, 500, 0.01);
        assert!(tight < wide, "more trials must tighten the interval");
    }

    #[test]
    fn cp_bounds_have_exact_binomial_coverage_at_the_boundary() {
        // By construction: at p = cp_lower(x, n, α), P(X ≥ x) = α.
        let (x, n, alpha) = (9u64, 60u64, 0.01);
        let lo = cp_lower(x, n, alpha);
        assert!((1.0 - binomial_cdf(x - 1, n, lo) - alpha).abs() < 1e-9);
        let hi = cp_upper(x, n, alpha);
        assert!((binomial_cdf(x, n, hi) - alpha).abs() < 1e-9);
    }

    #[test]
    fn mean_ucb_sits_above_the_mean_by_the_z_margin() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.push(x);
        }
        let s = w.summary();
        let expect = s.mean + Z_99 * s.std_dev / 2.0;
        assert!((w.mean_ucb(Z_99) - expect).abs() < 1e-12);
        let mut constant = Welford::new();
        constant.push(5.0);
        constant.push(5.0);
        assert_eq!(constant.mean_ucb(Z_99), 5.0);
    }

    #[test]
    fn mean_lcb_mirrors_the_ucb_around_the_mean() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.push(x);
        }
        let mean = w.mean();
        assert!((w.mean_ucb(Z_99) - mean - (mean - w.mean_lcb(Z_99))).abs() < 1e-12);
        assert!(w.mean_lcb(Z_99) < mean);
    }

    #[test]
    fn truncations_note_only_when_present() {
        let mut t = Truncations::new();
        t.record(StopReason::AllDone);
        assert_eq!(t.note(), None);
        t.record(StopReason::ScheduleExhausted);
        t.record(StopReason::SlotLimit);
        let mut other = Truncations::new();
        other.record(StopReason::SlotLimit);
        t.merge(other);
        assert_eq!(t.total(), 3);
        assert!(t.note().unwrap().contains("1 schedule-exhausted"));
        assert!(t.note().unwrap().contains("2 slot-limited"));
    }
}

//! Small statistics helpers for experiment aggregation.

/// Summary statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator).
    pub std_dev: f64,
    /// Half-width of a normal-approximation 95% confidence interval.
    pub ci95: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        let ci95 = 1.96 * std_dev / (count as f64).sqrt();
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Self {
            count,
            mean,
            std_dev,
            ci95,
            min,
            max,
        }
    }

    /// Summarizes an iterator of integer samples.
    pub fn of_counts(samples: impl IntoIterator<Item = u64>) -> Self {
        let v: Vec<f64> = samples.into_iter().map(|x| x as f64).collect();
        Self::of(&v)
    }
}

/// An online success-rate counter (for agreement probabilities).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RateCounter {
    hits: u64,
    total: u64,
}

impl RateCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial.
    pub fn record(&mut self, hit: bool) {
        self.hits += u64::from(hit);
        self.total += 1;
    }

    /// Number of successes.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of trials.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The empirical rate (0 when no trials were recorded).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[4.0, 4.0, 4.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Variance = (2.25+0.25+0.25+2.25)/3 = 5/3.
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_of_single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn summary_of_counts() {
        let s = Summary::of_counts([2u64, 4, 6]);
        assert!((s.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn rate_counter() {
        let mut r = RateCounter::new();
        assert_eq!(r.rate(), 0.0);
        r.record(true);
        r.record(false);
        r.record(true);
        r.record(true);
        assert_eq!(r.hits(), 3);
        assert_eq!(r.total(), 4);
        assert!((r.rate() - 0.75).abs() < 1e-12);
    }
}

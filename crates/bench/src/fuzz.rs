//! Parallel driver for the coverage-guided adversary fuzzer.
//!
//! [`sift_sim::fuzz`] owns proposal, coverage, and the corpus; this
//! module owns what needs a concrete protocol: candidate *evaluation*.
//! Each candidate genome is compiled to an oblivious schedule, run
//! against a fresh [`SiftingConciliator`] instance under a generous
//! slot budget, checked against the protocol's schedule-independent
//! invariants, and — when a violation reproduces under deterministic
//! replay of its charged script — greedily shrunk to a 1-minimal
//! [`FixedSchedule`](sift_sim::schedule::FixedSchedule) script via
//! [`shrink_schedule_with`].
//!
//! The invariants hold for **every** oblivious schedule, so any failure
//! is a protocol bug (or a deliberately broken `mutants` build):
//!
//! 1. *Step bound*: no process performs more than
//!    [`steps_bound`](sift_core::Conciliator::steps_bound) charged ops.
//! 2. *Survivor monotonicity*: the number of distinct personae alive
//!    after round `i+1` never exceeds round `i`'s (the paper's sifting
//!    progress measure only moves down).
//! 3. *Validity*: every decided persona carries some process's input.
//! 4. *Liveness under the slot budget*: exhausting
//!    `prefix + 4·n·(R+2)` scheduled slots means a livelock — a
//!    correct sifter finishes each process in exactly `R` charged ops.
//!    Such hangs depend on the schedule's infinite tail and are
//!    reported unshrunk (`shrunk: None`).
//!
//! Evaluation is a pure function of `(genome, case seed)`, so a
//! generation fans out over [`map_reduce`] and folds back in proposal
//! order — the whole run, including the corpus [`digest`](
//! FuzzReport::digest), is byte-identical for any `SIFT_THREADS`.

use sift_core::{
    distinct_per_round, try_check_validity, Conciliator, Epsilon, RoundHistory, SiftingConciliator,
};

use sift_sim::fuzz::{
    interleaving_signature, Evaluation, FingerprintHasher, FuzzFailure, FuzzViolation, Fuzzer,
    ScheduleGenome,
};
use sift_sim::mc::{replay_report, shrink_schedule_with};
use sift_sim::rng::SeedSplitter;
use sift_sim::{Engine, LayoutBuilder, ProcessId, RunReport, StopReason};

use crate::exec::map_reduce;

/// Parameters of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of processes in each candidate schedule.
    pub n: usize,
    /// Propose/evaluate/absorb cycles.
    pub generations: usize,
    /// Candidates per generation.
    pub population: usize,
    /// Master seed of the campaign (drives both genome proposal and
    /// every per-candidate protocol randomness).
    pub seed: u64,
    /// Propose from the extended gene pool: environment genes choosing
    /// the adversary-lattice point and the register semantics each
    /// candidate runs under. Off by default — the base pool's proposal
    /// stream is pinned by the seed-stability goldens.
    pub extended: bool,
}

impl Default for FuzzConfig {
    /// The CI smoke budget: 12 generations of 16 candidates at `n = 8`.
    fn default() -> Self {
        Self {
            n: 8,
            generations: 12,
            population: 16,
            seed: 0xF0_22,
            extended: false,
        }
    }
}

/// Outcome of a fuzzing campaign.
#[derive(Debug)]
pub struct FuzzReport {
    /// Distinct coverage fingerprints observed.
    pub coverage: usize,
    /// Coverage-novel schedules kept (≤ `coverage`).
    pub corpus_len: usize,
    /// Total candidates evaluated.
    pub evaluated: usize,
    /// Every invariant violation found, in evaluation order.
    pub violations: Vec<FuzzViolation>,
    /// Corpus fingerprints in insertion order (the deterministic part
    /// of the corpus — [`CoverageMap`](sift_sim::fuzz::CoverageMap)
    /// itself is a hash set with no stable iteration order).
    pub corpus_fingerprints: Vec<u64>,
    /// Corpus scripts in insertion order, for downstream replay (the
    /// differential substrate harness feeds on these).
    pub corpus_scripts: Vec<Vec<usize>>,
}

impl FuzzReport {
    /// FNV digest of the campaign: corpus fingerprints in insertion
    /// order plus the violation count. The seed-stability regression
    /// hook — byte-identical across `SIFT_THREADS` for a fixed config.
    pub fn digest(&self) -> u64 {
        let mut h = FingerprintHasher::new();
        h.write_usize(self.evaluated);
        for &fp in &self.corpus_fingerprints {
            h.write_u64(fp);
        }
        h.write_usize(self.violations.len());
        h.finish()
    }
}

/// Runs a fuzzing campaign against the unmodified
/// [`SiftingConciliator`]. On correct code this finds schedules, not
/// bugs: expect `violations` to be empty and the corpus to grow.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    run_fuzz_with(config, &|b: &mut LayoutBuilder, n: usize| {
        SiftingConciliator::allocate(b, n, Epsilon::HALF)
    })
}

/// Runs a campaign against a deliberately broken sifter — the fuzzer
/// half of mutation testing. `StuckRead` must be caught within the
/// default smoke budget: reader-first schedules push its per-process
/// ops past the bound (shrunk to a minimal script), and its persona
/// convergence livelocks the tail round-robin (reported unshrunk).
#[cfg(feature = "mutants")]
pub fn run_fuzz_mutant(config: &FuzzConfig, mutation: sift_core::SiftingMutation) -> FuzzReport {
    run_fuzz_with(config, &move |b: &mut LayoutBuilder, n: usize| {
        SiftingConciliator::allocate_mutant(b, n, Epsilon::HALF, mutation)
    })
}

fn run_fuzz_with(
    config: &FuzzConfig,
    build: &(impl Fn(&mut LayoutBuilder, usize) -> SiftingConciliator + Sync),
) -> FuzzReport {
    assert!(config.n > 0, "need at least one process");
    assert!(config.population > 0, "need a nonempty generation");
    let split = SeedSplitter::new(config.seed);
    let mut fuzzer =
        Fuzzer::new(config.n, split.seed("proposals", 0)).with_extended_genes(config.extended);

    for generation in 0..config.generations {
        let candidates = fuzzer.propose(config.population);
        // Evaluations are pure; fan out and fold back in index order
        // (Vec's Merge concatenates chunk results in chunk order).
        let evals: Vec<Evaluation> = map_reduce(
            candidates.len(),
            |index| {
                let case = split.seed("case", (generation * config.population) as u64 + index);
                evaluate(config.n, case, &candidates[index as usize], build)
            },
            Vec::new,
            |acc, eval| acc.push(eval),
        );
        for (genome, eval) in candidates.into_iter().zip(evals) {
            fuzzer.absorb(genome, eval);
        }
    }

    FuzzReport {
        coverage: fuzzer.coverage(),
        corpus_len: fuzzer.corpus().len(),
        evaluated: fuzzer.evaluated(),
        corpus_fingerprints: fuzzer
            .corpus()
            .entries()
            .iter()
            .map(|e| e.fingerprint)
            .collect(),
        corpus_scripts: fuzzer
            .corpus()
            .entries()
            .iter()
            .map(|e| e.script.clone())
            .collect(),
        violations: fuzzer.violations().to_vec(),
    }
}

/// Evaluates one candidate genome: run, fingerprint, invariant check,
/// replay pre-check, shrink.
fn evaluate(
    n: usize,
    case_seed: u64,
    genome: &ScheduleGenome,
    build: &impl Fn(&mut LayoutBuilder, usize) -> SiftingConciliator,
) -> Evaluation {
    let mut builder = LayoutBuilder::new();
    let conciliator = build(&mut builder, n);
    let layout = builder.build();
    let steps_bound = conciliator
        .steps_bound()
        .expect("the sifting conciliator is bounded");
    let case = SeedSplitter::new(case_seed);
    let factory = || {
        (0..n)
            .map(|i| {
                let mut rng = case.stream("process", i as u64);
                conciliator.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect::<Vec<_>>()
    };

    let env = genome.environment();
    let schedule = genome.compile(n);
    // A correct sifter finishes every process in R charged ops; skipped
    // slots of finished processes also count against the budget, so
    // leave 4× headroom past the compiled prefix before calling a run
    // livelocked.
    let budget = schedule.prefix_len() as u64 + 4 * n as u64 * (steps_bound + 2);
    let mut engine = Engine::new(&layout, factory());
    engine.enable_trace();
    engine.limit_slots(budget);
    engine.set_register_semantics(env.semantics);
    let report = match env.strength.delay() {
        // Oblivious: the compiled genome schedule, fixed before the run.
        None => engine.run(schedule),
        // Stronger lattice points replace the compiled schedule with a
        // k-stale reactive chooser running the E20-style sifting
        // breaker: prefer the earliest-round reader, so first-round
        // reads land before the writes they should have seen.
        Some(delay) => crate::runner::run_sifting_breaker(engine, delay),
    };

    let trace = report.trace.as_ref().expect("trace recording was enabled");
    let script: Vec<usize> = trace.events().iter().map(|e| e.pid.index()).collect();
    let survivors = distinct_per_round(report.processes.iter().map(|p| p.history()));
    let mut h = FingerprintHasher::new();
    h.write_u64(interleaving_signature(trace));
    for &s in &survivors {
        h.write_usize(s);
    }
    for &k in &report.metrics.ops_by_kind {
        h.write_u64(k);
    }
    let fingerprint = h.finish();

    let oblivious = env.strength.is_oblivious();
    let property = |r: &RunReport<sift_core::SiftingParticipant>| {
        check_invariants(n, steps_bound, oblivious, r)
    };
    let failure = property(&report).err().map(|message| {
        // A violation that reproduces under deterministic replay of the
        // charged script shrinks to a 1-minimal script; one that
        // depends on the infinite schedule tail (the slot-limit
        // livelock — replays of the finite script exhaust the schedule
        // instead) is reported unshrunk.
        if property(&replay_report(&layout, factory(), &script)).is_err() {
            let (shrunk, message) =
                shrink_schedule_with(&layout, &factory, script.clone(), &property);
            FuzzFailure {
                message,
                shrunk: Some(shrunk),
            }
        } else {
            FuzzFailure {
                message,
                shrunk: None,
            }
        }
    });

    Evaluation {
        fingerprint,
        script,
        failure,
    }
}

/// The schedule-independent invariants of the sifting conciliator.
///
/// Survivor monotonicity and validity hold for every environment the
/// extended genome can ask for. The step-bound and livelock invariants
/// are *oblivious-tier* claims (the paper states its complexity bounds
/// against the oblivious adversary only), so runs driven by a
/// stronger-than-oblivious chooser skip them.
fn check_invariants(
    n: usize,
    steps_bound: u64,
    oblivious: bool,
    report: &RunReport<sift_core::SiftingParticipant>,
) -> Result<(), String> {
    if oblivious {
        for (pid, &ops) in report.metrics.per_process_ops.iter().enumerate() {
            if ops > steps_bound {
                return Err(format!(
                    "step bound violated: process {pid} performed {ops} charged ops \
                     (bound {steps_bound})"
                ));
            }
        }
    }
    let survivors = distinct_per_round(report.processes.iter().map(|p| p.history()));
    if let Some(w) = survivors.windows(2).find(|w| w[1] > w[0]) {
        return Err(format!(
            "survivor monotonicity violated: {} distinct personae after a round \
             that started with {}",
            w[1], w[0]
        ));
    }
    let inputs: Vec<u64> = (0..n as u64).collect();
    try_check_validity(&inputs, &report.outputs)?;
    if oblivious && report.stop_reason == StopReason::SlotLimit {
        return Err(format!(
            "slot budget exhausted after {} charged ops + {} skipped slots — livelock",
            report.metrics.total_ops, report.metrics.skipped_slots
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FuzzConfig {
        FuzzConfig {
            n: 4,
            generations: 3,
            population: 6,
            seed: 11,
            extended: false,
        }
    }

    #[test]
    fn clean_campaign_finds_coverage_and_no_violations() {
        let _guard = crate::exec::override_lock();
        let report = run_fuzz(&tiny());
        assert_eq!(report.evaluated, 18);
        assert!(report.coverage >= 2, "schedule diversity should show up");
        assert_eq!(report.corpus_len, report.corpus_fingerprints.len());
        assert_eq!(report.corpus_len, report.corpus_scripts.len());
        assert!(
            report.violations.is_empty(),
            "unexpected violations: {}",
            report.violations[0]
        );
    }

    #[test]
    fn campaign_digest_is_reproducible_and_seed_sensitive() {
        let _guard = crate::exec::override_lock();
        let a = run_fuzz(&tiny());
        let b = run_fuzz(&tiny());
        assert_eq!(a.digest(), b.digest());
        let mut other = tiny();
        other.seed = 12;
        assert_ne!(a.digest(), run_fuzz(&other).digest());
    }

    #[test]
    fn campaign_digest_is_thread_count_invariant() {
        let _guard = crate::exec::override_lock();
        let digests: Vec<u64> = [1usize, 4, 8]
            .into_iter()
            .map(|t| {
                crate::exec::set_threads(t);
                run_fuzz(&tiny()).digest()
            })
            .collect();
        crate::exec::set_threads(0);
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[0], digests[2]);
    }

    #[test]
    fn invariant_checker_accepts_a_clean_run() {
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut b, 4, Epsilon::HALF);
        let layout = b.build();
        let split = SeedSplitter::new(5);
        let procs: Vec<_> = (0..4)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        let report = Engine::new(&layout, procs).run(sift_sim::schedule::RoundRobin::new(4));
        assert_eq!(report.stop_reason, StopReason::AllDone);
        check_invariants(4, c.steps_bound().unwrap(), true, &report).unwrap();
    }

    /// The extended pool drives candidates through every environment —
    /// delayed/adaptive choosers, regular register semantics — and the
    /// tier-tagged invariants must stay clean on correct code.
    #[test]
    fn extended_campaign_is_clean_and_reproducible() {
        let _guard = crate::exec::override_lock();
        let config = FuzzConfig {
            extended: true,
            generations: 4,
            ..tiny()
        };
        let a = run_fuzz(&config);
        assert!(
            a.violations.is_empty(),
            "unexpected violations: {}",
            a.violations[0]
        );
        assert!(a.coverage >= 2);
        assert_eq!(a.digest(), run_fuzz(&config).digest());
        // The extended pool draws a different proposal stream, so the
        // campaign must diverge from the base pool's.
        let base = FuzzConfig {
            extended: false,
            generations: 4,
            ..tiny()
        };
        assert_ne!(a.digest(), run_fuzz(&base).digest());
    }
}

//! E13 — the priority-range analysis of §2: duplicate priorities happen
//! with probability at most ε/2 at the paper's range `⌈R n²/ε⌉`, and
//! shrinking the range degrades this gracefully.

use std::collections::HashSet;

use sift_core::analysis::duplicate_priority_probability;
use sift_core::{Epsilon, Persona, PersonaSpec, SnapshotConciliator};
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::ScheduleKind;
use sift_sim::{LayoutBuilder, ProcessId};

use crate::exec::Batch;
use crate::runner::{default_trials, run_trial};
use crate::stats::RateCounter;
use crate::table::{fmt_f64, Table};

/// Checks whether any two of `n` freshly generated personae share a
/// priority in any round.
fn has_duplicate(n: usize, rounds: usize, range: u64, seed: u64) -> bool {
    let split = SeedSplitter::new(seed);
    let spec = PersonaSpec {
        priority_rounds: rounds,
        priority_range: range,
        write_probs: Vec::new(),
    };
    let personae: Vec<Persona> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            Persona::generate(ProcessId(i), 0, &spec, &mut rng)
        })
        .collect();
    for round in 0..rounds {
        let mut seen = HashSet::new();
        for p in &personae {
            if !seen.insert(p.priority(round)) {
                return true;
            }
        }
    }
    false
}

/// Duplicate frequency and agreement rate as the priority range shrinks
/// below the paper's choice.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "E13 — priority range ablation (Algorithm 1, n = 64, ε = 1/2)",
        &[
            "range factor",
            "range",
            "paper dup bound",
            "measured dup rate",
            "disagree rate",
        ],
    );
    let n = 64usize;
    let eps = Epsilon::HALF;
    let (rounds, paper_range) = {
        let mut b = LayoutBuilder::new();
        let c = SnapshotConciliator::allocate(&mut b, n, eps);
        (c.rounds(), c.priority_range())
    };
    let trials = default_trials(800);
    for &factor in &[1u64, 16, 256, 4096, 65_536] {
        let range = (paper_range / factor).max(1);
        let (dup, disagree) = Batch::new(n, trials, ScheduleKind::RandomInterleave).run_with(
            |spec| {
                let duplicated = has_duplicate(n, rounds, range, spec.seed);
                let t = run_trial(n, spec.seed, spec.kind, |b| {
                    SnapshotConciliator::with_parameters(b, n, rounds, range, eps)
                });
                (duplicated, !t.agreed)
            },
            || (RateCounter::new(), RateCounter::new()),
            |(dup, disagree), (duplicated, disagreed)| {
                dup.record(duplicated);
                disagree.record(disagreed);
            },
        );
        table.row(vec![
            format!("1/{factor}"),
            range.to_string(),
            fmt_f64(duplicate_priority_probability(
                n as u64,
                rounds as u64,
                range,
            )),
            fmt_f64(dup.rate()),
            fmt_f64(disagree.rate()),
        ]);
    }
    table.note(
        "At the paper's range duplicates are vanishing (≤ ε/2 by a union bound); even with \
         frequent duplicates the algorithm degrades gracefully because ties only merge \
         personae pessimistically counted as failures in the analysis.",
    );
    vec![table]
}

//! The experiment suite: one module per table/figure of `DESIGN.md`'s
//! experiment index (E1–E21).
//!
//! Every function returns [`Table`]s pairing
//! measured values with the paper's analytical bound, so the output is
//! directly comparable. Trial counts scale with the `SIFT_TRIALS`
//! environment variable.

pub mod adaptive;
pub mod adopt_commit;
pub mod adversary;
pub mod agreement;
pub mod baselines;
pub mod consensus;
pub mod cost_model;
pub mod linear_work;
pub mod max_register;
pub mod priority_range;
pub mod steps;
pub mod survivors;
pub mod tail;
pub mod test_and_set;
pub mod width;

use crate::table::Table;

/// Runs every experiment in order, returning all tables.
///
/// This regenerates the full "evaluation section" recorded in
/// `EXPERIMENTS.md`.
pub fn run_all() -> Vec<Table> {
    let mut tables = Vec::new();
    tables.extend(survivors::snapshot_conciliator());
    tables.extend(survivors::sifting_conciliator());
    tables.extend(agreement::run());
    tables.extend(steps::run());
    tables.extend(linear_work::run());
    tables.extend(baselines::run());
    tables.extend(adversary::run());
    tables.extend(adopt_commit::run());
    tables.extend(consensus::run());
    tables.extend(priority_range::run());
    tables.extend(max_register::run());
    tables.extend(test_and_set::run());
    tables.extend(tail::run());
    tables.extend(width::run());
    tables.extend(adaptive::run());
    tables.extend(cost_model::run());
    tables
}

//! E21 — what the unit-cost snapshot model hides: charging Algorithm 1's
//! snapshots their register-implementation cost (`Θ(n)` per operation,
//! as the Afek et al. construction in `sift-shmem` actually pays)
//! flips the comparison with Algorithm 2 — the paper's own description
//! of the model as "practically irrelevant but theoretically
//! significant" (§5), made quantitative.

use sift_core::{Conciliator, Epsilon, SiftingConciliator, SnapshotConciliator};
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::RoundRobin;
use sift_sim::{CostModel, Engine, LayoutBuilder, Memory, ProcessId};

use crate::table::Table;

fn alg1_steps(n: usize, model: CostModel) -> u64 {
    let mut b = LayoutBuilder::new();
    let c = SnapshotConciliator::allocate(&mut b, n, Epsilon::HALF);
    let layout = b.build();
    let split = SeedSplitter::new(1);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let memory = Memory::with_cost_model(&layout, model);
    let report = Engine::with_memory(memory, procs).run(RoundRobin::new(n));
    report.metrics.max_individual_steps()
}

fn alg2_steps(n: usize) -> u64 {
    let mut b = LayoutBuilder::new();
    let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
    let layout = b.build();
    let split = SeedSplitter::new(1);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let report = Engine::new(&layout, procs).run(RoundRobin::new(n));
    report.metrics.max_individual_steps()
}

/// Algorithm 1's per-process cost under both snapshot cost models,
/// against Algorithm 2's register-only cost.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "E21 — snapshot cost-model ablation (steps per process, ε = 1/2)",
        &[
            "n",
            "Alg 1, unit-cost snapshots (2R)",
            "Alg 1, register-implemented (2R·n)",
            "Alg 2, registers (R)",
            "winner under honest costing",
        ],
    );
    for &n in &[4usize, 16, 64, 256, 1024] {
        let unit = alg1_steps(n, CostModel::UnitCost);
        let register = alg1_steps(n, CostModel::RegisterImplemented);
        let alg2 = alg2_steps(n);
        table.row(vec![
            n.to_string(),
            unit.to_string(),
            register.to_string(),
            alg2.to_string(),
            if alg2 < register {
                "Alg 2 (sifting)"
            } else {
                "Alg 1"
            }
            .to_string(),
        ]);
    }
    table.note(
        "Under unit cost Alg 1's O(log* n) beats Alg 2's O(log log n); charging each \
         snapshot its Θ(n) register-implementation cost (what sift-shmem's wait-free \
         snapshot actually pays) makes Alg 1 cost Θ(n log* n) and Alg 2 wins everywhere — \
         the sense in which the paper calls the unit-cost model practically irrelevant.",
    );
    vec![table]
}

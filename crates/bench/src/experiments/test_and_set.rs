//! E17 — test-and-set from sifting (§5's connection to
//! Alistarh–Aspnes): losers leave after `O(log log n)` register
//! operations; only `O(1)` expected survivors pay for the tournament.

use sift_core::math::ceil_log_log;
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::ScheduleKind;
use sift_sim::{Engine, LayoutBuilder, ProcessId};
use sift_tas::{check_tas_properties, SiftingTas, TasOutcome, TournamentTas};

use crate::exec::Batch;
use crate::runner::default_trials;
use crate::stats::Welford;
use crate::table::{fmt_f64, fmt_mean_ci, Table};

/// Per-trial measurements of one sifting-TAS + plain-tournament pair.
struct TasTrial {
    survivors: f64,
    winner_steps: Vec<f64>,
    loser_steps: Vec<f64>,
    plain_loser_steps: Vec<f64>,
}

/// Loser/winner cost split of the sifting test-and-set versus a plain
/// tournament, across `n`.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "E17 — sifting test-and-set vs plain tournament (random schedule)",
        &[
            "n",
            "⌈loglog n⌉",
            "sift rounds",
            "mean survivors",
            "loser steps (mean)",
            "winner steps (mean)",
            "tournament-only loser steps",
        ],
    );
    let kind = ScheduleKind::RandomInterleave;
    for &n in &[16usize, 64, 256, 1024, 4096] {
        let trials = default_trials((20_000 / n).clamp(8, 100));
        let (survivors, loser_steps, winner_steps, plain_loser_steps) = Batch::new(n, trials, kind)
            .run_with(
                |spec| {
                    // Sifting TAS.
                    let mut b = LayoutBuilder::new();
                    let tas = SiftingTas::allocate(&mut b, n);
                    let layout = b.build();
                    let split = SeedSplitter::new(spec.seed);
                    let procs: Vec<_> = (0..n)
                        .map(|i| {
                            tas.participant(ProcessId(i), &mut split.stream("process", i as u64))
                        })
                        .collect();
                    let report =
                        Engine::new(&layout, procs).run(kind.build(n, split.seed("schedule", 0)));
                    check_tas_properties(&report.outputs);
                    let mut trial = TasTrial {
                        survivors: report
                            .processes
                            .iter()
                            .filter(|p| p.reached_tournament())
                            .count() as f64,
                        winner_steps: Vec::new(),
                        loser_steps: Vec::new(),
                        plain_loser_steps: Vec::new(),
                    };
                    for (i, out) in report.outputs.iter().enumerate() {
                        let steps = report.metrics.per_process_steps[i] as f64;
                        match out {
                            Some(TasOutcome::Won) => trial.winner_steps.push(steps),
                            Some(TasOutcome::Lost) => trial.loser_steps.push(steps),
                            None => {}
                        }
                    }

                    // Plain tournament for contrast.
                    let mut b = LayoutBuilder::new();
                    let tas = TournamentTas::allocate(&mut b, n);
                    let layout = b.build();
                    let procs: Vec<_> = (0..n)
                        .map(|i| {
                            tas.participant(ProcessId(i), &mut split.stream("plain", i as u64))
                        })
                        .collect();
                    let report =
                        Engine::new(&layout, procs).run(kind.build(n, split.seed("schedule2", 0)));
                    check_tas_properties(&report.outputs);
                    for (i, out) in report.outputs.iter().enumerate() {
                        if out == &Some(TasOutcome::Lost) {
                            trial
                                .plain_loser_steps
                                .push(report.metrics.per_process_steps[i] as f64);
                        }
                    }
                    trial
                },
                || {
                    (
                        Welford::new(),
                        Welford::new(),
                        Welford::new(),
                        Welford::new(),
                    )
                },
                |(survivors, losers, winners, plain), trial| {
                    survivors.push(trial.survivors);
                    for x in trial.loser_steps {
                        losers.push(x);
                    }
                    for x in trial.winner_steps {
                        winners.push(x);
                    }
                    for x in trial.plain_loser_steps {
                        plain.push(x);
                    }
                },
            );
        let rounds = {
            let mut b = LayoutBuilder::new();
            SiftingTas::allocate(&mut b, n).sift_rounds()
        };
        let (s, l, w, pl) = (
            survivors.summary(),
            loser_steps.summary(),
            winner_steps.summary(),
            plain_loser_steps.summary(),
        );
        table.row(vec![
            n.to_string(),
            ceil_log_log(n as u64).to_string(),
            rounds.to_string(),
            fmt_mean_ci(s.mean, s.ci95),
            fmt_mean_ci(l.mean, l.ci95),
            fmt_mean_ci(w.mean, w.ci95),
            fmt_f64(pl.mean),
        ]);
    }
    table.note(
        "Sift losers pay ~loglog n register ops regardless of n; plain-tournament losers \
         pay Θ(log n) node games each. The winner's cost is the tournament climb, paid by \
         O(1) expected survivors (Alistarh–Aspnes replace it with an adaptive object).",
    );
    vec![table]
}

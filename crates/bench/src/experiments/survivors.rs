//! E1/E4/E5 — survivor (excess-personae) decay per round, versus the
//! paper's Lemma 1 (Algorithm 1) and Lemmas 3–4 (Algorithm 2).

use sift_core::analysis::{lemma1_expected_excess, sifting_expected_excess};
use sift_core::{
    Conciliator, Epsilon, Persona, RoundHistory, SiftingConciliator, SnapshotConciliator,
};
use sift_sim::schedule::ScheduleKind;
use sift_sim::{LayoutBuilder, Process};

use crate::exec::Batch;
use crate::runner::default_trials;
use crate::stats::RoundExcess;
use crate::table::{fmt_f64, Table};

fn mean_excess_per_round<C, P>(
    n: usize,
    trials: usize,
    kind: ScheduleKind,
    build: impl Fn(&mut LayoutBuilder) -> C + Sync,
) -> Vec<f64>
where
    C: Conciliator<Participant = P>,
    P: Process<Value = Persona, Output = Persona> + RoundHistory,
{
    Batch::new(n, trials, kind)
        .run_with_history(build, RoundExcess::new, |acc, t| {
            acc.record(&t.survivors.expect("history collected"));
        })
        .means()
}

/// E1: Algorithm 1 survivor decay vs `f^{(i)}(n-1)`,
/// `f(x) = min(ln(x+1), x/2)` (Lemma 1 iterated as in Theorem 1).
pub fn snapshot_conciliator() -> Vec<Table> {
    let mut table = Table::new(
        "E1 — Algorithm 1 (snapshot conciliator): mean excess personae per round",
        &[
            "n",
            "round",
            "measured E[X_i]",
            "paper bound f^(i)(n-1)",
            "within bound",
        ],
    );
    let kind = ScheduleKind::RandomInterleave;
    for &n in &[16usize, 64, 256, 1024] {
        let trials = default_trials((6400 / n).max(24));
        let means = mean_excess_per_round(n, trials, kind, |b| {
            SnapshotConciliator::allocate(b, n, Epsilon::HALF)
        });
        for (i, &mean) in means.iter().enumerate() {
            let bound = lemma1_expected_excess(n as u64, (i + 1) as u32);
            table.row(vec![
                n.to_string(),
                (i + 1).to_string(),
                fmt_f64(mean),
                fmt_f64(bound),
                if mean <= bound * 1.15 { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    table.note(
        "Bound is E[X_i] ≤ f^(i)(X_0) from Lemma 1 + Jensen; 15% slack absorbs sampling noise.",
    );
    vec![table]
}

/// E4/E5: Algorithm 2 survivor decay vs `x_i = 2^{2-2^{1-i}}(n-1)^{2^{-i}}`
/// for the aggressive rounds and `8·(3/4)^j` for the tail.
pub fn sifting_conciliator() -> Vec<Table> {
    let mut table = Table::new(
        "E4/E5 — Algorithm 2 (sifting conciliator): mean excess personae per round",
        &[
            "n",
            "round",
            "phase",
            "measured E[X_i]",
            "paper bound",
            "within bound",
        ],
    );
    let kind = ScheduleKind::RandomInterleave;
    for &n in &[16usize, 256, 4096, 65536] {
        let trials = default_trials((200_000 / n).clamp(12, 400));
        let aggressive = {
            let mut b = sift_sim::LayoutBuilder::new();
            SiftingConciliator::allocate(&mut b, n, Epsilon::HALF).aggressive_rounds()
        };
        let means = mean_excess_per_round(n, trials, kind, |b| {
            SiftingConciliator::allocate(b, n, Epsilon::HALF)
        });
        for (i, &mean) in means.iter().enumerate() {
            let round = i + 1;
            let bound = sifting_expected_excess(n as u64, round as u32);
            let phase = if round <= aggressive {
                "p_i (eq. 3)"
            } else {
                "p = 1/2"
            };
            table.row(vec![
                n.to_string(),
                round.to_string(),
                phase.to_string(),
                fmt_f64(mean),
                fmt_f64(bound),
                if mean <= bound * 1.15 { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    table.note(
        "Aggressive rounds follow x_{i+1} = 2√x_i (Lemma 3); tail rounds decay by 3/4 (Lemma 4).",
    );
    vec![table]
}

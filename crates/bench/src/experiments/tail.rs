//! E18 — the `log(1/ε)` tail: disagreement probability versus extra
//! rounds beyond `⌈log log n⌉`, the upper-bound mirror of the
//! Attiya–Censor-Hillel lower bound the paper cites (failure
//! probability must decay at most geometrically in the extra work).

use sift_core::math::{ceil_log_log, sifting_p};
use sift_core::{Epsilon, SiftingConciliator};
use sift_sim::schedule::ScheduleKind;

use crate::exec::{Batch, Merge};
use crate::runner::default_trials;
use crate::stats::{RateCounter, Truncations};
use crate::table::{fmt_f64, Table};

/// Measures the disagreement rate of Algorithm 2 as a function of the
/// number of `p = 1/2` tail rounds, against Lemma 4's
/// `8·(3/4)^j` prediction.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "E18 — Algorithm 2 tail: disagreement vs extra rounds j beyond ⌈loglog n⌉ (n = 64)",
        &[
            "tail rounds j",
            "total rounds",
            "trials",
            "disagree rate",
            "Lemma 4 bound min(1, 8·(3/4)^j)",
            "within bound",
        ],
    );
    let n = 64usize;
    let kind = ScheduleKind::RandomInterleave;
    let aggressive = ceil_log_log(n as u64);
    let trials = default_trials(1200);
    let mut truncations = Truncations::new();
    for &j in &[1u32, 2, 4, 6, 8, 10, 12, 16, 20] {
        let probs: Vec<f64> = (1..=aggressive + j)
            .map(|i| {
                if i <= aggressive {
                    sifting_p(n as u64, i)
                } else {
                    0.5
                }
            })
            .collect();
        let (rate, trunc) = Batch::new(n, trials, kind).run(
            |b| SiftingConciliator::with_probabilities(b, n, probs.clone(), Epsilon::HALF),
            || (RateCounter::new(), Truncations::new()),
            |(rate, trunc), t| {
                rate.record(!t.agreed);
                trunc.record(t.stop_reason);
            },
        );
        truncations.merge(trunc);
        let bound = (8.0 * 0.75f64.powi(j as i32)).min(1.0);
        table.row(vec![
            j.to_string(),
            (aggressive + j).to_string(),
            rate.total().to_string(),
            fmt_f64(rate.rate()),
            fmt_f64(bound),
            if rate.rate() <= bound { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table.note(
        "Each extra 1/2-round multiplies the expected excess by 3/4 (Lemma 4); the measured \
         disagreement decays geometrically, matching the Θ(log 1/ε) round cost that the \
         Attiya–Censor-Hillel lower bound shows is necessary.",
    );
    if let Some(note) = truncations.note() {
        table.note(&note);
    }
    vec![table, run_at_scale()]
}

/// The same tail experiment at event-engine scale: n ∈ {10⁴, 10⁵}.
///
/// Trial counts are deliberately *hard-coded* (not routed through
/// [`default_trials`], which `SIFT_TRIALS` overrides): a single
/// n = 10⁵ trial schedules millions of events, so these rows exist to
/// pin the large-n shape — the geometric decay and the within-bound
/// check — while keeping the thread-invariance CI gate (which runs
/// `exp_all` twice) inside its wall-clock budget. The n = 64 table
/// above carries the statistical weight.
fn run_at_scale() -> Table {
    let mut table = Table::new(
        "E18b — Algorithm 2 tail at scale (fixed small trial counts)",
        &[
            "n",
            "tail rounds j",
            "total rounds",
            "trials",
            "disagree rate",
            "Lemma 4 bound min(1, 8·(3/4)^j)",
        ],
    );
    let kind = ScheduleKind::RandomInterleave;
    for &(n, trials) in &[(10_000usize, 12usize), (100_000, 4)] {
        let aggressive = ceil_log_log(n as u64);
        for &j in &[4u32, 8] {
            let probs: Vec<f64> = (1..=aggressive + j)
                .map(|i| {
                    if i <= aggressive {
                        sifting_p(n as u64, i)
                    } else {
                        0.5
                    }
                })
                .collect();
            let rate = Batch::new(n, trials, kind).run(
                |b| SiftingConciliator::with_probabilities(b, n, probs.clone(), Epsilon::HALF),
                RateCounter::new,
                |rate, t| rate.record(!t.agreed),
            );
            let bound = (8.0 * 0.75f64.powi(j as i32)).min(1.0);
            table.row(vec![
                n.to_string(),
                j.to_string(),
                (aggressive + j).to_string(),
                rate.total().to_string(),
                fmt_f64(rate.rate()),
                fmt_f64(bound),
            ]);
        }
    }
    table.note(
        "Large-n rows demonstrate the O(log log n) tail shape survives at simulator scale; \
         at these trial counts the rates are illustrative, not hypothesis tests (E22 covers \
         those).",
    );
    table
}

//! E12/E16 — robustness across adversary strategies, and wait-freedom
//! under crash failures — plus E24, the adversary-lattice sweep:
//! agreement as a function of adversary strength (oblivious →
//! k-delayed → late → adaptive) on both the atomic and the regular
//! register substrate.

use sift_core::{
    CilConciliator, Conciliator, EmbeddedConciliator, Epsilon, EscalatingCilConciliator,
    SiftingConciliator, SnapshotConciliator,
};
use sift_sim::adversary::AdversaryStrength;
use sift_sim::fuzz::FingerprintHasher;
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::{CrashSubset, RandomInterleave, RoundRobin, Schedule, ScheduleKind};
use sift_sim::{Engine, LayoutBuilder, ProcessId, RegisterSemantics, Resolution};

use crate::exec::Batch;
use crate::runner::default_trials;
use crate::stats::RateCounter;
use crate::table::{fmt_f64, Table};

/// Agreement rates per (conciliator, schedule family), wait-freedom
/// under crash subsets, and the adversary-lattice sweep.
pub fn run() -> Vec<Table> {
    let mut tables = run_base();
    tables.push(run_lattice(LATTICE_N, default_trials(LATTICE_TRIALS)).table());
    tables
}

/// The E12/E16 tables alone — the lattice sweep is separate so the
/// experiment binary can reuse one sweep for the table, the digest,
/// and the `BENCH_adversary.json` artifact.
pub fn run_base() -> Vec<Table> {
    vec![schedules(), crashes()]
}

/// Instance size of the lattice sweep (adaptive runs scan the live set
/// each step, so this stays below the E12 n = 64).
pub const LATTICE_N: usize = 32;

/// Default trials per lattice cell (scaled by `SIFT_TRIALS`).
pub const LATTICE_TRIALS: usize = 100;

/// One cell of the agreement-vs-adversary-strength sweep: a lattice
/// point × substrate pair with integer tallies (integers, not rates, so
/// the [`digest`](LatticeReport::digest) is exact and thread-invariant).
#[derive(Debug, Clone)]
pub struct LatticeCell {
    /// Lattice point name (see [`AdversaryStrength::name`]).
    pub strength: String,
    /// `"atomic"` or `"regular"`.
    pub substrate: &'static str,
    /// Trials behind the tallies.
    pub trials: u64,
    /// Trials where every decided process returned one persona.
    pub agreements: u64,
    /// Sum over trials of the distinct-output count.
    pub distinct_sum: u64,
}

impl LatticeCell {
    /// Fraction of trials that agreed.
    pub fn agree_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.agreements as f64 / self.trials as f64
        }
    }

    /// Mean distinct outputs per trial.
    pub fn mean_distinct(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.distinct_sum as f64 / self.trials as f64
        }
    }
}

/// The E24 sweep: the sifting conciliator at every adversary-lattice
/// point, on the atomic and the regular (coin-resolved) substrate.
#[derive(Debug)]
pub struct LatticeReport {
    /// Processes per trial.
    pub n: usize,
    /// One cell per lattice point × substrate, in sweep order.
    pub cells: Vec<LatticeCell>,
}

impl LatticeReport {
    /// Renders the sweep as the E24 table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            format!(
                "E24 — agreement vs adversary strength (sifting, n = {}, distinct inputs)",
                self.n
            ),
            &[
                "adversary",
                "substrate",
                "trials",
                "agree rate",
                "mean distinct outputs",
            ],
        );
        for c in &self.cells {
            table.row(vec![
                c.strength.clone(),
                c.substrate.to_string(),
                c.trials.to_string(),
                fmt_f64(c.agree_rate()),
                fmt_f64(c.mean_distinct()),
            ]);
        }
        table.note(
            "Strength decreases left-to-right along the lattice: the oblivious row is the \
             paper's model; delayed choosers interpolate; the adaptive row is the E20 \
             breaker. The regular substrate resolves overlapping reads by coin, weakening \
             sifting even against the oblivious adversary.",
        );
        table
    }

    /// The sweep as a small JSON document (tracked in
    /// `BENCH_adversary.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"n\": {},\n", self.n));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"strength\": \"{}\", \"substrate\": \"{}\", \"trials\": {}, \
                 \"agreements\": {}, \"agree_rate\": {:.4}, \"mean_distinct\": {:.4}}}{}\n",
                c.strength,
                c.substrate,
                c.trials,
                c.agreements,
                c.agree_rate(),
                c.mean_distinct(),
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// FNV digest over the integer tallies — the seed-stability
    /// regression hook, byte-identical across `SIFT_THREADS`.
    pub fn digest(&self) -> u64 {
        let mut h = FingerprintHasher::new();
        h.write_usize(self.n);
        for c in &self.cells {
            h.write_bytes(c.strength.as_bytes());
            h.write_bytes(c.substrate.as_bytes());
            h.write_u64(c.trials);
            h.write_u64(c.agreements);
            h.write_u64(c.distinct_sum);
        }
        h.finish()
    }
}

/// A named substrate: a label plus a per-trial-seed semantics choice.
type Substrate = (&'static str, fn(u64) -> RegisterSemantics);

/// Runs the lattice sweep: every [`AdversaryStrength::lattice`] point ×
/// {atomic, regular} substrate, `trials` seeded trials per cell. Seeds
/// are fixed per cell (independent of `SIFT_SEED`), so the report's
/// [`digest`](LatticeReport::digest) is a stable golden.
pub fn run_lattice(n: usize, trials: usize) -> LatticeReport {
    let split = SeedSplitter::new(0x5EED_AD7E);
    let substrates: [Substrate; 2] = [
        ("atomic", |_| RegisterSemantics::Atomic),
        ("regular", |seed| {
            RegisterSemantics::Regular(Resolution::Coin(seed))
        }),
    ];
    let mut cells = Vec::new();
    for (i, strength) in AdversaryStrength::lattice().into_iter().enumerate() {
        for (j, (substrate, semantics_of)) in substrates.into_iter().enumerate() {
            let (agree, distinct_sum) = Batch::new(n, trials, ScheduleKind::RandomInterleave)
                .with_master_seed(split.seed("cell", (i * substrates.len() + j) as u64))
                .run_with(
                    |spec| lattice_trial(n, spec.seed, strength, semantics_of),
                    || (RateCounter::new(), 0u64),
                    |(agree, sum), (ok, d)| {
                        agree.record(ok);
                        *sum += d as u64;
                    },
                );
            cells.push(LatticeCell {
                strength: strength.name(),
                substrate,
                trials: agree.total(),
                agreements: agree.hits(),
                distinct_sum,
            });
        }
    }
    LatticeReport { n, cells }
}

/// One sifting trial under a lattice point and substrate: oblivious
/// strengths run the fixed [`RandomInterleave`] schedule; stronger
/// points drive a [`DelayedChooser`] running the E20 sifting breaker on
/// `k`-stale observations.
fn lattice_trial(
    n: usize,
    seed: u64,
    strength: AdversaryStrength,
    semantics_of: fn(u64) -> RegisterSemantics,
) -> (bool, usize) {
    let mut b = LayoutBuilder::new();
    let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
    let layout = b.build();
    let split = SeedSplitter::new(seed);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let mut engine = Engine::new(&layout, procs);
    engine.set_register_semantics(semantics_of(split.seed("regular", 0)));
    let report = match strength.delay() {
        None => engine.run(RandomInterleave::new(n, split.seed("schedule", 0))),
        Some(delay) => crate::runner::run_sifting_breaker(engine, delay),
    };
    use std::collections::HashSet;
    let distinct: HashSet<u64> = report
        .outputs
        .iter()
        .flatten()
        .map(|p| p.origin().index() as u64)
        .collect();
    (distinct.len() <= 1, distinct.len())
}

type BatchFn = Box<dyn Fn(ScheduleKind, usize) -> RateCounter>;

fn schedules() -> Table {
    let mut table = Table::new(
        "E12 — agreement rate per adversary strategy",
        &[
            "conciliator",
            "guarantee",
            "round-robin",
            "random",
            "block-seq",
            "block-rot",
            "stutter",
        ],
    );
    let n = 64;
    let trials = default_trials(300);
    fn rate_of<C: Conciliator>(
        n: usize,
        trials: usize,
        kind: ScheduleKind,
        build: impl Fn(&mut LayoutBuilder) -> C + Sync,
    ) -> RateCounter {
        Batch::new(n, trials, kind).run(build, RateCounter::new, |r, t| r.record(t.agreed))
    }
    let algs: [(&str, &str, BatchFn); 5] = [
        (
            "Alg 1 (snapshot)",
            "≥ 0.5",
            Box::new(move |kind, trials| {
                rate_of(n, trials, kind, |b| {
                    SnapshotConciliator::allocate(b, n, Epsilon::HALF)
                })
            }),
        ),
        (
            "Alg 2 (sifting)",
            "≥ 0.5",
            Box::new(move |kind, trials| {
                rate_of(n, trials, kind, |b| {
                    SiftingConciliator::allocate(b, n, Epsilon::HALF)
                })
            }),
        ),
        (
            "Alg 3 (embedded)",
            "≥ 0.125",
            Box::new(move |kind, trials| {
                rate_of(n, trials, kind, |b| EmbeddedConciliator::allocate(b, n))
            }),
        ),
        (
            "CIL",
            "≥ 0.75",
            Box::new(move |kind, trials| {
                rate_of(n, trials, kind, |b| CilConciliator::allocate(b, n))
            }),
        ),
        (
            "escalating CIL",
            "≥ 0.25",
            Box::new(move |kind, trials| {
                rate_of(n, trials, kind, |b| {
                    EscalatingCilConciliator::allocate(b, n)
                })
            }),
        ),
    ];
    for (name, guarantee, runner) in &algs {
        let mut cells = vec![name.to_string(), guarantee.to_string()];
        for kind in ScheduleKind::all() {
            let rate = runner(kind, trials);
            cells.push(fmt_f64(rate.rate()));
        }
        table.row(cells);
    }
    table.note(
        "Every strategy is oblivious (fixed before coin flips); the guarantees hold across \
         all of them, as Theorems 1–3 require.",
    );
    table
}

fn crashes() -> Table {
    let mut table = Table::new(
        "E16 — wait-freedom: sifting conciliator under crash subsets",
        &[
            "n",
            "crash fraction",
            "live processes",
            "live decided",
            "validity",
        ],
    );
    let n = 64;
    for &fraction in &[0.25, 0.5, 0.9] {
        // One representative row per fraction; the batch checks all seeds.
        let (live, decided, valid) = crash_run(n, fraction, 0);
        table.row(vec![
            n.to_string(),
            fraction.to_string(),
            live.to_string(),
            decided.to_string(),
            if valid { "yes" } else { "NO" }.to_string(),
        ]);
        // Check every seed; in-trial asserts propagate through the
        // executor's panic forwarding.
        Batch::new(n, default_trials(20), ScheduleKind::RoundRobin).run_with(
            |spec| {
                let (live, decided, valid) = crash_run(n, fraction, spec.seed);
                assert_eq!(live, decided, "wait-freedom violated at seed {}", spec.seed);
                assert!(valid, "validity violated at seed {}", spec.seed);
            },
            || (),
            |(), ()| {},
        );
    }
    table
        .note("Crashed processes never take a step; all survivors still terminate (wait-freedom).");
    table
}

fn crash_run(n: usize, fraction: f64, seed: u64) -> (usize, usize, bool) {
    let mut b = LayoutBuilder::new();
    let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
    let layout = b.build();
    let split = SeedSplitter::new(seed);
    let schedule = CrashSubset::random(RoundRobin::new(n), n, fraction, split.seed("schedule", 0));
    let live = schedule.support().len();
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let report = Engine::new(&layout, procs).run(schedule);
    let decided = report.decided().count();
    let valid = report.decided().all(|p| p.input() < n as u64);
    (live, decided, valid)
}

//! E12/E16 — robustness across adversary strategies, and wait-freedom
//! under crash failures.

use sift_core::{
    CilConciliator, Conciliator, EmbeddedConciliator, Epsilon, EscalatingCilConciliator,
    SiftingConciliator, SnapshotConciliator,
};
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::{CrashSubset, RoundRobin, Schedule, ScheduleKind};
use sift_sim::{Engine, LayoutBuilder, ProcessId};

use crate::runner::{default_trials, run_trial};
use crate::stats::RateCounter;
use crate::table::{fmt_f64, Table};

/// Agreement rates per (conciliator, schedule family), plus wait-freedom
/// under crash subsets.
pub fn run() -> Vec<Table> {
    vec![schedules(), crashes()]
}

type TrialFn = Box<dyn Fn(u64, ScheduleKind) -> bool>;

fn schedules() -> Table {
    let mut table = Table::new(
        "E12 — agreement rate per adversary strategy",
        &["conciliator", "guarantee", "round-robin", "random", "block-seq", "block-rot", "stutter"],
    );
    let n = 64;
    let trials = default_trials(300);
    let algs: [(&str, &str, TrialFn); 5] = [
        (
            "Alg 1 (snapshot)",
            "≥ 0.5",
            Box::new(move |seed, kind| {
                run_trial(n, seed, kind, |b| {
                    SnapshotConciliator::allocate(b, n, Epsilon::HALF)
                })
                .agreed
            }),
        ),
        (
            "Alg 2 (sifting)",
            "≥ 0.5",
            Box::new(move |seed, kind| {
                run_trial(n, seed, kind, |b| {
                    SiftingConciliator::allocate(b, n, Epsilon::HALF)
                })
                .agreed
            }),
        ),
        (
            "Alg 3 (embedded)",
            "≥ 0.125",
            Box::new(move |seed, kind| {
                run_trial(n, seed, kind, |b| EmbeddedConciliator::allocate(b, n)).agreed
            }),
        ),
        (
            "CIL",
            "≥ 0.75",
            Box::new(move |seed, kind| {
                run_trial(n, seed, kind, |b| CilConciliator::allocate(b, n)).agreed
            }),
        ),
        (
            "escalating CIL",
            "≥ 0.25",
            Box::new(move |seed, kind| {
                run_trial(n, seed, kind, |b| EscalatingCilConciliator::allocate(b, n)).agreed
            }),
        ),
    ];
    for (name, guarantee, runner) in &algs {
        let mut cells = vec![name.to_string(), guarantee.to_string()];
        for kind in ScheduleKind::all() {
            let mut rate = RateCounter::new();
            for seed in 0..trials as u64 {
                rate.record(runner(seed, kind));
            }
            cells.push(fmt_f64(rate.rate()));
        }
        table.row(cells);
    }
    table.note(
        "Every strategy is oblivious (fixed before coin flips); the guarantees hold across \
         all of them, as Theorems 1–3 require.",
    );
    table
}

fn crashes() -> Table {
    let mut table = Table::new(
        "E16 — wait-freedom: sifting conciliator under crash subsets",
        &["n", "crash fraction", "live processes", "live decided", "validity"],
    );
    let n = 64;
    for &fraction in &[0.25, 0.5, 0.9] {
        for seed in 0..default_trials(20) as u64 {
            if seed > 0 {
                continue; // one representative row per fraction; loop checks all
            }
            let (live, decided, valid) = crash_run(n, fraction, seed);
            table.row(vec![
                n.to_string(),
                fraction.to_string(),
                live.to_string(),
                decided.to_string(),
                if valid { "yes" } else { "NO" }.to_string(),
            ]);
        }
        // Check every seed silently; panic on violation.
        for seed in 0..default_trials(20) as u64 {
            let (live, decided, valid) = crash_run(n, fraction, seed);
            assert_eq!(live, decided, "wait-freedom violated at seed {seed}");
            assert!(valid, "validity violated at seed {seed}");
        }
    }
    table.note("Crashed processes never take a step; all survivors still terminate (wait-freedom).");
    table
}

fn crash_run(n: usize, fraction: f64, seed: u64) -> (usize, usize, bool) {
    let mut b = LayoutBuilder::new();
    let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
    let layout = b.build();
    let split = SeedSplitter::new(seed);
    let schedule = CrashSubset::random(
        RoundRobin::new(n),
        n,
        fraction,
        split.seed("schedule", 0),
    );
    let live = schedule.support().len();
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let report = Engine::new(&layout, procs).run(schedule);
    let decided = report.decided().count();
    let valid = report.decided().all(|p| p.input() < n as u64);
    (live, decided, valid)
}

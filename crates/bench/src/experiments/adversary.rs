//! E12/E16 — robustness across adversary strategies, and wait-freedom
//! under crash failures.

use sift_core::{
    CilConciliator, Conciliator, EmbeddedConciliator, Epsilon, EscalatingCilConciliator,
    SiftingConciliator, SnapshotConciliator,
};
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::{CrashSubset, RoundRobin, Schedule, ScheduleKind};
use sift_sim::{Engine, LayoutBuilder, ProcessId};

use crate::exec::Batch;
use crate::runner::default_trials;
use crate::stats::RateCounter;
use crate::table::{fmt_f64, Table};

/// Agreement rates per (conciliator, schedule family), plus wait-freedom
/// under crash subsets.
pub fn run() -> Vec<Table> {
    vec![schedules(), crashes()]
}

type BatchFn = Box<dyn Fn(ScheduleKind, usize) -> RateCounter>;

fn schedules() -> Table {
    let mut table = Table::new(
        "E12 — agreement rate per adversary strategy",
        &[
            "conciliator",
            "guarantee",
            "round-robin",
            "random",
            "block-seq",
            "block-rot",
            "stutter",
        ],
    );
    let n = 64;
    let trials = default_trials(300);
    fn rate_of<C: Conciliator>(
        n: usize,
        trials: usize,
        kind: ScheduleKind,
        build: impl Fn(&mut LayoutBuilder) -> C + Sync,
    ) -> RateCounter {
        Batch::new(n, trials, kind).run(build, RateCounter::new, |r, t| r.record(t.agreed))
    }
    let algs: [(&str, &str, BatchFn); 5] = [
        (
            "Alg 1 (snapshot)",
            "≥ 0.5",
            Box::new(move |kind, trials| {
                rate_of(n, trials, kind, |b| {
                    SnapshotConciliator::allocate(b, n, Epsilon::HALF)
                })
            }),
        ),
        (
            "Alg 2 (sifting)",
            "≥ 0.5",
            Box::new(move |kind, trials| {
                rate_of(n, trials, kind, |b| {
                    SiftingConciliator::allocate(b, n, Epsilon::HALF)
                })
            }),
        ),
        (
            "Alg 3 (embedded)",
            "≥ 0.125",
            Box::new(move |kind, trials| {
                rate_of(n, trials, kind, |b| EmbeddedConciliator::allocate(b, n))
            }),
        ),
        (
            "CIL",
            "≥ 0.75",
            Box::new(move |kind, trials| {
                rate_of(n, trials, kind, |b| CilConciliator::allocate(b, n))
            }),
        ),
        (
            "escalating CIL",
            "≥ 0.25",
            Box::new(move |kind, trials| {
                rate_of(n, trials, kind, |b| {
                    EscalatingCilConciliator::allocate(b, n)
                })
            }),
        ),
    ];
    for (name, guarantee, runner) in &algs {
        let mut cells = vec![name.to_string(), guarantee.to_string()];
        for kind in ScheduleKind::all() {
            let rate = runner(kind, trials);
            cells.push(fmt_f64(rate.rate()));
        }
        table.row(cells);
    }
    table.note(
        "Every strategy is oblivious (fixed before coin flips); the guarantees hold across \
         all of them, as Theorems 1–3 require.",
    );
    table
}

fn crashes() -> Table {
    let mut table = Table::new(
        "E16 — wait-freedom: sifting conciliator under crash subsets",
        &[
            "n",
            "crash fraction",
            "live processes",
            "live decided",
            "validity",
        ],
    );
    let n = 64;
    for &fraction in &[0.25, 0.5, 0.9] {
        // One representative row per fraction; the batch checks all seeds.
        let (live, decided, valid) = crash_run(n, fraction, 0);
        table.row(vec![
            n.to_string(),
            fraction.to_string(),
            live.to_string(),
            decided.to_string(),
            if valid { "yes" } else { "NO" }.to_string(),
        ]);
        // Check every seed; in-trial asserts propagate through the
        // executor's panic forwarding.
        Batch::new(n, default_trials(20), ScheduleKind::RoundRobin).run_with(
            |spec| {
                let (live, decided, valid) = crash_run(n, fraction, spec.seed);
                assert_eq!(live, decided, "wait-freedom violated at seed {}", spec.seed);
                assert!(valid, "validity violated at seed {}", spec.seed);
            },
            || (),
            |(), ()| {},
        );
    }
    table
        .note("Crashed processes never take a step; all survivors still terminate (wait-freedom).");
    table
}

fn crash_run(n: usize, fraction: f64, seed: u64) -> (usize, usize, bool) {
    let mut b = LayoutBuilder::new();
    let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
    let layout = b.build();
    let split = SeedSplitter::new(seed);
    let schedule = CrashSubset::random(RoundRobin::new(n), n, fraction, split.seed("schedule", 0));
    let live = schedule.support().len();
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let report = Engine::new(&layout, procs).run(schedule);
    let decided = report.decided().count();
    let valid = report.decided().all(|p| p.input() < n as u64);
    (live, decided, valid)
}

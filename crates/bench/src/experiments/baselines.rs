//! E11 — baseline comparison: CIL vs the paper's conciliators under
//! benign and adversarial schedules ("who wins, by what factor").

use sift_core::{CilConciliator, Epsilon, EscalatingCilConciliator, MaxConciliator, SiftingConciliator};
use sift_sim::schedule::ScheduleKind;

use crate::runner::{default_trials, run_trial};
use crate::stats::Summary;
use crate::table::{fmt_mean_ci, Table};

/// Measures worst-process step counts for each conciliator under the
/// round-robin and block-sequential (solo) adversaries.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "E11 — max individual steps: CIL vs escalating CIL vs Algorithm 1 (max) vs Algorithm 2",
        &[
            "schedule",
            "n",
            "CIL (Θ(n) solo)",
            "escalating CIL (O(log n))",
            "Alg 1 max-variant (2R)",
            "Alg 2 sifting (R)",
        ],
    );
    for &kind in &[ScheduleKind::RoundRobin, ScheduleKind::BlockSequential] {
        for &n in &[16usize, 64, 256, 1024] {
            let trials = default_trials(30);
            let mut cil = Vec::new();
            let mut esc = Vec::new();
            let mut alg1 = Vec::new();
            let mut alg2 = Vec::new();
            for seed in 0..trials as u64 {
                cil.push(
                    run_trial(n, seed, kind, |b| CilConciliator::allocate(b, n))
                        .metrics
                        .max_individual_steps() as f64,
                );
                esc.push(
                    run_trial(n, seed, kind, |b| EscalatingCilConciliator::allocate(b, n))
                        .metrics
                        .max_individual_steps() as f64,
                );
                alg1.push(
                    run_trial(n, seed, kind, |b| {
                        MaxConciliator::allocate(b, n, Epsilon::HALF)
                    })
                    .metrics
                    .max_individual_steps() as f64,
                );
                alg2.push(
                    run_trial(n, seed, kind, |b| {
                        SiftingConciliator::allocate(b, n, Epsilon::HALF)
                    })
                    .metrics
                    .max_individual_steps() as f64,
                );
            }
            let (c, e, a1, a2) = (
                Summary::of(&cil),
                Summary::of(&esc),
                Summary::of(&alg1),
                Summary::of(&alg2),
            );
            table.row(vec![
                kind.name().to_string(),
                n.to_string(),
                fmt_mean_ci(c.mean, c.ci95),
                fmt_mean_ci(e.mean, e.ci95),
                fmt_mean_ci(a1.mean, a1.ci95),
                fmt_mean_ci(a2.mean, a2.ci95),
            ]);
        }
    }
    table.note(
        "Under block-sequential scheduling the first CIL process runs solo and needs Θ(n) \
         expected steps; the escalating variant (the pre-paper O(log n) state of the art) \
         caps at ~log n; the paper's conciliators keep their log*/loglog worst cases — \
         each improvement visible as a separate curve.",
    );
    vec![table]
}

//! E11 — baseline comparison: CIL vs the paper's conciliators under
//! benign and adversarial schedules ("who wins, by what factor").

use sift_core::{
    CilConciliator, Epsilon, EscalatingCilConciliator, MaxConciliator, SiftingConciliator,
};
use sift_sim::schedule::ScheduleKind;

use crate::exec::Batch;
use crate::runner::default_trials;
use crate::stats::Welford;
use crate::table::{fmt_mean_ci, Table};

/// Measures worst-process step counts for each conciliator under the
/// round-robin and block-sequential (solo) adversaries.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "E11 — max individual steps: CIL vs escalating CIL vs Algorithm 1 (max) vs Algorithm 2",
        &[
            "schedule",
            "n",
            "CIL (Θ(n) solo)",
            "escalating CIL (O(log n))",
            "Alg 1 max-variant (2R)",
            "Alg 2 sifting (R)",
        ],
    );
    let fold = |w: &mut Welford, t: crate::Trial| {
        w.push(t.metrics.max_individual_steps() as f64);
    };
    for &kind in &[ScheduleKind::RoundRobin, ScheduleKind::BlockSequential] {
        for &n in &[16usize, 64, 256, 1024] {
            let trials = default_trials(30);
            let batch = Batch::new(n, trials, kind);
            let cil = batch.run(|b| CilConciliator::allocate(b, n), Welford::new, fold);
            let esc = batch.run(
                |b| EscalatingCilConciliator::allocate(b, n),
                Welford::new,
                fold,
            );
            let alg1 = batch.run(
                |b| MaxConciliator::allocate(b, n, Epsilon::HALF),
                Welford::new,
                fold,
            );
            let alg2 = batch.run(
                |b| SiftingConciliator::allocate(b, n, Epsilon::HALF),
                Welford::new,
                fold,
            );
            let (c, e, a1, a2) = (cil.summary(), esc.summary(), alg1.summary(), alg2.summary());
            table.row(vec![
                kind.name().to_string(),
                n.to_string(),
                fmt_mean_ci(c.mean, c.ci95),
                fmt_mean_ci(e.mean, e.ci95),
                fmt_mean_ci(a1.mean, a1.ci95),
                fmt_mean_ci(a2.mean, a2.ci95),
            ]);
        }
    }
    table.note(
        "Under block-sequential scheduling the first CIL process runs solo and needs Θ(n) \
         expected steps; the escalating variant (the pre-paper O(log n) state of the art) \
         caps at ~log n; the paper's conciliators keep their log*/loglog worst cases — \
         each improvement visible as a separate curve.",
    );
    vec![table]
}

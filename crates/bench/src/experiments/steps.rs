//! E3/E6 — individual step complexity versus `n` (the headline
//! `O(log* n)` and `O(log log n)` curves).

use sift_core::analysis::{theorem1_steps, theorem2_rounds};
use sift_core::math::{ceil_log_log, log_star};
use sift_core::{Epsilon, MaxConciliator, SiftingConciliator};
use sift_sim::schedule::ScheduleKind;

use crate::runner::run_trial;
use crate::table::Table;

/// Measures per-process step counts (deterministic for both algorithms)
/// across a wide `n` sweep, next to the paper's formulas.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "E3 — individual step complexity vs n (ε = 1/2)",
        &[
            "n",
            "log* n",
            "⌈loglog n⌉",
            "Alg 1 steps (measured)",
            "paper 2(log* n + ⌈log 1/ε⌉ + 1)",
            "Alg 2 steps (measured)",
            "paper ⌈loglog n⌉+⌈log_{4/3} 8/ε⌉",
        ],
    );
    let eps = Epsilon::HALF;
    // Decimal large-n rows (10^4, 10^5, 10^6) ride alongside the
    // original power-of-two sweep: the event engine makes the
    // million-process rows a few seconds of work, and the decimal
    // points line up with the BENCH_sim.json throughput sweep.
    for &n in &[
        4usize,
        16,
        256,
        4096,
        10_000,
        65_536,
        100_000,
        1_000_000,
        1 << 20,
    ] {
        // Algorithm 1 is measured through its max-register variant
        // (footnote 1) so the sweep reaches 2^20 processes; step counts
        // are identical to the snapshot version by construction.
        let alg1 = run_trial(n, 1, ScheduleKind::RoundRobin, |b| {
            MaxConciliator::allocate(b, n, eps)
        });
        let alg2 = run_trial(n, 1, ScheduleKind::RoundRobin, |b| {
            SiftingConciliator::allocate(b, n, eps)
        });
        table.row(vec![
            n.to_string(),
            log_star(n as u64).to_string(),
            ceil_log_log(n as u64).to_string(),
            alg1.metrics.max_individual_steps().to_string(),
            theorem1_steps(n as u64, eps).to_string(),
            alg2.metrics.max_individual_steps().to_string(),
            theorem2_rounds(n as u64, eps).to_string(),
        ]);
    }
    table.note(
        "Both algorithms take exactly their worst-case step counts in every execution; \
         the curves are the paper's log* n and log log n shapes.",
    );
    vec![table]
}

//! E20 — why obliviousness matters: an *adaptive* adversary (one that
//! sees pending operations and process states, the §1.1 power the
//! oblivious adversary is denied) defeats both conciliators outright.
//!
//! * Against the sifting conciliator it schedules, within each round,
//!   every reader before any writer: all readers see ⊥ and survive with
//!   their own personae, so no sifting ever happens.
//! * Against the priority conciliator it runs processes in increasing
//!   order of their current round priority, each to the end of its
//!   scan: every process sees only lower priorities and keeps its own
//!   persona.
//!
//! Both attacks keep all `n` personae alive through every round, so
//! agreement only happens if it held at the start. This is the
//! empirical face of the adaptive-adversary lower bounds
//! (Attiya–Censor) the paper contrasts itself against.

use sift_core::{Conciliator, Epsilon, SiftingConciliator, SnapshotConciliator};
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::RandomInterleave;
use sift_sim::{Engine, LayoutBuilder, Op, ProcessId};

use crate::exec::Batch;
use crate::runner::default_trials;
use crate::stats::{RateCounter, Welford};
use crate::table::{fmt_f64, Table};

fn distinct_outputs<P, O: std::hash::Hash + Eq>(
    report: &sift_sim::RunReport<P>,
    key: impl Fn(&P::Output) -> O,
) -> usize
where
    P: sift_sim::Process,
{
    use std::collections::HashSet;
    let set: HashSet<O> = report.outputs.iter().flatten().map(key).collect();
    set.len()
}

fn sifting_run(n: usize, seed: u64, adaptive: bool) -> (bool, usize) {
    let mut b = LayoutBuilder::new();
    let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
    let layout = b.build();
    let split = SeedSplitter::new(seed);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let engine = Engine::new(&layout, procs);
    let report = if adaptive {
        // Readers of the earliest round go first: nobody is ever sifted.
        engine.run_adaptive(|view| {
            view.live
                .iter()
                .min_by_key(|(pid, proc, op)| {
                    let is_writer = matches!(op, Op::RegisterWrite(_, _));
                    (proc.round(), is_writer, pid.index())
                })
                .map(|(pid, _, _)| *pid)
                .expect("live processes exist")
        })
    } else {
        engine.run(RandomInterleave::new(n, split.seed("schedule", 0)))
    };
    let distinct = distinct_outputs(&report, |p| p.origin());
    (distinct <= 1, distinct)
}

fn snapshot_run(n: usize, seed: u64, adaptive: bool) -> (bool, usize) {
    let mut b = LayoutBuilder::new();
    let c = SnapshotConciliator::allocate(&mut b, n, Epsilon::HALF);
    let layout = b.build();
    let split = SeedSplitter::new(seed);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            c.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let engine = Engine::new(&layout, procs);
    let report = if adaptive {
        // Ascending current-round priority, each process finishing its
        // update+scan pair before the next starts: everyone sees only
        // lower priorities and keeps its own persona.
        engine.run_adaptive(|view| {
            view.live
                .iter()
                .min_by_key(|(pid, proc, op)| {
                    let scan_pending = matches!(op, Op::SnapshotScan(_));
                    let priority = proc.persona().priority(proc.round());
                    // A process mid-pair (scan pending) must finish
                    // before its successor starts.
                    (proc.round(), !scan_pending, priority, pid.index())
                })
                .map(|(pid, _, _)| *pid)
                .expect("live processes exist")
        })
    } else {
        engine.run(RandomInterleave::new(n, split.seed("schedule", 0)))
    };
    let distinct = distinct_outputs(&report, |p| p.origin());
    (distinct <= 1, distinct)
}

/// Agreement under the oblivious random schedule versus the adaptive
/// breaker, for both conciliators.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "E20 — oblivious vs adaptive adversary (n = 64, distinct inputs)",
        &[
            "conciliator",
            "adversary",
            "trials",
            "agree rate",
            "mean distinct outputs",
        ],
    );
    let n = 64;
    let trials = default_trials(150);
    type RunFn = fn(usize, u64, bool) -> (bool, usize);
    for (name, runner) in [
        ("Alg 1 (snapshot)", snapshot_run as RunFn),
        ("Alg 2 (sifting)", sifting_run as RunFn),
    ] {
        for adaptive in [false, true] {
            let (agree, distinct) = Batch::new(
                n,
                trials,
                sift_sim::schedule::ScheduleKind::RandomInterleave,
            )
            .run_with(
                |spec| runner(n, spec.seed, adaptive),
                || (RateCounter::new(), Welford::new()),
                |(agree, distinct), (ok, d)| {
                    agree.record(ok);
                    distinct.push(d as f64);
                },
            );
            let s = distinct.summary();
            table.row(vec![
                name.to_string(),
                if adaptive {
                    "adaptive breaker"
                } else {
                    "oblivious random"
                }
                .to_string(),
                agree.total().to_string(),
                fmt_f64(agree.rate()),
                fmt_f64(s.mean),
            ]);
        }
    }
    table.note(
        "The adaptive adversary watches pending operations (readers vs writers, current \
         priorities) — exactly what §1.1 forbids — and keeps all n personae alive forever. \
         Agreement collapses to 0 and every input survives to the output, confirming that \
         the paper's speedups are specifically oblivious-adversary phenomena.",
    );
    vec![table]
}

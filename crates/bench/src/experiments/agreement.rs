//! E2/E6 — agreement probability versus ε (Theorems 1 and 2).

use sift_core::{Epsilon, SiftingConciliator, SnapshotConciliator};
use sift_sim::schedule::ScheduleKind;

use crate::exec::{Batch, Merge};
use crate::runner::default_trials;
use crate::stats::{RateCounter, Truncations};
use crate::table::{fmt_f64, Table};

/// Measures the disagreement rate of both conciliators across ε,
/// checking it stays below the budget.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "E2/E6 — disagreement rate vs ε (Theorems 1 and 2)",
        &[
            "conciliator",
            "n",
            "ε",
            "trials",
            "disagree rate",
            "bound ε",
            "within bound",
        ],
    );
    let kind = ScheduleKind::RandomInterleave;
    let epsilons = [0.5, 0.25, 0.125, 1.0 / 16.0, 1.0 / 32.0, 1.0 / 64.0];
    let mut truncations = Truncations::new();
    for &(name, n) in &[("snapshot (Alg 1)", 64usize), ("sifting (Alg 2)", 64)] {
        for &eps in &epsilons {
            let trials = default_trials(1500);
            let batch = Batch::new(n, trials, kind);
            let fold = |(rate, trunc): &mut (RateCounter, Truncations), t: crate::Trial| {
                rate.record(!t.agreed);
                trunc.record(t.stop_reason);
            };
            let (rate, trunc) = if name.starts_with("snapshot") {
                batch.run(
                    |b| SnapshotConciliator::allocate(b, n, Epsilon::new(eps).unwrap()),
                    Default::default,
                    fold,
                )
            } else {
                batch.run(
                    |b| SiftingConciliator::allocate(b, n, Epsilon::new(eps).unwrap()),
                    Default::default,
                    fold,
                )
            };
            truncations.merge(trunc);
            table.row(vec![
                name.to_string(),
                n.to_string(),
                format!("1/{}", (1.0 / eps) as u32),
                rate.total().to_string(),
                fmt_f64(rate.rate()),
                fmt_f64(eps),
                if rate.rate() <= eps { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    table.note("Measured disagreement is far below ε: the analysis is conservative (Markov).");
    if let Some(note) = truncations.note() {
        table.note(&note);
    }
    vec![table]
}

//! E2/E6 — agreement probability versus ε (Theorems 1 and 2).

use sift_core::{Epsilon, SiftingConciliator, SnapshotConciliator};
use sift_sim::schedule::ScheduleKind;

use crate::runner::{default_trials, run_trial};
use crate::stats::RateCounter;
use crate::table::{fmt_f64, Table};

/// Measures the disagreement rate of both conciliators across ε,
/// checking it stays below the budget.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "E2/E6 — disagreement rate vs ε (Theorems 1 and 2)",
        &["conciliator", "n", "ε", "trials", "disagree rate", "bound ε", "within bound"],
    );
    let kind = ScheduleKind::RandomInterleave;
    let epsilons = [0.5, 0.25, 0.125, 1.0 / 16.0, 1.0 / 32.0, 1.0 / 64.0];
    for &(name, n) in &[("snapshot (Alg 1)", 64usize), ("sifting (Alg 2)", 64)] {
        for &eps in &epsilons {
            let trials = default_trials(1500);
            let mut rate = RateCounter::new();
            for seed in 0..trials as u64 {
                let trial = if name.starts_with("snapshot") {
                    run_trial(n, seed, kind, |b| {
                        SnapshotConciliator::allocate(b, n, Epsilon::new(eps).unwrap())
                    })
                } else {
                    run_trial(n, seed, kind, |b| {
                        SiftingConciliator::allocate(b, n, Epsilon::new(eps).unwrap())
                    })
                };
                rate.record(!trial.agreed);
            }
            table.row(vec![
                name.to_string(),
                n.to_string(),
                format!("1/{}", (1.0 / eps) as u32),
                rate.total().to_string(),
                fmt_f64(rate.rate()),
                fmt_f64(eps),
                if rate.rate() <= eps { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    table.note("Measured disagreement is far below ε: the analysis is conservative (Markov).");
    vec![table]
}

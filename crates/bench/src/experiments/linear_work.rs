//! E7/E10 — Algorithm 3: linear expected total work with bounded
//! individual steps (Theorem 3), versus Algorithm 2's `Θ(n log log n)`
//! total.

use sift_core::analysis::{theorem3_expected_total_steps, theorem3_individual_steps};
use sift_core::{Conciliator, EmbeddedConciliator, Epsilon, SiftingConciliator};
use sift_sim::schedule::ScheduleKind;
use sift_sim::LayoutBuilder;

use crate::exec::Batch;
use crate::runner::default_trials;
use crate::stats::{Peak, RateCounter, Welford};
use crate::table::{fmt_f64, fmt_mean_ci, Table};

/// Measures Algorithm 3's total and individual step complexity and
/// agreement rate across `n`, next to Algorithm 2's deterministic total.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "E7/E10 — Algorithm 3 (CIL + embedded sifter) vs Algorithm 2 totals",
        &[
            "n",
            "Alg 3 total steps (mean)",
            "paper O(n) bound",
            "Alg 2 total steps (= nR)",
            "Alg 3 max individual",
            "worst-case bound",
            "agree rate",
            "paper ≥ 1/8",
        ],
    );
    let kind = ScheduleKind::RandomInterleave;
    for &n in &[16usize, 64, 256, 1024, 4096] {
        let trials = default_trials((40_000 / n).clamp(10, 200));
        let (totals, max_indiv, agree) = Batch::new(n, trials, kind).run(
            |b| EmbeddedConciliator::allocate(b, n),
            || (Welford::new(), Peak::new(), RateCounter::new()),
            |(totals, max_indiv, agree), t| {
                totals.push(t.metrics.total_steps as f64);
                max_indiv.record(t.metrics.max_individual_steps());
                agree.record(t.agreed);
            },
        );
        let max_indiv = max_indiv.get();
        let alg2_total = {
            let mut b = LayoutBuilder::new();
            let c = SiftingConciliator::allocate(&mut b, n, Epsilon::QUARTER);
            (n * c.rounds()) as u64
        };
        let bound = {
            let mut b = LayoutBuilder::new();
            EmbeddedConciliator::allocate(&mut b, n)
                .steps_bound()
                .expect("Algorithm 3 is bounded")
        };
        let s = totals.summary();
        table.row(vec![
            n.to_string(),
            fmt_mean_ci(s.mean, s.ci95),
            fmt_f64(theorem3_expected_total_steps(n as u64)),
            alg2_total.to_string(),
            max_indiv.to_string(),
            bound.to_string(),
            fmt_f64(agree.rate()),
            "0.125".to_string(),
        ]);
        assert_eq!(bound, theorem3_individual_steps(n as u64));
    }
    table.note(
        "Alg 3's total grows linearly in n while Alg 2's grows as n·log log n; individual \
         steps stay within the O(log log n) worst-case bound in every run.",
    );
    vec![table]
}

//! E8/E9 — full consensus stacks: expected individual steps, phase
//! counts, and the conciliator-vs-adopt-commit cost split (Corollaries
//! 1–3).

use sift_consensus::{
    linear_work_consensus, max_register_consensus, sifting_consensus, ConsensusOutcome,
};
use sift_core::analysis::expected_consensus_phases;
use sift_core::math::{ceil_log_log, log_star};
use sift_core::Persona;
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::RandomInterleave;
use sift_sim::{Engine, LayoutBuilder, ProcessId};

use crate::exec::Batch;
use crate::runner::default_trials;
use crate::stats::{Peak, Welford};
use crate::table::{fmt_f64, fmt_mean_ci, Table};

struct StackRun {
    mean_individual: f64,
    max_phases: usize,
    conciliator_steps: f64,
    adopt_commit_steps: f64,
}

fn run_stack<C, A>(
    layout: sift_sim::Layout,
    protocol: sift_consensus::ConsensusProtocol<C, A>,
    n: usize,
    m: u64,
    seed: u64,
) -> StackRun
where
    C: sift_core::Conciliator,
    A: sift_adopt_commit::AdoptCommit<Persona>,
{
    let split = SeedSplitter::new(seed);
    let mut input_rng = split.stream("inputs", 0);
    let inputs: Vec<u64> = (0..n).map(|_| input_rng.range_u64(m)).collect();
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            protocol.participant(ProcessId(i), inputs[i], &mut rng)
        })
        .collect();
    let report =
        Engine::new(&layout, procs).run(RandomInterleave::new(n, split.seed("schedule", 0)));
    let mean_individual = report.metrics.mean_individual_steps();
    let outcomes = report.unwrap_outputs();
    sift_consensus::check_consensus(&inputs, outcomes.iter());
    let decisions: Vec<_> = outcomes
        .into_iter()
        .map(|o| match o {
            ConsensusOutcome::Decided(d) => d,
            ConsensusOutcome::Exhausted { .. } => unreachable!("checked above"),
        })
        .collect();
    StackRun {
        mean_individual,
        max_phases: decisions.iter().map(|d| d.phases).max().unwrap_or(0),
        conciliator_steps: decisions
            .iter()
            .map(|d| d.conciliator_steps as f64)
            .sum::<f64>()
            / decisions.len() as f64,
        adopt_commit_steps: decisions
            .iter()
            .map(|d| d.adopt_commit_steps as f64)
            .sum::<f64>()
            / decisions.len() as f64,
    }
}

/// Corollary 1 and 2/3 stacks swept over `n`, plus the Corollary 2
/// crossover sweep over `m`.
pub fn run() -> Vec<Table> {
    vec![n_sweep(), m_sweep()]
}

fn n_sweep() -> Table {
    let mut table = Table::new(
        "E8 — consensus stacks: expected individual steps and phases vs n (m = 8 inputs)",
        &[
            "stack",
            "n",
            "log* n / ⌈loglog n⌉",
            "mean individual steps",
            "max phases seen",
            "paper E[phases]",
        ],
    );
    let m = 8u64;
    for &n in &[8usize, 32, 128, 512] {
        let trials = default_trials((4000 / n).clamp(8, 80));
        for stack in [
            "snapshot (Cor. 1)",
            "sifting (Cor. 2)",
            "linear-work (Cor. 3)",
        ] {
            let (indiv, phases) = Batch::new(
                n,
                trials,
                sift_sim::schedule::ScheduleKind::RandomInterleave,
            )
            .run_with(
                |spec| {
                    let mut b = LayoutBuilder::new();
                    match stack {
                        "snapshot (Cor. 1)" => {
                            let p = max_register_consensus(&mut b, n);
                            run_stack(b.build(), p, n, m, spec.seed)
                        }
                        "sifting (Cor. 2)" => {
                            let p = sifting_consensus(&mut b, n, m, 2);
                            run_stack(b.build(), p, n, m, spec.seed)
                        }
                        _ => {
                            let p = linear_work_consensus(&mut b, n, m, 2);
                            run_stack(b.build(), p, n, m, spec.seed)
                        }
                    }
                },
                || (Welford::new(), Peak::new()),
                |(indiv, phases), run| {
                    indiv.push(run.mean_individual);
                    phases.record(run.max_phases as u64);
                },
            );
            let phases = phases.get();
            let s = indiv.summary();
            let delta = match stack {
                "linear-work (Cor. 3)" => 0.125,
                _ => 0.5,
            };
            let shape = format!("{} / {}", log_star(n as u64), ceil_log_log(n as u64));
            table.row(vec![
                stack.to_string(),
                n.to_string(),
                shape,
                fmt_mean_ci(s.mean, s.ci95),
                phases.to_string(),
                format!("≤ {}", fmt_f64(expected_consensus_phases(delta))),
            ]);
        }
    }
    table.note(
        "Mean individual steps grow like the conciliator+AC cost times a constant phase \
         count — the log*/loglog shape, not any polynomial in n.",
    );
    table
}

fn m_sweep() -> Table {
    let mut table = Table::new(
        "E9 — Corollary 2 crossover: conciliator vs adopt-commit cost vs m (n = 64)",
        &[
            "m",
            "mean conciliator steps",
            "mean adopt-commit steps",
            "AC share",
            "dominant term",
        ],
    );
    let n = 64usize;
    for &m in &[2u64, 16, 256, 4096, 65_536, 1 << 24] {
        let trials = default_trials(30);
        let (conc, ac) = Batch::new(
            n,
            trials,
            sift_sim::schedule::ScheduleKind::RandomInterleave,
        )
        .run_with(
            |spec| {
                let mut b = LayoutBuilder::new();
                let p = sifting_consensus(&mut b, n, m, 2);
                run_stack(b.build(), p, n, m, spec.seed)
            },
            || (Welford::new(), Welford::new()),
            |(conc, ac), run| {
                conc.push(run.conciliator_steps);
                ac.push(run.adopt_commit_steps);
            },
        );
        let (c, a) = (conc.summary(), ac.summary());
        let share = a.mean / (a.mean + c.mean);
        table.row(vec![
            m.to_string(),
            fmt_mean_ci(c.mean, c.ci95),
            fmt_mean_ci(a.mean, a.ci95),
            fmt_f64(share),
            if share > 0.5 {
                "adopt-commit"
            } else {
                "conciliator"
            }
            .to_string(),
        ]);
    }
    table.note(
        "As m grows the adopt-commit's O(log m) cost overtakes the conciliator's \
         O(log log n) — the paper's break-even discussion after Corollary 2.",
    );
    table
}

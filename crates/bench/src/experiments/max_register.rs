//! E15 — the max-register variant of Algorithm 1 (footnote 1) at scale:
//! identical step counts and agreement behaviour with `O(1)`-cost
//! operations, swept to a million simulated processes.

use sift_core::analysis::theorem1_steps;
use sift_core::math::log_star;
use sift_core::{Epsilon, MaxConciliator};
use sift_sim::schedule::ScheduleKind;

use crate::exec::Batch;
use crate::runner::default_trials;
use crate::stats::{Last, RateCounter};
use crate::table::{fmt_f64, Table};

/// Steps and agreement for the max-register Algorithm 1 at large `n`.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "E15 — Algorithm 1 over max registers (footnote 1), ε = 1/2",
        &[
            "n",
            "log* n",
            "steps/process (measured)",
            "paper 2R",
            "trials",
            "agree rate",
        ],
    );
    let eps = Epsilon::HALF;
    for &n in &[256usize, 4096, 65_536, 1 << 20] {
        let trials = default_trials(if n >= 1 << 20 { 3 } else { 20 });
        let (agree, steps) = Batch::new(n, trials, ScheduleKind::RandomInterleave).run(
            |b| MaxConciliator::allocate(b, n, eps),
            || (RateCounter::new(), Last::new()),
            |(agree, steps), t| {
                agree.record(t.agreed);
                steps.record(t.metrics.max_individual_steps());
            },
        );
        table.row(vec![
            n.to_string(),
            log_star(n as u64).to_string(),
            steps.get().copied().unwrap_or(0).to_string(),
            theorem1_steps(n as u64, eps).to_string(),
            agree.total().to_string(),
            fmt_f64(agree.rate()),
        ]);
    }
    table.note(
        "Max registers make each round O(1) local work, so the log* n sweep reaches 2^20 \
         simulated processes; step counts match the snapshot variant exactly.",
    );
    vec![table]
}

//! E19 — §3's register-width remark: dropping the originating id
//! shrinks sifting registers from `O(log n + log m)` to
//! `O(log log n + log m)` bits, and the compact implementation behaves
//! identically.

use sift_core::compact::{register_width, CompactSiftingConciliator};
use sift_core::Epsilon;
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::RandomInterleave;
use sift_sim::{Engine, LayoutBuilder, ProcessId};

use crate::exec::Batch;
use crate::runner::default_trials;
use crate::stats::{Last, RateCounter};
use crate::table::{fmt_f64, Table};

/// Register widths across `(n, m)` plus the compact conciliator's
/// measured agreement rate.
pub fn run() -> Vec<Table> {
    let mut widths = Table::new(
        "E19a — sifting register width in bits (ε = 1/2)",
        &[
            "n",
            "m",
            "R",
            "with id: ⌈log n⌉+⌈log m⌉+R+1",
            "compact: ⌈log m⌉+R+1",
            "saved",
        ],
    );
    for &n in &[1u64 << 8, 1 << 16, 1 << 24, 1 << 40] {
        for &m in &[2u64, 256, 1 << 16] {
            let w = register_width(n, m, Epsilon::HALF);
            widths.row(vec![
                n.to_string(),
                m.to_string(),
                w.rounds.to_string(),
                w.with_id_bits.to_string(),
                w.compact_bits.to_string(),
                format!("{} bits", w.with_id_bits - w.compact_bits),
            ]);
        }
    }
    widths.note("The id contributes ⌈log n⌉ bits; everything else is O(loglog n + log m).");

    let mut behaviour = Table::new(
        "E19b — compact (id-free) sifting conciliator: agreement unchanged",
        &[
            "n",
            "m",
            "register bits",
            "trials",
            "agree rate",
            "guarantee",
        ],
    );
    for &(n, m) in &[(64usize, 4u64), (256, 16), (1024, 256)] {
        let trials = default_trials(400);
        let (agree, bits) = Batch::new(
            n,
            trials,
            sift_sim::schedule::ScheduleKind::RandomInterleave,
        )
        .run_with(
            |spec| {
                let mut b = LayoutBuilder::new();
                let c = CompactSiftingConciliator::allocate(&mut b, n, m, Epsilon::HALF);
                let bits = c.register_bits();
                let layout = b.build();
                let split = SeedSplitter::new(spec.seed);
                let procs: Vec<_> = (0..n)
                    .map(|i| {
                        let mut rng = split.stream("process", i as u64);
                        c.participant(ProcessId(i), i as u64 % m, &mut rng)
                    })
                    .collect();
                let report = Engine::new(&layout, procs)
                    .run(RandomInterleave::new(n, split.seed("schedule", 0)));
                let outs: Vec<u64> = report.unwrap_outputs();
                (outs.windows(2).all(|w| w[0] == w[1]), bits)
            },
            || (RateCounter::new(), Last::new()),
            |(agree, last), (hit, bits)| {
                agree.record(hit);
                last.record(bits);
            },
        );
        behaviour.row(vec![
            n.to_string(),
            m.to_string(),
            bits.get().copied().unwrap_or(0).to_string(),
            agree.total().to_string(),
            fmt_f64(agree.rate()),
            "≥ 0.5".to_string(),
        ]);
    }
    behaviour.note(
        "Identical coin flips can merge same-input personae early; the analysis already \
         counts such merges pessimistically, so the guarantee is unaffected.",
    );
    vec![widths, behaviour]
}

//! E14 — adopt-commit objects: safety properties and cost curves versus
//! the code-space size `m` (the `log m` shape that drives Corollaries
//! 2–3).

use sift_adopt_commit::{
    check_ac_properties, AcOutput, AdoptCommit, DigitAc, FlagsAc, GafniRegisterAc, GafniSnapshotAc,
};
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::RandomInterleave;
use sift_sim::{Engine, LayoutBuilder, ProcessId};

use crate::exec::Batch;
use crate::runner::default_trials;
use crate::stats::Peak;
use crate::table::Table;

fn run_object<A: AdoptCommit<u64>>(
    ac: &A,
    layout: &sift_sim::Layout,
    m: u64,
    n: usize,
    seed: u64,
) -> u64 {
    let split = SeedSplitter::new(seed);
    let mut rng = split.stream("proposals", 0);
    let proposals: Vec<u64> = (0..n).map(|_| rng.range_u64(m)).collect();
    let procs: Vec<_> = proposals
        .iter()
        .enumerate()
        .map(|(i, &c)| ac.proposer(ProcessId(i), c, c))
        .collect();
    let report =
        Engine::new(layout, procs).run(RandomInterleave::new(n, split.seed("schedule", 0)));
    let max = report.metrics.max_individual_steps();
    let outputs: Vec<Option<AcOutput<u64>>> = report.outputs;
    check_ac_properties(&proposals, &outputs);
    max
}

/// Worst proposer step count over a batch of property-checked runs of
/// one adopt-commit implementation.
fn worst_steps<A: AdoptCommit<u64>>(
    n: usize,
    trials: usize,
    m: u64,
    alloc: impl Fn(&mut LayoutBuilder) -> A + Sync,
) -> u64 {
    Batch::new(
        n,
        trials,
        sift_sim::schedule::ScheduleKind::RandomInterleave,
    )
    .run_with(
        |spec| {
            let mut b = LayoutBuilder::new();
            let ac = alloc(&mut b);
            let layout = b.build();
            run_object(&ac, &layout, m, n, spec.seed)
        },
        Peak::new,
        |p, steps| p.record(steps),
    )
    .get()
}

/// Cost (max proposer steps) of each adopt-commit object versus `m`,
/// with every run property-checked.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "E14 — adopt-commit cost vs code space m (n = 16 proposers, worst observed steps)",
        &[
            "m",
            "flags 2m+3",
            "digit b=2 (~6 log2 m)",
            "digit b=16",
            "Gafni snapshot (≤5)",
            "Gafni register (3n+2)",
        ],
    );
    let n = 16;
    let trials = default_trials(40);
    for &m in &[2u64, 4, 16, 64, 256, 1024, 4096, 65_536] {
        let mut cells = vec![m.to_string()];

        // Flags (skip very large m: O(m) registers).
        if m <= 4096 {
            let worst = worst_steps(n, trials, m, |b| FlagsAc::allocate(b, m as usize));
            cells.push(worst.to_string());
        } else {
            cells.push("-".to_string());
        }

        for &base in &[2u64, 16] {
            let worst = worst_steps(n, trials, m, |b| DigitAc::for_code_space(b, m, base));
            cells.push(worst.to_string());
        }

        let worst = worst_steps(n, trials, m, |b| {
            GafniSnapshotAc::<u64>::allocate(b, n, |v| *v)
        });
        cells.push(worst.to_string());

        let worst = worst_steps(n, trials, m, |b| {
            GafniRegisterAc::<u64>::allocate(b, n, |v| *v)
        });
        cells.push(worst.to_string());
        table.row(cells);
    }
    table.note(
        "Every run is checked for validity, convergence, and coherence. The digit object is \
         our stand-in for Aspnes–Ellen [9]: O(log m) vs their O(log m / log log m); the \
         Gafni objects cost O(1) snapshot ops / O(n) register ops independent of m.",
    );
    vec![table]
}

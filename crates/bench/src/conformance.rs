//! Statistical conformance suite for the paper's probability bounds.
//!
//! Every quantitative claim of the paper — Lemmas 1–4, Theorems 1–3,
//! Corollaries 1–3 — is phrased as a one-sided hypothesis test: run `N`
//! seeded trials, count the trials violating the claimed event (or
//! exceeding a Markov threshold derived from a claimed expectation), and
//! compute the Clopper–Pearson **lower** confidence bound on the true
//! violation rate at 99% confidence ([`cp_lower`]). The claim *fails*
//! only when the data excludes the paper's bound at that confidence —
//! so a passing verdict is robust to sampling noise at smoke trial
//! counts, while a genuinely broken protocol (see the `mutants` feature
//! of `sift-core`) is refuted decisively.
//!
//! Two claim shapes:
//!
//! * **Event claims** (`disagreement ≤ ε`, `steps = bound exactly`,
//!   `phase exhaustion ≤ (1-δ)^max`): count violating trials directly;
//!   fail iff `cp_lower(x, N, 1%) > bound`. Deterministic claims are
//!   the `bound = 0` special case — a single violation refutes them.
//! * **Mean claims** (`E[excess after round i] ≤ x_i`,
//!   `E[total steps] ≤ 21n`, `E[phases] ≤ 1/δ`): Markov's inequality
//!   turns the expectation bound into the event
//!   `P(X ≥ 4·bound) ≤ 1/4`, which gets the same CP treatment, plus a
//!   one-sided 99% normal-approximation check that the sample mean's
//!   *lower* confidence bound does not exceed the paper's bound (only
//!   then does the data exclude the claimed expectation).
//!
//! Trials fan out over [`map_reduce`](crate::exec::map_reduce) with
//! per-claim fixed master seeds, so the whole suite — including the
//! [`digest`] of its rendered verdicts — is byte-identical for any
//! `SIFT_THREADS`. `scale` multiplies every trial count: 1 is the CI
//! smoke tier, larger values are the nightly/heavy tier.

use sift_consensus::{
    linear_work_consensus, max_register_consensus, sifting_consensus, ConsensusOutcome,
};
use sift_core::analysis::{
    expected_consensus_phases, lemma1_expected_excess, sifting_expected_excess,
    theorem3_expected_total_steps, theorem3_individual_steps,
};
use sift_core::math::ceil_log_log;
use sift_core::{
    distinct_per_round, Conciliator, EmbeddedConciliator, Epsilon, RoundHistory,
    SiftingConciliator, SnapshotConciliator,
};
use sift_sim::adversary::AdversaryStrength;
use sift_sim::fuzz::FingerprintHasher;
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::RandomInterleave;
use sift_sim::{Engine, LayoutBuilder, ProcessId, RegisterSemantics, Resolution, StopReason};

use crate::exec::{map_reduce, Merge};
use crate::stats::{cp_lower, Welford, Z_99};
use crate::table::{fmt_f64, Table};

/// Confidence level of every test: claims fail only when excluded at
/// `1 - ALPHA` confidence.
const ALPHA: f64 = 0.01;

/// Markov's inequality at threshold `4·bound` caps the event
/// probability at 1/4.
const MARKOV_CAP: f64 = 0.25;

/// Numeric slack for comparisons against exact bounds.
const SLACK: f64 = 1e-9;

/// The verdict on one claim of the paper.
#[derive(Debug, Clone)]
pub struct ClaimResult {
    /// Short identifier, e.g. `"T2.disagreement"`.
    pub id: String,
    /// The bound being tested, in words.
    pub statement: String,
    /// Number of trials behind the verdict.
    pub trials: u64,
    /// What was measured (violation count / worst mean).
    pub observed: String,
    /// The paper's bound, rendered.
    pub bound: String,
    /// The confidence computation backing the verdict.
    pub cp: String,
    /// `true` iff the data does not exclude the bound at 99% confidence.
    pub pass: bool,
}

/// Runs the full conformance suite. `scale` multiplies every per-claim
/// trial count (1 = smoke tier).
///
/// # Panics
///
/// Panics if `scale == 0`.
pub fn run(scale: usize) -> Vec<ClaimResult> {
    assert!(scale > 0, "scale must be positive");
    let mut results = Vec::new();
    results.extend(algorithm1_claims(scale));
    results.extend(sifting_claims(scale, "", &|b: &mut LayoutBuilder| {
        SiftingConciliator::allocate(b, SIFTING_N, Epsilon::HALF)
    }));
    results.extend(theorem3_claims(scale));
    results.extend(consensus_claims(scale));
    results
}

/// Runs only the Algorithm 2 claims (Lemmas 2–4, Theorem 2) against a
/// deliberately broken sifter — the conformance half of mutation
/// testing. With [`SiftingMutation::BiasedCoin`] the disagreement and
/// decay claims must fail at smoke trial counts.
///
/// Only the `BiasedCoin` mutant is safe here: `StuckRead` can livelock
/// under an infinite schedule and is instead caught by the slot-limited
/// fuzzer (see [`crate::fuzz`]).
///
/// [`SiftingMutation::BiasedCoin`]: sift_core::SiftingMutation::BiasedCoin
#[cfg(feature = "mutants")]
pub fn run_sifting_mutant(scale: usize, mutation: sift_core::SiftingMutation) -> Vec<ClaimResult> {
    assert!(scale > 0, "scale must be positive");
    sifting_claims(scale, "mutant.", &move |b: &mut LayoutBuilder| {
        SiftingConciliator::allocate_mutant(b, SIFTING_N, Epsilon::HALF, mutation)
    })
}

/// `true` iff every claim passed.
pub fn all_pass(results: &[ClaimResult]) -> bool {
    results.iter().all(|r| r.pass)
}

/// Renders the suite as one table (the layout recorded in
/// `EXPERIMENTS.md`).
pub fn render(results: &[ClaimResult]) -> Table {
    let mut table = claims_table(
        "E22 — conformance: the paper's bounds as 99% hypothesis tests",
        results,
    );
    table.note(format!(
        "A claim fails only when the observed rate excludes the paper's bound at {:.0}% \
         confidence (one-sided Clopper–Pearson); mean claims additionally check the \
         z={Z_99} lower confidence bound of the sample mean against the paper's bound.",
        (1.0 - ALPHA) * 100.0
    ));
    table
}

/// Renders the negative tier (see [`run_negative`]) as its own table.
pub fn render_negative(results: &[ClaimResult]) -> Table {
    let mut table = claims_table(
        "E25 — negative conformance: the obliviousness boundary as expected-failure tests",
        results,
    );
    table.note(
        "NEG.*.decay cases pass when the decay bound is decisively refuted (the adaptive \
         breaker and the always-old regular substrate defeat sifting); the control rows \
         pass when the bound still holds. Both polarities run under fixed per-claim seeds.",
    );
    table
}

fn claims_table(title: &str, results: &[ClaimResult]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "claim",
            "statement",
            "N",
            "observed",
            "bound",
            "CP check",
            "verdict",
        ],
    );
    for r in results {
        table.row(vec![
            r.id.clone(),
            r.statement.clone(),
            r.trials.to_string(),
            r.observed.clone(),
            r.bound.clone(),
            r.cp.clone(),
            if r.pass { "pass" } else { "FAIL" }.to_string(),
        ]);
    }
    table
}

/// FNV digest of the rendered verdicts — the seed-stability regression
/// hook. Byte-identical across `SIFT_THREADS` for a fixed `scale`.
pub fn digest(results: &[ClaimResult]) -> u64 {
    let mut h = FingerprintHasher::new();
    for r in results {
        h.write_bytes(r.id.as_bytes());
        h.write_u64(r.trials);
        h.write_bytes(r.observed.as_bytes());
        h.write_bytes(r.bound.as_bytes());
        h.write_bytes(r.cp.as_bytes());
        h.write_u64(r.pass as u64);
    }
    h.finish()
}

/// Fixed master seed of claim group `idx` — conformance results must
/// not depend on `SIFT_SEED`, or golden digests would be meaningless.
fn claim_seed(idx: u64) -> u64 {
    SeedSplitter::new(0x5EED_C0F0).seed("claim", idx)
}

fn event_claim(id: &str, statement: &str, bound: f64, trials: u64, violations: u64) -> ClaimResult {
    let lo = cp_lower(violations, trials, ALPHA);
    ClaimResult {
        id: id.into(),
        statement: statement.into(),
        trials,
        observed: format!("{violations} violating"),
        bound: format!("≤ {}", fmt_f64(bound)),
        cp: format!("CP99 lower {}", fmt_f64(lo)),
        pass: lo <= bound + SLACK,
    }
}

fn mean_claim(id: &str, statement: &str, bound: f64, wf: &Welford, markov: u64) -> ClaimResult {
    let trials = wf.count() as u64;
    let lo = cp_lower(markov, trials, ALPHA);
    let lcb = wf.mean_lcb(Z_99);
    ClaimResult {
        id: id.into(),
        statement: statement.into(),
        trials,
        observed: format!("mean {}, {markov} ≥ 4·bound", fmt_f64(wf.mean())),
        bound: format!("E ≤ {}", fmt_f64(bound)),
        cp: format!("mean LCB {}, CP99 lower {}", fmt_f64(lcb), fmt_f64(lo)),
        pass: lo <= MARKOV_CAP + SLACK && lcb <= bound + SLACK,
    }
}

/// Per-round decay accumulator: a [`Welford`] of the excess plus a
/// Markov-event counter per round.
#[derive(Debug, Clone, Default)]
struct PerRound {
    wf: Vec<Welford>,
    markov: Vec<u64>,
}

impl PerRound {
    fn record(&mut self, survivors: &[usize], bounds: &[f64]) {
        if self.wf.len() < survivors.len() {
            self.wf.resize_with(survivors.len(), Welford::new);
            self.markov.resize(survivors.len(), 0);
        }
        for (i, &s) in survivors.iter().enumerate() {
            let excess = s.saturating_sub(1) as f64;
            self.wf[i].push(excess);
            // Markov threshold 4·bound; any positive threshold is valid.
            if excess >= 4.0 * bounds[i] {
                self.markov[i] += 1;
            }
        }
    }
}

impl Merge for PerRound {
    fn merge(&mut self, other: Self) {
        if self.wf.len() < other.wf.len() {
            self.wf.resize_with(other.wf.len(), Welford::new);
            self.markov.resize(other.markov.len(), 0);
        }
        for (a, b) in self.wf.iter_mut().zip(other.wf) {
            a.merge(b);
        }
        for (a, b) in self.markov.iter_mut().zip(other.markov) {
            *a += b;
        }
    }
}

/// Collapses a round range of a [`PerRound`] into one claim: every
/// round must pass its own mean + Markov test; the reported figures are
/// the worst round's (largest mean-to-bound ratio).
fn decay_claim(
    id: &str,
    statement: &str,
    per_round: &PerRound,
    bounds: &[f64],
    rounds: std::ops::Range<usize>,
) -> ClaimResult {
    let mut pass = true;
    let mut worst: Option<(usize, f64)> = None;
    for i in rounds {
        if i >= per_round.wf.len() {
            break;
        }
        let wf = &per_round.wf[i];
        let trials = wf.count() as u64;
        let lo = cp_lower(per_round.markov[i], trials, ALPHA);
        let lcb = wf.mean_lcb(Z_99);
        if lo > MARKOV_CAP + SLACK || lcb > bounds[i] + SLACK {
            pass = false;
        }
        let ratio = if bounds[i] > 0.0 {
            wf.mean() / bounds[i]
        } else {
            f64::INFINITY
        };
        if worst.is_none_or(|(_, w)| ratio > w) {
            worst = Some((i, ratio));
        }
    }
    let (round, _) = worst.expect("decay claim needs at least one round");
    let wf = &per_round.wf[round];
    ClaimResult {
        id: id.into(),
        statement: statement.into(),
        trials: wf.count() as u64,
        observed: format!(
            "worst round {}: mean {}, {} ≥ 4·bound",
            round + 1,
            fmt_f64(wf.mean()),
            per_round.markov[round]
        ),
        bound: format!("E ≤ {}", fmt_f64(bounds[round])),
        cp: format!(
            "mean LCB {}, CP99 lower {}",
            fmt_f64(wf.mean_lcb(Z_99)),
            fmt_f64(cp_lower(per_round.markov[round], wf.count() as u64, ALPHA))
        ),
        pass,
    }
}

// ---------------------------------------------------------------------
// Claim group A: Algorithm 1 (Lemma 1, Theorem 1).
// ---------------------------------------------------------------------

const ALG1_N: usize = 128;
const ALG1_TRIALS: usize = 60;

fn algorithm1_claims(scale: usize) -> Vec<ClaimResult> {
    let n = ALG1_N;
    let eps = Epsilon::HALF;
    let trials = ALG1_TRIALS * scale;
    let master = claim_seed(1);

    let mut b = LayoutBuilder::new();
    let probe = SnapshotConciliator::allocate(&mut b, n, eps);
    let steps_bound = probe.steps_bound().expect("Algorithm 1 is bounded");
    let rounds = (steps_bound / 2) as usize;
    let bounds: Vec<f64> = (1..=rounds)
        .map(|i| lemma1_expected_excess(n as u64, i as u32))
        .collect();

    let (per_round, step_violations, disagreements) = map_reduce(
        trials,
        |index| {
            let seed = crate::exec::trial_seed(master, index);
            conciliator_trial(n, seed, |b| SnapshotConciliator::allocate(b, n, eps))
        },
        || (PerRound::default(), 0u64, 0u64),
        |(per_round, steps, disagree), t| {
            per_round.record(&t.survivors, &bounds);
            *steps += u64::from(t.ops.iter().any(|&o| o != steps_bound));
            *disagree += u64::from(!t.agreed);
        },
    );

    vec![
        decay_claim(
            "L1.decay",
            &format!("Alg 1 mean excess after round i ≤ f^(i)(n-1), n={n}"),
            &per_round,
            &bounds,
            0..rounds,
        ),
        event_claim(
            "T1.steps",
            &format!("Alg 1 takes exactly 2R = {steps_bound} ops per process"),
            0.0,
            trials as u64,
            step_violations,
        ),
        event_claim(
            "T1.disagreement",
            &format!("Alg 1 disagreement ≤ ε = {eps}, n={n}"),
            eps.get(),
            trials as u64,
            disagreements,
        ),
    ]
}

// ---------------------------------------------------------------------
// Claim group B: Algorithm 2 (Lemmas 2–4, Theorem 2). Shared with the
// mutant entry point, so trials are slot-limited (a broken sifter may
// livelock where the correct one terminates).
// ---------------------------------------------------------------------

const SIFTING_N: usize = 128;
const SIFTING_TRIALS: usize = 60;

fn sifting_claims(
    scale: usize,
    prefix: &str,
    build: &(impl Fn(&mut LayoutBuilder) -> SiftingConciliator + Sync),
) -> Vec<ClaimResult> {
    let n = SIFTING_N;
    let trials = SIFTING_TRIALS * scale;
    let master = claim_seed(2);

    let mut b = LayoutBuilder::new();
    let probe = build(&mut b);
    let steps_bound = probe.steps_bound().expect("Algorithm 2 is bounded");
    let rounds = probe.rounds();
    let aggressive = ceil_log_log(n as u64) as usize;
    let bounds: Vec<f64> = (1..=rounds)
        .map(|i| sifting_expected_excess(n as u64, i as u32))
        .collect();

    let (per_round, step_violations, disagreements) = map_reduce(
        trials,
        |index| {
            let seed = crate::exec::trial_seed(master, index);
            conciliator_trial(n, seed, build)
        },
        || (PerRound::default(), 0u64, 0u64),
        |(per_round, steps, disagree), t| {
            per_round.record(&t.survivors, &bounds);
            // Truncated runs (possible only for livelocking mutants
            // under the generous slot limit) count as violating both
            // the step and the agreement claims.
            let truncated = t.stop_reason != StopReason::AllDone;
            *steps += u64::from(truncated || t.ops.iter().any(|&o| o != steps_bound));
            *disagree += u64::from(!t.agreed);
        },
    );

    let eps = Epsilon::HALF;
    vec![
        decay_claim(
            &format!("{prefix}L2-3.decay"),
            &format!("Alg 2 mean excess in rounds 1..⌈loglog n⌉ ≤ x_i, n={n}"),
            &per_round,
            &bounds,
            0..aggressive.min(rounds),
        ),
        decay_claim(
            &format!("{prefix}L4.tail"),
            "Alg 2 tail excess decays as 8·(3/4)^j past the switch",
            &per_round,
            &bounds,
            aggressive.min(rounds)..rounds,
        ),
        event_claim(
            &format!("{prefix}T2.steps"),
            &format!("Alg 2 takes exactly R = {steps_bound} ops per process"),
            0.0,
            trials as u64,
            step_violations,
        ),
        event_claim(
            &format!("{prefix}T2.disagreement"),
            &format!("Alg 2 disagreement ≤ ε = {eps}, n={n}"),
            eps.get(),
            trials as u64,
            disagreements,
        ),
    ]
}

/// A slot-limited conciliator trial under the oblivious
/// [`RandomInterleave`] adversary, with round history.
struct ConciliatorTrial {
    agreed: bool,
    ops: Vec<u64>,
    survivors: Vec<usize>,
    stop_reason: StopReason,
}

fn conciliator_trial<C>(
    n: usize,
    seed: u64,
    build: impl Fn(&mut LayoutBuilder) -> C,
) -> ConciliatorTrial
where
    C: Conciliator,
    C::Participant: RoundHistory,
{
    let mut builder = LayoutBuilder::new();
    let conciliator = build(&mut builder);
    let layout = builder.build();
    let split = SeedSplitter::new(seed);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            conciliator.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let mut engine = Engine::new(&layout, procs);
    // Generous but finite: a livelocking mutant must terminate the
    // trial instead of hanging the suite. 16× the per-process bound
    // (or 64 slots each, whichever is larger) in total.
    let per_proc = conciliator.steps_bound().unwrap_or(64).max(64);
    engine.limit_slots(16 * per_proc * n as u64);
    let report = engine.run(RandomInterleave::new(n, split.seed("schedule", 0)));
    let survivors = distinct_per_round(report.processes.iter().map(|p| p.history()));
    let agreed = report.all_decided() && report.outputs_agree();
    ConciliatorTrial {
        agreed,
        ops: report.metrics.per_process_ops.clone(),
        survivors,
        stop_reason: report.stop_reason,
    }
}

// ---------------------------------------------------------------------
// Negative tier: the obliviousness boundary as expected-failure tests.
// ---------------------------------------------------------------------

/// Runs the negative conformance tier: the sifting decay claim (Lemmas
/// 2–3) re-tested *outside* the model it is proved in. Each case pins
/// an environment — an adversary-lattice point × a register substrate —
/// and an expected polarity: under the oblivious adversary on atomic
/// (or always-new regular, which is observationally atomic) registers
/// the bound must hold, while the adaptive sifting breaker and the
/// always-old regular substrate must *refute* it at 99% confidence
/// (`cp_lower` excludes the Markov cap, or the sample-mean LCB exceeds
/// the bound). A case passes when the inner verdict matches its
/// expected polarity, so the suite pins the obliviousness boundary from
/// both sides: the paper's model still conforms, and the known breakers
/// are decisively detected rather than silently absorbed.
///
/// Seeds are fixed per case (independent of `SIFT_SEED`), making the
/// verdicts — and [`digest`] over them — golden-stable.
///
/// # Panics
///
/// Panics if `scale == 0`.
pub fn run_negative(scale: usize) -> Vec<ClaimResult> {
    assert!(scale > 0, "scale must be positive");
    let cases: [(&str, AdversaryStrength, RegisterSemantics, bool); 4] = [
        (
            "NEG.oblivious.control",
            AdversaryStrength::Oblivious,
            RegisterSemantics::Atomic,
            true,
        ),
        (
            "NEG.alwaysnew.control",
            AdversaryStrength::Oblivious,
            RegisterSemantics::Regular(Resolution::AlwaysNew),
            true,
        ),
        (
            "NEG.adaptive.decay",
            AdversaryStrength::Adaptive,
            RegisterSemantics::Atomic,
            false,
        ),
        (
            "NEG.regular.decay",
            AdversaryStrength::Oblivious,
            RegisterSemantics::Regular(Resolution::AlwaysOld),
            false,
        ),
    ];
    cases
        .into_iter()
        .enumerate()
        .map(|(idx, (id, strength, semantics, expect_hold))| {
            negative_decay_case(scale, 10 + idx as u64, id, strength, semantics, expect_hold)
        })
        .collect()
}

fn substrate_name(semantics: RegisterSemantics) -> &'static str {
    match semantics {
        RegisterSemantics::Atomic => "atomic",
        RegisterSemantics::Regular(Resolution::AlwaysNew) => "regular/new",
        RegisterSemantics::Regular(Resolution::AlwaysOld) => "regular/old",
        RegisterSemantics::Regular(Resolution::Coin(_)) => "regular/coin",
    }
}

fn negative_decay_case(
    scale: usize,
    seed_idx: u64,
    id: &str,
    strength: AdversaryStrength,
    semantics: RegisterSemantics,
    expect_hold: bool,
) -> ClaimResult {
    let n = SIFTING_N;
    let trials = SIFTING_TRIALS * scale;
    let master = claim_seed(seed_idx);

    let mut b = LayoutBuilder::new();
    let probe = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
    let rounds = probe.rounds();
    let aggressive = ceil_log_log(n as u64) as usize;
    let bounds: Vec<f64> = (1..=rounds)
        .map(|i| sifting_expected_excess(n as u64, i as u32))
        .collect();

    let per_round = map_reduce(
        trials,
        |index| {
            let seed = crate::exec::trial_seed(master, index);
            environment_trial(n, seed, strength, semantics)
        },
        PerRound::default,
        |per_round, survivors| per_round.record(&survivors, &bounds),
    );

    let statement = format!(
        "Alg 2 aggressive decay under the {} adversary on {} registers",
        strength.name(),
        substrate_name(semantics)
    );
    let inner = decay_claim(
        id,
        &statement,
        &per_round,
        &bounds,
        0..aggressive.min(rounds),
    );
    ClaimResult {
        cp: format!(
            "{}; decay {}, expected to {}",
            inner.cp,
            if inner.pass { "holds" } else { "refuted" },
            if expect_hold { "hold" } else { "be refuted" },
        ),
        pass: inner.pass == expect_hold,
        ..inner
    }
}

/// A sifting trial under an explicit environment: the given register
/// semantics plus an adversary-lattice point — oblivious runs the fixed
/// [`RandomInterleave`] schedule, stronger points the `k`-stale sifting
/// breaker ([`crate::runner::run_sifting_breaker`]). Returns the
/// per-round survivor counts.
fn environment_trial(
    n: usize,
    seed: u64,
    strength: AdversaryStrength,
    semantics: RegisterSemantics,
) -> Vec<usize> {
    let mut builder = LayoutBuilder::new();
    let conciliator = SiftingConciliator::allocate(&mut builder, n, Epsilon::HALF);
    let layout = builder.build();
    let split = SeedSplitter::new(seed);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            conciliator.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let mut engine = Engine::new(&layout, procs);
    let per_proc = conciliator.steps_bound().unwrap_or(64).max(64);
    engine.limit_slots(16 * per_proc * n as u64);
    engine.set_register_semantics(semantics);
    let report = match strength.delay() {
        None => engine.run(RandomInterleave::new(n, split.seed("schedule", 0))),
        Some(delay) => crate::runner::run_sifting_breaker(engine, delay),
    };
    distinct_per_round(report.processes.iter().map(|p| p.history()))
}

// ---------------------------------------------------------------------
// Claim group C: Algorithm 3 (Theorem 3).
// ---------------------------------------------------------------------

const ALG3_N: usize = 64;
const ALG3_TRIALS: usize = 100;

fn theorem3_claims(scale: usize) -> Vec<ClaimResult> {
    let n = ALG3_N;
    let trials = ALG3_TRIALS * scale;
    let master = claim_seed(3);
    let indiv_bound = theorem3_individual_steps(n as u64);
    let total_bound = theorem3_expected_total_steps(n as u64);

    let (total_wf, total_markov, indiv_violations, disagreements) = map_reduce(
        trials,
        |index| {
            let seed = crate::exec::trial_seed(master, index);
            let mut b = LayoutBuilder::new();
            let c = EmbeddedConciliator::allocate(&mut b, n);
            let layout = b.build();
            let split = SeedSplitter::new(seed);
            let procs: Vec<_> = (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), i as u64, &mut rng)
                })
                .collect();
            let report = Engine::new(&layout, procs)
                .run(RandomInterleave::new(n, split.seed("schedule", 0)));
            let agreed = report.all_decided() && report.outputs_agree();
            let max_indiv = report.metrics.per_process_ops.iter().copied().max();
            (report.metrics.total_ops, max_indiv.unwrap_or(0), agreed)
        },
        || (Welford::new(), 0u64, 0u64, 0u64),
        |(wf, markov, indiv, disagree), (total, max_indiv, agreed)| {
            wf.push(total as f64);
            *markov += u64::from(total as f64 >= 4.0 * total_bound);
            *indiv += u64::from(max_indiv > indiv_bound);
            *disagree += u64::from(!agreed);
        },
    );

    vec![
        event_claim(
            "T3.individual",
            &format!("Alg 3 individual ops ≤ {indiv_bound} = 2(R'+1)+9, n={n}"),
            0.0,
            trials as u64,
            indiv_violations,
        ),
        event_claim(
            "T3.failure",
            &format!("Alg 3 disagreement ≤ 7/8, n={n}"),
            7.0 / 8.0,
            trials as u64,
            disagreements,
        ),
        mean_claim(
            "T3.total",
            &format!("Alg 3 expected total ops ≤ 21n = {}", total_bound as u64),
            total_bound,
            &total_wf,
            total_markov,
        ),
    ]
}

// ---------------------------------------------------------------------
// Claim groups D–F: the consensus stacks (Corollaries 1–3).
// ---------------------------------------------------------------------

const CONSENSUS_N: usize = 16;
const CONSENSUS_M: u64 = 4;
const CONSENSUS_TRIALS: usize = 60;

struct StackTrial {
    consistent: bool,
    exhausted: bool,
    phases_p0: u64,
}

fn consensus_trial<C, A>(
    layout: sift_sim::Layout,
    protocol: sift_consensus::ConsensusProtocol<C, A>,
    n: usize,
    m: u64,
    seed: u64,
) -> StackTrial
where
    C: Conciliator,
    A: sift_adopt_commit::AdoptCommit<sift_core::Persona>,
{
    let split = SeedSplitter::new(seed);
    let mut input_rng = split.stream("inputs", 0);
    let inputs: Vec<u64> = (0..n).map(|_| input_rng.range_u64(m)).collect();
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            protocol.participant(ProcessId(i), inputs[i], &mut rng)
        })
        .collect();
    let report =
        Engine::new(&layout, procs).run(RandomInterleave::new(n, split.seed("schedule", 0)));
    let outcomes = report.unwrap_outputs();
    let exhausted = outcomes
        .iter()
        .any(|o| matches!(o, ConsensusOutcome::Exhausted { .. }));
    let decided: Vec<u64> = outcomes.iter().filter_map(|o| o.value()).collect();
    let consistent =
        decided.windows(2).all(|w| w[0] == w[1]) && decided.iter().all(|v| inputs.contains(v));
    let phases_p0 = match &outcomes[0] {
        ConsensusOutcome::Decided(d) => d.phases as u64,
        ConsensusOutcome::Exhausted { .. } => u64::MAX,
    };
    StackTrial {
        consistent,
        exhausted,
        phases_p0,
    }
}

fn consensus_claims(scale: usize) -> Vec<ClaimResult> {
    let n = CONSENSUS_N;
    let m = CONSENSUS_M;
    let trials = CONSENSUS_TRIALS * scale;
    let mut results = Vec::new();

    for (idx, name, delta) in [(4u64, "Cor1", 0.5), (5, "Cor2", 0.5), (6, "Cor3", 0.125)] {
        let master = claim_seed(idx);
        let phase_bound = expected_consensus_phases(delta);
        let exhaustion_bound = {
            // Probe the stack for its exhaustion probability.
            let mut b = LayoutBuilder::new();
            match name {
                "Cor1" => max_register_consensus(&mut b, n).exhaustion_probability(),
                "Cor2" => sifting_consensus(&mut b, n, m, 2).exhaustion_probability(),
                _ => linear_work_consensus(&mut b, n, m, 2).exhaustion_probability(),
            }
        };

        let (phase_wf, phase_markov, inconsistent, exhausted) = map_reduce(
            trials,
            |index| {
                let seed = crate::exec::trial_seed(master, index);
                let mut b = LayoutBuilder::new();
                match name {
                    "Cor1" => {
                        let p = max_register_consensus(&mut b, n);
                        consensus_trial(b.build(), p, n, m, seed)
                    }
                    "Cor2" => {
                        let p = sifting_consensus(&mut b, n, m, 2);
                        consensus_trial(b.build(), p, n, m, seed)
                    }
                    _ => {
                        let p = linear_work_consensus(&mut b, n, m, 2);
                        consensus_trial(b.build(), p, n, m, seed)
                    }
                }
            },
            || (Welford::new(), 0u64, 0u64, 0u64),
            |(wf, markov, inconsistent, exhausted), t| {
                if t.phases_p0 != u64::MAX {
                    wf.push(t.phases_p0 as f64);
                    *markov += u64::from(t.phases_p0 as f64 >= 4.0 * phase_bound);
                }
                *inconsistent += u64::from(!t.consistent);
                *exhausted += u64::from(t.exhausted);
            },
        );

        results.push(event_claim(
            &format!("{name}.agreement"),
            &format!("{name} stack: agreement + validity absolute, n={n}"),
            0.0,
            trials as u64,
            inconsistent,
        ));
        results.push(event_claim(
            &format!("{name}.exhaustion"),
            &format!("{name} stack: phase exhaustion ≤ (1-δ)^max_phases"),
            exhaustion_bound,
            trials as u64,
            exhausted,
        ));
        results.push(mean_claim(
            &format!("{name}.phases"),
            &format!("{name} stack: E[phases] ≤ 1/δ = {}", fmt_f64(phase_bound)),
            phase_bound,
            &phase_wf,
            phase_markov,
        ));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_claim_passes_within_and_fails_beyond_the_bound() {
        // 5/100 with bound 1/4: CP99 lower on 0.05 is far below 0.25.
        assert!(event_claim("x", "s", 0.25, 100, 5).pass);
        // 60/100 with bound 1/4: excluded decisively.
        assert!(!event_claim("x", "s", 0.25, 100, 60).pass);
        // Deterministic claim: one violation refutes it.
        assert!(event_claim("x", "s", 0.0, 100, 0).pass);
        assert!(!event_claim("x", "s", 0.0, 100, 1).pass);
    }

    #[test]
    fn mean_claim_uses_both_the_markov_and_the_ucb_test() {
        let mut tight = Welford::new();
        for _ in 0..50 {
            tight.push(1.0);
        }
        // Mean 1 with bound 10, no Markov events: passes.
        assert!(mean_claim("x", "s", 10.0, &tight, 0).pass);
        // Same sample with bound 0.5: the mean-LCB test refutes it
        // (a constant sample's LCB is its mean).
        assert!(!mean_claim("x", "s", 0.5, &tight, 0).pass);
        // Markov events on most trials: the CP test refutes it.
        assert!(!mean_claim("x", "s", 10.0, &tight, 40).pass);
    }

    #[test]
    fn per_round_merge_matches_serial_fold() {
        let bounds = [4.0, 2.0, 1.0];
        let trials: Vec<Vec<usize>> = (0..20)
            .map(|i| vec![1 + (i % 5), 1 + (i % 3), 1 + (i % 2)])
            .collect();
        let mut serial = PerRound::default();
        for t in &trials {
            serial.record(t, &bounds);
        }
        let mut left = PerRound::default();
        let mut right = PerRound::default();
        for t in &trials[..7] {
            left.record(t, &bounds);
        }
        for t in &trials[7..] {
            right.record(t, &bounds);
        }
        left.merge(right);
        assert_eq!(serial.markov, left.markov);
        for (a, b) in serial.wf.iter().zip(&left.wf) {
            assert_eq!(a.count(), b.count());
            assert!((a.mean() - b.mean()).abs() < 1e-12);
        }
    }

    #[test]
    fn digest_is_sensitive_to_every_field() {
        let base = vec![event_claim("a", "s", 0.5, 10, 1)];
        let mut other = base.clone();
        other[0].observed = "2 violating".into();
        assert_ne!(digest(&base), digest(&other));
        assert_eq!(digest(&base), digest(&base.clone()));
    }

    #[test]
    fn smoke_suite_passes_on_the_unmodified_protocols() {
        let _guard = crate::exec::override_lock();
        crate::exec::set_threads(0);
        let results = run(1);
        // Every claim of the paper appears exactly once.
        let ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
        for expect in [
            "L1.decay",
            "T1.steps",
            "T1.disagreement",
            "L2-3.decay",
            "L4.tail",
            "T2.steps",
            "T2.disagreement",
            "T3.individual",
            "T3.failure",
            "T3.total",
            "Cor1.agreement",
            "Cor1.exhaustion",
            "Cor1.phases",
            "Cor2.agreement",
            "Cor2.exhaustion",
            "Cor2.phases",
            "Cor3.agreement",
            "Cor3.exhaustion",
            "Cor3.phases",
        ] {
            assert!(ids.contains(&expect), "missing claim {expect}");
        }
        for r in &results {
            assert!(r.pass, "claim {} failed: {:?}", r.id, r);
        }
        let table = render(&results);
        assert_eq!(table.row_count(), results.len());
    }
}

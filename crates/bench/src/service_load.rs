//! Load generator for the consensus service (E23).
//!
//! Drives a [`Service`] with a Zipf-skewed multi-instance workload:
//! a *warm sweep* first touches every instance once (so the run decides
//! the full instance space), then the remaining proposals sample
//! instances from a Zipf(θ) popularity distribution — a handful of hot
//! instances absorb most of the traffic, exactly the shape that makes
//! the decided-fact fast path and per-instance batching matter.
//!
//! Two client models:
//!
//! * **closed loop** — each client thread waits for one proposal's
//!   commit fact before issuing the next (latency-coupled, like RPC
//!   callers);
//! * **open loop** — clients fire proposals without waiting, draining
//!   completions in chunks (arrival-rate-coupled, like a queue fed by
//!   the outside world).
//!
//! The result folds the service's own per-shard observations together
//! with `load.*` counters (throughput, elapsed, client model) into one
//! [`ObsReport`], which `exp_service` renders and writes as
//! `BENCH_service.json` (see `just bench-json`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use sift_obs::ObsReport;
use sift_service::runtime::block_on;
use sift_service::{InstanceId, ProposeFuture, Service, ServiceConfig, ShardConfig};
use sift_sim::rng::{SeedSplitter, Xoshiro256StarStar};

/// Client model: see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Fire-and-drain: proposals are issued without waiting, completions
    /// drained in chunks.
    Open,
    /// One-at-a-time per client: each proposal waits for its fact.
    Closed,
}

impl LoadMode {
    /// Parses `"open"` / `"closed"` (ASCII case-insensitive).
    pub fn parse(s: &str) -> Option<LoadMode> {
        if s.eq_ignore_ascii_case("open") {
            Some(LoadMode::Open)
        } else if s.eq_ignore_ascii_case("closed") {
            Some(LoadMode::Closed)
        } else {
            None
        }
    }
}

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total proposals to issue across all clients.
    pub proposals: u64,
    /// Instance-id space (the warm sweep touches each id once).
    pub instances: u64,
    /// Proposal values are uniform in `0..values`.
    pub values: u64,
    /// Shards in the service.
    pub shards: usize,
    /// Shard worker threads.
    pub workers: usize,
    /// Client threads.
    pub clients: usize,
    /// Zipf skew θ (0 = uniform; ~0.99 = classic web-cache skew).
    pub zipf_theta: f64,
    /// Client model.
    pub mode: LoadMode,
    /// Workload seed (shapes the sampled instance/value stream only).
    pub seed: u64,
    /// Per-shard decided-fact retention (see
    /// [`ShardConfig::capacity`]).
    pub capacity: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            proposals: 1_000_000,
            instances: 100_000,
            values: 16,
            shards: 16,
            workers: 4,
            clients: 8,
            zipf_theta: 0.99,
            mode: LoadMode::Closed,
            seed: 0,
            capacity: usize::MAX,
        }
    }
}

/// Result of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The service's merged per-shard observations plus `load.*` keys.
    pub obs: ObsReport,
    /// Wall-clock duration of the proposal phase.
    pub elapsed: Duration,
    /// Proposals issued.
    pub proposals: u64,
    /// Instances decided (each exactly once).
    pub decided: u64,
    /// Proposals rejected (evictions racing the workload; zero with
    /// unbounded capacity).
    pub rejected: u64,
}

impl LoadReport {
    /// Proposals per second.
    pub fn throughput(&self) -> f64 {
        self.proposals as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Zipf(θ) sampler over ranks `0..n` via inverse CDF on a precomputed
/// cumulative table (deterministic given the caller's RNG).
#[derive(Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the table for `n` ranks with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(theta >= 0.0 && theta.is_finite(), "bad zipf theta {theta}");
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Self { cumulative }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        let u = rng.unit_f64();
        self.cumulative.partition_point(|&c| c < u) as u64
    }
}

/// Runs one load experiment. See the module docs for the workload
/// shape; the returned report carries throughput, per-shard latency
/// histograms, and table counters.
///
/// # Panics
///
/// Panics if a client thread panics or the configuration is degenerate
/// (zero proposals, clients, shards, or workers).
pub fn run_load(config: &LoadConfig) -> LoadReport {
    assert!(config.proposals > 0, "need at least one proposal");
    assert!(config.clients > 0, "need at least one client");
    let service = Arc::new(Service::start(ServiceConfig {
        shards: config.shards,
        workers: config.workers,
        shard: ShardConfig {
            seed: config.seed,
            capacity: config.capacity,
            // Load batches are mostly singletons or near-unanimous;
            // start small and let exhausted attempts escalate.
            base_phases: 2,
            ..ShardConfig::default()
        },
    }));
    let zipf = Arc::new(Zipf::new(config.instances, config.zipf_theta));
    let split = SeedSplitter::new(config.seed);

    let started = Instant::now();
    let clients: Vec<_> = (0..config.clients)
        .map(|client| {
            let service = Arc::clone(&service);
            let zipf = Arc::clone(&zipf);
            let config = config.clone();
            let mut rng = split.stream("load-client", client as u64);
            std::thread::Builder::new()
                .name(format!("sift-load-{client}"))
                .spawn(move || {
                    // Client c owns global proposal positions
                    // c, c + clients, c + 2·clients, …
                    let mut rejected = 0u64;
                    let mut drain = Drain::new(config.mode);
                    let mut position = client as u64;
                    while position < config.proposals {
                        let instance = if position < config.instances {
                            // Warm sweep: positions 0..instances touch
                            // each instance exactly once.
                            InstanceId(position)
                        } else {
                            InstanceId(zipf.sample(&mut rng))
                        };
                        let value = rng.range_u64(config.values);
                        rejected += drain.issue(service.propose(instance, value));
                        position += config.clients as u64;
                    }
                    rejected + drain.finish()
                })
                .expect("spawn load client")
        })
        .collect();
    let rejected: u64 = clients
        .into_iter()
        .map(|c| c.join().expect("load client panicked"))
        .sum();
    let elapsed = started.elapsed();

    let service = Arc::try_unwrap(service)
        .ok()
        .expect("all clients joined, so no clone outlives us");
    let stats = service.stats();
    let mut obs = service.shutdown();
    let decided = obs.count("service.decided");
    debug_assert_eq!(stats.decided as u64 + stats.evicted as u64, decided);

    obs.add_count("load.proposals", config.proposals);
    obs.add_count("load.instances", config.instances);
    obs.add_count("load.decided", decided);
    obs.add_count("load.rejected", rejected);
    obs.add_count("load.elapsed_ns", elapsed.as_nanos() as u64);
    obs.add_count(
        "load.throughput_per_sec",
        (config.proposals as f64 / elapsed.as_secs_f64().max(1e-9)) as u64,
    );
    obs.add_count("load.clients", config.clients as u64);
    obs.add_count("load.shards", config.shards as u64);
    obs.add_count("load.workers", config.workers as u64);
    obs.add_count(
        "load.mode_closed",
        matches!(config.mode, LoadMode::Closed) as u64,
    );
    obs.add_count("load.zipf_theta_milli", (config.zipf_theta * 1000.0) as u64);
    LoadReport {
        obs,
        elapsed,
        proposals: config.proposals,
        decided,
        rejected,
    }
}

/// Per-client completion handling: closed loop waits inline; open loop
/// buffers futures and drains them in chunks.
enum Drain {
    Closed,
    Open { buffer: Vec<ProposeFuture> },
}

impl Drain {
    const CHUNK: usize = 4096;

    fn new(mode: LoadMode) -> Self {
        match mode {
            LoadMode::Closed => Drain::Closed,
            LoadMode::Open => Drain::Open { buffer: Vec::new() },
        }
    }

    /// Issues one proposal; returns how many rejections surfaced.
    fn issue(&mut self, future: ProposeFuture) -> u64 {
        match self {
            Drain::Closed => block_on(future).is_err() as u64,
            Drain::Open { buffer } => {
                buffer.push(future);
                if buffer.len() >= Self::CHUNK {
                    Self::drain(buffer)
                } else {
                    0
                }
            }
        }
    }

    fn finish(self) -> u64 {
        match self {
            Drain::Closed => 0,
            Drain::Open { mut buffer } => Self::drain(&mut buffer),
        }
    }

    fn drain(buffer: &mut Vec<ProposeFuture>) -> u64 {
        buffer.drain(..).map(|f| block_on(f).is_err() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mode: LoadMode) -> LoadConfig {
        LoadConfig {
            proposals: 2_000,
            instances: 200,
            values: 4,
            shards: 4,
            workers: 2,
            clients: 4,
            mode,
            ..LoadConfig::default()
        }
    }

    #[test]
    fn closed_loop_decides_the_full_instance_space() {
        let report = run_load(&tiny(LoadMode::Closed));
        assert_eq!(report.decided, 200, "warm sweep must decide every instance");
        assert_eq!(report.rejected, 0);
        assert_eq!(report.obs.count("service.proposals"), 2_000);
        assert!(report.obs.hist("service.latency_ns").is_some());
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn open_loop_matches_on_totals() {
        let report = run_load(&tiny(LoadMode::Open));
        assert_eq!(report.decided, 200);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.obs.count("load.mode_closed"), 0);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let zipf = Zipf::new(1000, 0.99);
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut head = 0u64;
        let draws = 10_000;
        for _ in 0..draws {
            let rank = zipf.sample(&mut rng);
            assert!(rank < 1000);
            if rank < 10 {
                head += 1;
            }
        }
        // With θ = 0.99 the top-10 ranks carry roughly 40% of the mass;
        // uniform would give 1%.
        assert!(head > draws / 5, "zipf head too light: {head}/{draws}");
    }

    #[test]
    fn mode_parses() {
        assert_eq!(LoadMode::parse("open"), Some(LoadMode::Open));
        assert_eq!(LoadMode::parse("CLOSED"), Some(LoadMode::Closed));
        assert_eq!(LoadMode::parse("bogus"), None);
    }
}

//! Experiment binary: prints the `test_and_set` tables (see DESIGN.md index).
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::test_and_set::run() {
        t.print();
    }
    sift_bench::cli::finish();
}

//! Experiment binary: prints the `agreement` tables (see DESIGN.md index).
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::agreement::run() {
        t.print();
    }
    sift_bench::cli::finish();
}

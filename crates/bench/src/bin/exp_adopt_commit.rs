//! Experiment binary: prints the `adopt_commit` tables (see DESIGN.md index).
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::adopt_commit::run() {
        t.print();
    }
    sift_bench::cli::finish();
}

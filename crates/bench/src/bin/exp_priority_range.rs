//! Experiment binary: prints the `priority_range` tables (see DESIGN.md index).
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::priority_range::run() {
        t.print();
    }
    sift_bench::cli::finish();
}

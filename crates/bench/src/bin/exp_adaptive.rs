//! Experiment binary: prints the `adaptive` tables (see DESIGN.md index).
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::adaptive::run() {
        t.print();
    }
    sift_bench::cli::finish();
}

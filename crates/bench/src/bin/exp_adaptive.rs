//! Experiment binary: prints the `adaptive` tables (see DESIGN.md index).
fn main() {
    for t in sift_bench::experiments::adaptive::run() {
        t.print();
    }
}

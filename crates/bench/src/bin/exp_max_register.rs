//! Experiment binary: prints the `max_register` tables (see DESIGN.md index).
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::max_register::run() {
        t.print();
    }
    sift_bench::cli::finish();
}

//! Experiment binary: prints the `steps` tables (see DESIGN.md index).
fn main() {
    for t in sift_bench::experiments::steps::run() {
        t.print();
    }
}

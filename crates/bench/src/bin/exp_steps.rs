//! Experiment binary: prints the `steps` tables (see DESIGN.md index).
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::steps::run() {
        t.print();
    }
    sift_bench::cli::finish();
}

//! E1/E4/E5: survivor decay per round for both conciliators.
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::survivors::snapshot_conciliator() {
        t.print();
    }
    for t in sift_bench::experiments::survivors::sifting_conciliator() {
        t.print();
    }
    sift_bench::cli::finish();
}

//! Experiment binary: prints the `consensus` tables (see DESIGN.md index).
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::consensus::run() {
        t.print();
    }
    sift_bench::cli::finish();
}

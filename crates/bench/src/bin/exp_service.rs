//! E23: consensus-service load generator.
//!
//! Drives the sharded service with a Zipf-skewed multi-instance
//! workload (warm sweep, then skewed traffic; see
//! `sift_bench::service_load`) and prints throughput, decision counts,
//! and per-shard latency quantiles. Workload shape comes from the
//! environment:
//!
//! * `SIFT_SERVICE_PROPOSALS` — total proposals (default 1,000,000)
//! * `SIFT_SERVICE_INSTANCES` — instance-id space (default 100,000)
//! * `SIFT_SERVICE_VALUES` — value domain size (default 16)
//! * `SIFT_SERVICE_SHARDS` — shards (default 16)
//! * `SIFT_SERVICE_WORKERS` — shard worker threads (default 4)
//! * `SIFT_SERVICE_CLIENTS` — client threads (default 8)
//! * `SIFT_SERVICE_MODE` — `closed` (default) or `open`
//! * `SIFT_SERVICE_THETA` — Zipf skew (default 0.99)
//! * `SIFT_SERVICE_SEED` — workload seed
//! * `SIFT_SERVICE_JSON` — if set, write the merged observation
//!   report (per-shard latency histograms included) to this path —
//!   `just bench-json` points it at `BENCH_service.json`.
//!
//! The exit code is nonzero if any instance failed to decide or the
//! JSON could not be written.

use sift_bench::service_load::{run_load, LoadConfig, LoadMode};

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => match v.parse::<u64>() {
            Ok(x) if x > 0 => x,
            _ => {
                eprintln!("{name} must be a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
        Err(_) => default,
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    match std::env::var(name) {
        Ok(v) => match v.parse::<f64>() {
            Ok(x) if x.is_finite() && x >= 0.0 => x,
            _ => {
                eprintln!("{name} must be a non-negative number, got {v:?}");
                std::process::exit(2);
            }
        },
        Err(_) => default,
    }
}

fn main() {
    let defaults = LoadConfig::default();
    let mode = match std::env::var("SIFT_SERVICE_MODE") {
        Ok(v) => LoadMode::parse(&v).unwrap_or_else(|| {
            eprintln!("SIFT_SERVICE_MODE must be 'open' or 'closed', got {v:?}");
            std::process::exit(2);
        }),
        Err(_) => defaults.mode,
    };
    let config = LoadConfig {
        proposals: env_u64("SIFT_SERVICE_PROPOSALS", defaults.proposals),
        instances: env_u64("SIFT_SERVICE_INSTANCES", defaults.instances),
        values: env_u64("SIFT_SERVICE_VALUES", defaults.values),
        shards: env_u64("SIFT_SERVICE_SHARDS", defaults.shards as u64) as usize,
        workers: env_u64("SIFT_SERVICE_WORKERS", defaults.workers as u64) as usize,
        clients: env_u64("SIFT_SERVICE_CLIENTS", defaults.clients as u64) as usize,
        zipf_theta: env_f64("SIFT_SERVICE_THETA", defaults.zipf_theta),
        mode,
        seed: std::env::var("SIFT_SERVICE_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.seed),
        capacity: defaults.capacity,
    };

    println!(
        "service load: {} proposals over {} instances (zipf θ={}), \
         {} shards / {} workers / {} clients, {:?} loop",
        config.proposals,
        config.instances,
        config.zipf_theta,
        config.shards,
        config.workers,
        config.clients,
        config.mode
    );
    let report = run_load(&config);

    println!(
        "decided {} instances in {:.2?} — {:.0} proposals/sec \
         ({} idempotent hits, {} batched runs, {} rejected)",
        report.decided,
        report.elapsed,
        report.throughput(),
        report.obs.count("service.idempotent"),
        report.obs.count("service.decided"),
        report.rejected,
    );
    if let Some(latency) = report.obs.hist("service.latency_ns") {
        println!(
            "latency (ns, log-bucket upper bounds): p50 ≤ {}, p99 ≤ {}, p999 ≤ {}",
            latency.quantile_upper_bound(0.50),
            latency.quantile_upper_bound(0.99),
            latency.quantile_upper_bound(0.999),
        );
    }
    if let Some(batch) = report.obs.hist("service.batch_size") {
        println!(
            "batch size: p50 ≤ {}, p99 ≤ {}, max observed {}",
            batch.quantile_upper_bound(0.50),
            batch.quantile_upper_bound(0.99),
            report.obs.max("service.max_batch"),
        );
    }

    if let Ok(path) = std::env::var("SIFT_SERVICE_JSON") {
        if !path.is_empty() {
            match std::fs::write(&path, report.obs.to_json()) {
                Ok(()) => eprintln!("wrote service report to {path}"),
                Err(e) => {
                    eprintln!("cannot write service report to {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    if report.decided < config.instances {
        eprintln!(
            "error: only {} of {} instances decided",
            report.decided, config.instances
        );
        std::process::exit(1);
    }
}

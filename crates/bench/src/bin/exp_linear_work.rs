//! Experiment binary: prints the `linear_work` tables (see DESIGN.md index).
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::linear_work::run() {
        t.print();
    }
    sift_bench::cli::finish();
}

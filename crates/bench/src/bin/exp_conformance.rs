//! E22: the statistical conformance suite — every quantitative claim of
//! the paper (Lemmas 1–4, Theorems 1–3, Corollaries 1–3) as a one-sided
//! 99% hypothesis test. Output of this binary is what the conformance
//! table in `EXPERIMENTS.md` records.
//!
//! `SIFT_TRIALS` acts as the *scale* multiplier on every per-claim
//! trial count (default 1 = the CI smoke tier; the nightly tier runs
//! with a larger scale). Exits nonzero if any claim is refuted.
fn main() {
    sift_bench::cli::init();
    let scale = sift_bench::default_trials(1);
    let start = std::time::Instant::now();
    let results = sift_bench::conformance::run(scale);
    sift_bench::conformance::render(&results).print();
    println!(
        "conformance digest: {:#018x} (scale {scale})",
        sift_bench::conformance::digest(&results)
    );
    eprintln!("total time: {:.1?}", start.elapsed());
    sift_bench::cli::finish();
    if !sift_bench::conformance::all_pass(&results) {
        eprintln!("conformance: at least one claim refuted at 99% confidence");
        std::process::exit(1);
    }
}

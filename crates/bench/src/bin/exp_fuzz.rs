//! Coverage-guided adversary fuzzing campaign against the sifting
//! conciliator's schedule-independent invariants.
//!
//! Campaign shape comes from the environment (the shared CLI flags
//! reject unknown options, and fuzz knobs are fuzz-only):
//!
//! * `SIFT_FUZZ_N` — processes per candidate schedule (default 8)
//! * `SIFT_FUZZ_GENERATIONS` — propose/evaluate/absorb cycles (12)
//! * `SIFT_FUZZ_POPULATION` — candidates per generation (16)
//! * `SIFT_FUZZ_SEED` — campaign master seed
//! * `SIFT_FUZZ_EXTENDED` — any value but `0`: propose from the
//!   extended gene pool (adversary-strength and register-semantics
//!   environment genes; the nightly heavy job sets this)
//! * `SIFT_FUZZ_OUT` — optional path for a plain-text campaign report
//!   (what the nightly CI job uploads as an artifact)
//!
//! Every violation prints with its shrunk `FixedSchedule` replay script
//! when one exists; the exit code is nonzero if any violation was
//! found. On correct code this binary is a coverage report.
use std::io::Write;

use sift_bench::fuzz::{run_fuzz, FuzzConfig};

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => match v.parse::<usize>() {
            Ok(x) if x > 0 => x,
            _ => {
                eprintln!("{name} must be a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
        Err(_) => default,
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => match v.parse::<u64>() {
            Ok(x) => x,
            Err(_) => {
                eprintln!("{name} must be an unsigned integer, got {v:?}");
                std::process::exit(2);
            }
        },
        Err(_) => default,
    }
}

fn main() {
    sift_bench::cli::init();
    let defaults = FuzzConfig::default();
    let config = FuzzConfig {
        n: env_usize("SIFT_FUZZ_N", defaults.n),
        generations: env_usize("SIFT_FUZZ_GENERATIONS", defaults.generations),
        population: env_usize("SIFT_FUZZ_POPULATION", defaults.population),
        seed: env_u64("SIFT_FUZZ_SEED", defaults.seed),
        extended: std::env::var("SIFT_FUZZ_EXTENDED").is_ok_and(|v| v != "0"),
    };

    let start = std::time::Instant::now();
    let report = run_fuzz(&config);

    let mut summary = String::new();
    summary.push_str(&format!(
        "fuzz campaign: n={} generations={} population={} seed={:#x} extended={}\n",
        config.n, config.generations, config.population, config.seed, config.extended
    ));
    summary.push_str(&format!(
        "evaluated {} candidates; {} distinct fingerprints; corpus {}; {} violations\n",
        report.evaluated,
        report.coverage,
        report.corpus_len,
        report.violations.len()
    ));
    summary.push_str(&format!("campaign digest: {:#018x}\n", report.digest()));
    for violation in &report.violations {
        summary.push_str(&format!("\n{violation}\n"));
    }
    print!("{summary}");

    if let Ok(path) = std::env::var("SIFT_FUZZ_OUT") {
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(summary.as_bytes())) {
            Ok(()) => eprintln!("wrote campaign report to {path}"),
            Err(e) => {
                eprintln!("cannot write campaign report to {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    eprintln!("total time: {:.1?}", start.elapsed());
    sift_bench::cli::finish();
    if !report.violations.is_empty() {
        eprintln!(
            "fuzz: {} invariant violation(s) found",
            report.violations.len()
        );
        std::process::exit(1);
    }
}

//! Experiment binary: prints the `tail` tables (see DESIGN.md index).
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::tail::run() {
        t.print();
    }
    sift_bench::cli::finish();
}

//! Runs the entire experiment suite (E1–E21) and prints every table.
//! Output of this binary is what `EXPERIMENTS.md` records.
fn main() {
    sift_bench::cli::init();
    let start = std::time::Instant::now();
    for t in sift_bench::experiments::run_all() {
        t.print();
    }
    eprintln!("total time: {:.1?}", start.elapsed());
    sift_bench::cli::finish();
}

//! Experiment binary: prints the `adversary` tables — E12 (schedule
//! families), E16 (crash subsets), E24 (the adversary-lattice sweep) —
//! plus the E25 negative conformance tier that pins the obliviousness
//! boundary.
//!
//! * `SIFT_TRIALS` — trials per lattice cell and negative-tier scale
//! * `SIFT_ADVERSARY_JSON` — if set, write the lattice sweep and the
//!   negative-tier verdicts to this path — `just bench-json` points it
//!   at `BENCH_adversary.json`.
//!
//! The exit code is nonzero if any negative-tier case lands on the
//! wrong side of the boundary or the JSON could not be written.
use sift_bench::conformance::{self, ClaimResult};
use sift_bench::experiments::adversary::{self, LatticeReport};
use sift_bench::runner::default_trials;

fn adversary_json(lattice: &LatticeReport, negative: &[ClaimResult]) -> String {
    let lattice_json = lattice.to_json();
    let body = lattice_json
        .strip_suffix("}\n")
        .expect("LatticeReport::to_json ends with a closing brace");
    let mut out = String::from(body);
    out.push_str(&format!(
        "  ,\n  \"lattice_digest\": \"{:#018x}\",\n  \"negative\": [\n",
        lattice.digest()
    ));
    for (i, r) in negative.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"trials\": {}, \"pass\": {}}}{}\n",
            r.id,
            r.trials,
            r.pass,
            if i + 1 < negative.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    sift_bench::cli::init();
    for t in adversary::run_base() {
        t.print();
    }

    let lattice = adversary::run_lattice(
        adversary::LATTICE_N,
        default_trials(adversary::LATTICE_TRIALS),
    );
    lattice.table().print();
    println!("lattice digest: {:#018x}\n", lattice.digest());

    let negative = conformance::run_negative(default_trials(1));
    conformance::render_negative(&negative).print();
    println!("negative digest: {:#018x}", conformance::digest(&negative));

    if let Ok(path) = std::env::var("SIFT_ADVERSARY_JSON") {
        if !path.is_empty() {
            match std::fs::write(&path, adversary_json(&lattice, &negative)) {
                Ok(()) => eprintln!("wrote adversary report to {path}"),
                Err(e) => {
                    eprintln!("cannot write adversary report to {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    sift_bench::cli::finish();
    if !conformance::all_pass(&negative) {
        eprintln!("negative conformance: a case landed on the wrong side of the boundary");
        std::process::exit(1);
    }
}

//! Experiment binary: prints the `adversary` tables (see DESIGN.md index).
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::adversary::run() {
        t.print();
    }
    sift_bench::cli::finish();
}

//! Experiment binary: prints the `cost_model` tables (see DESIGN.md index).
fn main() {
    for t in sift_bench::experiments::cost_model::run() {
        t.print();
    }
}

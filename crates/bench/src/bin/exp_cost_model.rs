//! Experiment binary: prints the `cost_model` tables (see DESIGN.md index).
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::cost_model::run() {
        t.print();
    }
    sift_bench::cli::finish();
}

//! Experiment binary: prints the `width` tables (see DESIGN.md index).
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::width::run() {
        t.print();
    }
    sift_bench::cli::finish();
}

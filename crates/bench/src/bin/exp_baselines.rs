//! Experiment binary: prints the `baselines` tables (see DESIGN.md index).
fn main() {
    for t in sift_bench::experiments::baselines::run() {
        t.print();
    }
}

//! Experiment binary: prints the `baselines` tables (see DESIGN.md index).
fn main() {
    sift_bench::cli::init();
    for t in sift_bench::experiments::baselines::run() {
        t.print();
    }
    sift_bench::cli::finish();
}

//! Plain-text table rendering for experiment output.
//!
//! Every experiment produces one or more [`Table`]s in the layout the
//! paper's claims suggest (a "paper" column next to each "measured"
//! column), printed as aligned text that is also valid Markdown.

use std::fmt::Write as _;

/// A rendered experiment table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width does not match table {:?}",
            self.title
        );
        self.rows.push(cells);
        self
    }

    /// Appends a free-form footnote printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Access to raw rows (for tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as aligned Markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        let _ = writeln!(out, "| {} |", header.join(" | "));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "| {} |", rule.join(" | "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n_{note}_");
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with 3 significant decimals, trimming noise.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats `mean ± ci` compactly.
pub fn fmt_mean_ci(mean: f64, ci: f64) -> String {
    format!("{} ± {}", fmt_f64(mean), fmt_f64(ci))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["n", "value"]);
        t.row(vec!["16".into(), "1.25".into()]);
        t.row(vec!["1024".into(), "3".into()]);
        t.note("a footnote");
        let s = t.render();
        assert!(s.starts_with("### Demo"));
        assert!(s.contains("| n    | value |"));
        assert!(s.contains("| 16   | 1.25  |"));
        assert!(s.contains("_a footnote_"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.title(), "Demo");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("Bad", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(123.456), "123");
        assert_eq!(fmt_f64(12.345), "12.35");
        assert_eq!(fmt_f64(0.12345), "0.1235");
        assert_eq!(fmt_mean_ci(2.0, 0.5), "2.00 ± 0.5000");
    }
}

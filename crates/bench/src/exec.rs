//! The spec-driven parallel trial executor.
//!
//! Every Monte-Carlo sweep in the experiment suite runs through this
//! module: a trial is *data* (a [`TrialSpec`]), a batch of trials is
//! fanned across a scoped thread pool, and per-trial results are folded
//! into mergeable accumulators (see [`Merge`] and
//! [`Welford`](crate::stats::Welford)).
//!
//! # Determinism
//!
//! Results are bit-identical regardless of thread count or completion
//! order:
//!
//! * Per-trial seeds depend only on `(master_seed, trial_index)` (see
//!   [`trial_seed`]), never on which worker runs the trial.
//! * Trials are folded into fixed-size chunks whose boundaries depend
//!   only on the trial count (never the thread count), and chunk
//!   accumulators are merged in index order at the barrier.
//!
//! `SIFT_THREADS=1` therefore reproduces the parallel numbers exactly,
//! and with the default master seed `0` the per-trial seeds are the
//! trial indices themselves — the layout the pre-executor serial
//! harness used — so historical tables are reproduced as well.
//!
//! # Knobs
//!
//! * `SIFT_THREADS` — worker count (default: available parallelism).
//! * `SIFT_SEED` — master seed for a batch (default 0).
//!
//! Both are also settable programmatically ([`set_threads`],
//! [`set_master_seed`]), which is what the `--threads`/`--seed` flags
//! of the `exp_*` binaries do.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use sift_core::{Conciliator, Persona, RoundHistory};
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::ScheduleKind;
use sift_sim::{LayoutBuilder, Process};

use crate::runner::{run_trial, run_trial_with_history, Trial};

/// Accumulators that can absorb another accumulator of the same type.
///
/// `merge` must be order-respecting: merging chunk accumulators in
/// index order must be equivalent (to within float associativity) to
/// folding all samples serially. All integer-valued accumulators merge
/// exactly; float accumulators merge to within rounding, which is
/// invisible at table precision.
pub trait Merge: Sized {
    /// Absorbs `other`, which holds the samples that come *after* this
    /// accumulator's samples in trial order.
    fn merge(&mut self, other: Self);
}

impl Merge for () {
    fn merge(&mut self, _other: Self) {}
}

/// Plain counters merge by summation.
impl Merge for u64 {
    fn merge(&mut self, other: Self) {
        *self += other;
    }
}

/// Plain counters merge by summation.
impl Merge for usize {
    fn merge(&mut self, other: Self) {
        *self += other;
    }
}

/// Running sums merge by addition.
impl Merge for f64 {
    fn merge(&mut self, other: Self) {
        *self += other;
    }
}

/// Ordered collections merge by concatenation (chunk order is trial
/// order).
impl<T> Merge for Vec<T> {
    fn merge(&mut self, other: Self) {
        self.extend(other);
    }
}

/// Per-trial step accounting rides the executor's shared merge path by
/// delegating to [`Metrics::merge`] — the one element-wise summing
/// implementation, so the simulator's aggregation and the harness's
/// cannot drift apart.
impl Merge for sift_sim::Metrics {
    fn merge(&mut self, other: Self) {
        sift_sim::Metrics::merge(self, &other);
    }
}

impl<A: Merge> Merge for Option<A> {
    fn merge(&mut self, other: Self) {
        match (self.as_mut(), other) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => *self = Some(b),
            (_, None) => {}
        }
    }
}

macro_rules! impl_merge_for_tuples {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Merge),+> Merge for ($($name,)+) {
            fn merge(&mut self, other: Self) {
                $(self.$idx.merge(other.$idx);)+
            }
        }
    )+};
}

impl_merge_for_tuples! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static MASTER_SEED_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);

/// Serializes tests that mutate the global overrides.
#[cfg(test)]
pub(crate) fn override_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Overrides the worker count for all subsequent batches (`0` clears
/// the override). Takes precedence over `SIFT_THREADS`.
pub fn set_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Overrides the master seed for all subsequent batches. Takes
/// precedence over `SIFT_SEED`.
pub fn set_master_seed(seed: u64) {
    MASTER_SEED_OVERRIDE.store(seed, Ordering::Relaxed);
}

/// The worker count used by [`map_reduce`]: the [`set_threads`]
/// override, else `SIFT_THREADS`, else the machine's available
/// parallelism.
///
/// # Panics
///
/// Panics if `SIFT_THREADS` is set but not a positive integer.
pub fn threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    match std::env::var("SIFT_THREADS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(t) if t > 0 => t,
            _ => panic!("SIFT_THREADS must be a positive integer, got {v:?}"),
        },
        Err(_) => std::thread::available_parallelism().map_or(1, |p| p.get()),
    }
}

/// The master seed for a batch: the [`set_master_seed`] override, else
/// `SIFT_SEED`, else 0.
///
/// # Panics
///
/// Panics if `SIFT_SEED` is set but not an integer.
pub fn master_seed() -> u64 {
    let over = MASTER_SEED_OVERRIDE.load(Ordering::Relaxed);
    if over != u64::MAX {
        return over;
    }
    match std::env::var("SIFT_SEED") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("SIFT_SEED must be a u64, got {v:?}")),
        Err(_) => 0,
    }
}

/// Derives the seed of trial `index` from the batch's master seed.
///
/// With the default master seed 0 the trial seed *is* the trial index —
/// the layout the pre-executor serial harness used, preserved so
/// historical tables reproduce exactly. Any other master seed is
/// expanded through [`SeedSplitter`] into decorrelated per-trial seeds.
pub fn trial_seed(master: u64, index: u64) -> u64 {
    if master == 0 {
        index
    } else {
        SeedSplitter::new(master).seed("trial", index)
    }
}

/// Chunk size for a batch of `count` trials.
///
/// Depends only on the count — never the thread count — so the fold
/// grouping (and therefore every float result) is identical for any
/// `SIFT_THREADS`. Small batches use single-trial chunks for maximum
/// parallelism; large batches amortize the barrier merge.
fn chunk_size(count: usize) -> usize {
    (count / 64).clamp(1, 32)
}

/// Fans `count` trials across a scoped thread pool and folds each
/// trial's result into an accumulator, deterministically.
///
/// `run` receives the trial index and returns the trial's result;
/// `fold` absorbs one result into a chunk-local accumulator created by
/// `init`; chunk accumulators are [`Merge`]d in index order at the
/// barrier. Worker panics (failed in-trial assertions) propagate.
pub fn map_reduce<T, A>(
    count: usize,
    run: impl Fn(u64) -> T + Sync,
    init: impl Fn() -> A + Sync,
    fold: impl Fn(&mut A, T) + Sync,
) -> A
where
    T: Send,
    A: Merge + Send,
{
    let workers = threads();
    if count == 0 {
        return init();
    }
    let chunk = chunk_size(count);
    let n_chunks = count.div_ceil(chunk);
    let workers = workers.min(n_chunks);

    let run_chunk = |c: usize| {
        let mut local = init();
        let lo = c * chunk;
        let hi = (lo + chunk).min(count);
        for index in lo..hi {
            fold(&mut local, run(index as u64));
        }
        local
    };

    let mut slots: Vec<Option<A>> = if workers <= 1 {
        (0..n_chunks).map(|c| Some(run_chunk(c))).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots = Mutex::new((0..n_chunks).map(|_| None).collect::<Vec<_>>());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let local = run_chunk(c);
                        let mut guard = slots.lock().unwrap_or_else(|e| e.into_inner());
                        guard[c] = Some(local);
                    })
                })
                .collect();
            for h in handles {
                if let Err(panic) = h.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });
        slots.into_inner().unwrap_or_else(|e| e.into_inner())
    };

    let mut acc = slots[0].take().expect("chunk 0 always runs");
    for slot in &mut slots[1..] {
        acc.merge(slot.take().expect("all chunks ran"));
    }
    acc
}

/// One conciliator trial as plain data: which protocol instance size,
/// which adversary family, which trial of the batch, and the derived
/// seed. Everything a worker needs to execute the trial, independent of
/// every other trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialSpec {
    /// Number of participating processes.
    pub n: usize,
    /// Adversary schedule family.
    pub kind: ScheduleKind,
    /// Index of this trial within its batch.
    pub index: u64,
    /// Seed of this trial (see [`trial_seed`]).
    pub seed: u64,
    /// Whether per-round survivor history is collected.
    pub collect_history: bool,
}

/// A batch of trials over one protocol configuration — the unit the
/// executor schedules.
///
/// # Examples
///
/// ```
/// use sift_bench::exec::Batch;
/// use sift_bench::stats::Welford;
/// use sift_core::{Epsilon, SiftingConciliator};
/// use sift_sim::schedule::ScheduleKind;
///
/// let steps = Batch::new(8, 16, ScheduleKind::RoundRobin)
///     .run(
///         |b| SiftingConciliator::allocate(b, 8, Epsilon::HALF),
///         Welford::new,
///         |w, t| w.push(t.metrics.max_individual_steps() as f64),
///     );
/// assert_eq!(steps.count(), 16);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Batch {
    n: usize,
    count: usize,
    kind: ScheduleKind,
    master_seed: u64,
    collect_history: bool,
}

impl Batch {
    /// A batch of `count` trials of an `n`-process protocol under the
    /// `kind` adversary, seeded from the session master seed
    /// ([`master_seed`]).
    pub fn new(n: usize, count: usize, kind: ScheduleKind) -> Self {
        Self {
            n,
            count,
            kind,
            master_seed: master_seed(),
            collect_history: false,
        }
    }

    /// Collects per-round survivor history in every trial.
    pub fn with_history(mut self) -> Self {
        self.collect_history = true;
        self
    }

    /// Uses an explicit master seed instead of the session default.
    pub fn with_master_seed(mut self, master: u64) -> Self {
        self.master_seed = master;
        self
    }

    /// Number of trials in the batch.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The spec of trial `index`.
    pub fn spec(&self, index: u64) -> TrialSpec {
        TrialSpec {
            n: self.n,
            kind: self.kind,
            index,
            seed: trial_seed(self.master_seed, index),
            collect_history: self.collect_history,
        }
    }

    /// Runs every trial of the batch in parallel: builds the protocol
    /// with `build`, executes it, and folds the [`Trial`]s (in trial
    /// order) into the accumulator.
    pub fn run<C, A>(
        &self,
        build: impl Fn(&mut LayoutBuilder) -> C + Sync,
        init: impl Fn() -> A + Sync,
        fold: impl Fn(&mut A, Trial) + Sync,
    ) -> A
    where
        C: Conciliator,
        A: Merge + Send,
    {
        map_reduce(
            self.count,
            |index| {
                let spec = self.spec(index);
                run_trial(spec.n, spec.seed, spec.kind, &build)
            },
            init,
            fold,
        )
    }

    /// Like [`Batch::run`], for participants that record round history
    /// (survivor experiments). Implies [`Batch::with_history`].
    pub fn run_with_history<C, P, A>(
        &self,
        build: impl Fn(&mut LayoutBuilder) -> C + Sync,
        init: impl Fn() -> A + Sync,
        fold: impl Fn(&mut A, Trial) + Sync,
    ) -> A
    where
        C: Conciliator<Participant = P>,
        P: Process<Value = Persona, Output = Persona> + RoundHistory,
        A: Merge + Send,
    {
        map_reduce(
            self.count,
            |index| {
                let spec = self.spec(index);
                run_trial_with_history(spec.n, spec.seed, spec.kind, &build)
            },
            init,
            fold,
        )
    }

    /// Runs an arbitrary per-trial function over the batch's specs —
    /// the escape hatch for experiments that drive the [`Engine`]
    /// directly (consensus stacks, test-and-set, adopt-commit sweeps,
    /// adaptive adversaries).
    ///
    /// [`Engine`]: sift_sim::Engine
    pub fn run_with<T, A>(
        &self,
        run: impl Fn(TrialSpec) -> T + Sync,
        init: impl Fn() -> A + Sync,
        fold: impl Fn(&mut A, T) + Sync,
    ) -> A
    where
        T: Send,
        A: Merge + Send,
    {
        map_reduce(self.count, |index| run(self.spec(index)), init, fold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{RateCounter, Welford};
    use sift_core::{Epsilon, SiftingConciliator};

    #[test]
    fn map_reduce_sums_like_serial() {
        let total = map_reduce(100, |i| i, || 0u64, |acc: &mut u64, x| *acc += x);
        assert_eq!(total, 99 * 100 / 2);
    }

    #[test]
    fn map_reduce_empty_batch_returns_init() {
        let v = map_reduce(0, |_| 1u64, || 7u64, |a, b| *a += b);
        assert_eq!(v, 7);
    }

    #[test]
    fn chunking_depends_only_on_count() {
        assert_eq!(chunk_size(1), 1);
        assert_eq!(chunk_size(63), 1);
        assert_eq!(chunk_size(640), 10);
        assert_eq!(chunk_size(1 << 20), 32);
    }

    #[test]
    fn trial_seed_is_index_compatible_at_master_zero() {
        assert_eq!(trial_seed(0, 17), 17);
        assert_ne!(trial_seed(9, 17), 17 + 9);
    }

    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        let _guard = override_lock();
        let run_at = |threads: usize| {
            set_threads(threads);
            let batch = Batch::new(16, 50, ScheduleKind::RandomInterleave);
            let out = batch.run(
                |b| SiftingConciliator::allocate(b, 16, Epsilon::HALF),
                || (Welford::new(), RateCounter::new()),
                |(w, r), t| {
                    w.push(t.metrics.total_steps as f64);
                    r.record(t.agreed);
                },
            );
            set_threads(0);
            out
        };
        let (w1, r1) = run_at(1);
        let (w2, r2) = run_at(2);
        let (w8, r8) = run_at(8);
        assert_eq!(w1.mean().to_bits(), w2.mean().to_bits());
        assert_eq!(w1.mean().to_bits(), w8.mean().to_bits());
        assert_eq!(r1, r2);
        assert_eq!(r1, r8);
    }

    #[test]
    fn worker_panics_propagate() {
        let _guard = override_lock();
        set_threads(4);
        let result = std::panic::catch_unwind(|| {
            map_reduce(
                64,
                |i| {
                    assert!(i != 40, "in-trial assertion");
                    i
                },
                || 0u64,
                |a, b| *a += b,
            )
        });
        set_threads(0);
        assert!(result.is_err(), "in-trial panic must propagate");
    }

    #[test]
    fn metrics_ride_the_shared_merge_path() {
        let _guard = override_lock();
        let run_at = |threads: usize| {
            set_threads(threads);
            let batch = Batch::new(8, 40, ScheduleKind::RoundRobin);
            let agg = batch.run(
                |b| SiftingConciliator::allocate(b, 8, Epsilon::HALF),
                sift_sim::Metrics::default,
                |m: &mut sift_sim::Metrics, t| Merge::merge(m, t.metrics),
            );
            set_threads(0);
            agg
        };
        let serial = run_at(1);
        let parallel = run_at(4);
        assert_eq!(
            serial, parallel,
            "Metrics merge must be thread-count invariant"
        );
        assert!(serial.total_steps > 0);
        assert_eq!(serial.total_ops, serial.ops_by_kind.iter().sum::<u64>());
    }

    #[test]
    fn option_and_tuple_merges_compose() {
        let mut a = Some((3u64, 4u64));
        a.merge(Some((10, 20)));
        assert_eq!(a, Some((13, 24)));
        let mut none: Option<(u64, u64)> = None;
        none.merge(Some((1, 2)));
        assert_eq!(none, Some((1, 2)));
    }
}

//! Shared trial machinery: build a protocol, run it under a schedule,
//! collect agreement/step/survivor data.

use sift_core::{distinct_per_round, Conciliator, Persona, RoundHistory};
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::ScheduleKind;
use sift_sim::{Engine, LayoutBuilder, Metrics, Process, ProcessId};

/// Result of one conciliator trial.
#[derive(Debug, Clone)]
pub struct Trial {
    /// All processes returned the same persona.
    pub agreed: bool,
    /// Number of distinct output personae.
    pub distinct_outputs: usize,
    /// Step accounting for the run.
    pub metrics: Metrics,
    /// Distinct-persona counts per round, when the participant records
    /// history.
    pub survivors: Option<Vec<usize>>,
}

/// Default number of trials, overridable with the `SIFT_TRIALS`
/// environment variable.
pub fn default_trials(wanted: usize) -> usize {
    match std::env::var("SIFT_TRIALS") {
        Ok(v) => v.parse().unwrap_or(wanted),
        Err(_) => wanted,
    }
}

fn run_generic<C, P>(
    n: usize,
    seed: u64,
    kind: ScheduleKind,
    build: impl FnOnce(&mut LayoutBuilder) -> C,
    collect_history: bool,
) -> Trial
where
    C: Conciliator<Participant = P>,
    P: Process<Value = Persona, Output = Persona> + RoundHistory,
{
    let mut builder = LayoutBuilder::new();
    let conciliator = build(&mut builder);
    let layout = builder.build();
    let split = SeedSplitter::new(seed);
    let schedule = kind.build(n, split.seed("schedule", 0));
    let participants: Vec<P> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            conciliator.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let report = Engine::new(&layout, participants).run(schedule);
    let survivors = collect_history
        .then(|| distinct_per_round(report.processes.iter().map(|p| p.history())));
    summarize(report, survivors)
}

/// Runs one trial of a history-recording conciliator, collecting
/// per-round survivor counts.
pub fn run_trial_with_history<C, P>(
    n: usize,
    seed: u64,
    kind: ScheduleKind,
    build: impl FnOnce(&mut LayoutBuilder) -> C,
) -> Trial
where
    C: Conciliator<Participant = P>,
    P: Process<Value = Persona, Output = Persona> + RoundHistory,
{
    run_generic(n, seed, kind, build, true)
}

/// Runs one trial of any conciliator (no survivor collection).
pub fn run_trial<C>(
    n: usize,
    seed: u64,
    kind: ScheduleKind,
    build: impl FnOnce(&mut LayoutBuilder) -> C,
) -> Trial
where
    C: Conciliator,
{
    let mut builder = LayoutBuilder::new();
    let conciliator = build(&mut builder);
    let layout = builder.build();
    let split = SeedSplitter::new(seed);
    let schedule = kind.build(n, split.seed("schedule", 0));
    let participants: Vec<C::Participant> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            conciliator.participant(ProcessId(i), i as u64, &mut rng)
        })
        .collect();
    let report = Engine::new(&layout, participants).run(schedule);
    summarize(report, None)
}

fn summarize<P>(report: sift_sim::RunReport<P>, survivors: Option<Vec<usize>>) -> Trial
where
    P: Process<Value = Persona, Output = Persona>,
{
    use std::collections::HashSet;
    let outputs: Vec<&Persona> = report.outputs.iter().flatten().collect();
    for p in &outputs {
        assert!(
            p.input() < report.outputs.len() as u64,
            "validity violated: output {} not an input",
            p.input()
        );
    }
    let distinct: HashSet<ProcessId> = outputs.iter().map(|p| p.origin()).collect();
    Trial {
        agreed: distinct.len() <= 1 && outputs.len() == report.outputs.len(),
        distinct_outputs: distinct.len(),
        metrics: report.metrics,
        survivors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_core::{CilConciliator, Epsilon, SiftingConciliator};

    #[test]
    fn trial_reports_steps_and_agreement() {
        let t = run_trial(8, 3, ScheduleKind::RoundRobin, |b| {
            SiftingConciliator::allocate(b, 8, Epsilon::HALF)
        });
        assert!(t.metrics.total_steps > 0);
        assert!(t.distinct_outputs >= 1);
        assert!(t.survivors.is_none());
    }

    #[test]
    fn trial_with_history_reports_survivors() {
        let t = run_trial_with_history(8, 3, ScheduleKind::RandomInterleave, |b| {
            SiftingConciliator::allocate(b, 8, Epsilon::HALF)
        });
        let survivors = t.survivors.expect("history requested");
        assert!(!survivors.is_empty());
        assert!(survivors[0] <= 8);
        assert_eq!(t.agreed, *survivors.last().unwrap() == 1);
    }

    #[test]
    fn cil_trial_runs_without_history() {
        let t = run_trial(6, 1, ScheduleKind::RoundRobin, |b| {
            CilConciliator::allocate(b, 6)
        });
        assert!(t.metrics.total_steps > 0);
    }

    #[test]
    fn default_trials_honors_env() {
        // No env set in tests: fall back to wanted.
        assert_eq!(default_trials(42), 42);
    }
}

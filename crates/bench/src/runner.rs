//! Shared trial machinery: build a protocol, run it under a schedule,
//! collect agreement/step/survivor data.
//!
//! Builders are reusable (`Fn`, not `FnOnce`) so one closure can be
//! shared by every worker of the parallel executor
//! (see [`exec`](crate::exec)).

use sift_core::{distinct_per_round, Conciliator, Persona, RoundHistory, SiftingParticipant};
use sift_sim::adversary::DelayedChooser;
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::ScheduleKind;
use sift_sim::{
    AdaptiveView, Engine, LayoutBuilder, Metrics, Op, Process, ProcessId, RunReport, StopReason,
};

/// Result of one conciliator trial.
#[derive(Debug, Clone)]
pub struct Trial {
    /// All processes returned the same persona.
    pub agreed: bool,
    /// Number of distinct output personae.
    pub distinct_outputs: usize,
    /// Step accounting for the run.
    pub metrics: Metrics,
    /// Why the engine stopped. Anything but [`StopReason::AllDone`]
    /// means the run was truncated and `agreed` reflects an incomplete
    /// execution; aggregations count truncations separately (see
    /// [`Truncations`](crate::stats::Truncations)).
    pub stop_reason: StopReason,
    /// Distinct-persona counts per round, when the participant records
    /// history.
    pub survivors: Option<Vec<usize>>,
}

/// Default number of trials, overridable with the `SIFT_TRIALS`
/// environment variable.
///
/// # Panics
///
/// Panics if `SIFT_TRIALS` is set but does not parse as a positive
/// integer — a typo'd trial count silently falling back to the default
/// would invalidate a sweep without any visible signal.
pub fn default_trials(wanted: usize) -> usize {
    match std::env::var("SIFT_TRIALS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(t) if t > 0 => t,
            _ => panic!("SIFT_TRIALS must be a positive integer, got {v:?}"),
        },
        Err(_) => wanted,
    }
}

/// Extraction half of the E20-style sifting breaker: from an adaptive
/// view, pick the live process furthest behind (lowest round), readers
/// before writers within a round, lowest pid as the final tiebreak.
/// Starving first-round reads of the writes they should have seen keeps
/// every persona alive — the construction that defeats sifting once the
/// adversary can inspect process state.
pub(crate) fn breaker_extract(view: &AdaptiveView<'_, SiftingParticipant>) -> ProcessId {
    view.live
        .iter()
        .min_by_key(|(pid, proc, op)| {
            let is_writer = matches!(op, Op::RegisterWrite(_, _));
            (proc.round(), is_writer, pid.index())
        })
        .map(|(pid, _, _)| *pid)
        .expect("run_adaptive only consults a nonempty live set")
}

/// Decision half of the breaker: schedule the `k`-stale choice if that
/// process is still live, else fall back to the first live process
/// (liveness knowledge is always current; see
/// [`sift_sim::adversary`]).
pub(crate) fn breaker_decide(stale: Option<&ProcessId>, live: &[ProcessId]) -> ProcessId {
    stale
        .copied()
        .filter(|p| live.contains(p))
        .unwrap_or_else(|| live[0])
}

/// Runs `engine` to completion under the `delay`-stale sifting breaker:
/// delay 0 is the fully adaptive adversary, larger delays the weaker
/// `Delayed(k)` lattice points (free functions rather than closures so
/// every caller drives byte-identical adversary behavior).
pub(crate) fn run_sifting_breaker(
    engine: Engine<SiftingParticipant>,
    delay: usize,
) -> RunReport<SiftingParticipant> {
    let mut chooser = DelayedChooser::new(delay, breaker_extract, breaker_decide);
    engine.run_adaptive(|view| chooser.choose(&view))
}

fn run_generic<C, P>(
    n: usize,
    seed: u64,
    kind: ScheduleKind,
    build: impl Fn(&mut LayoutBuilder) -> C,
    collect_history: bool,
) -> Trial
where
    C: Conciliator<Participant = P>,
    P: Process<Value = Persona, Output = Persona> + RoundHistory,
{
    let mut builder = LayoutBuilder::new();
    let conciliator = build(&mut builder);
    let layout = builder.build();
    let split = SeedSplitter::new(seed);
    let schedule = kind.build(n, split.seed("schedule", 0));
    let mut inputs = Vec::with_capacity(n);
    let participants: Vec<P> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            let input = i as u64;
            inputs.push(input);
            conciliator.participant(ProcessId(i), input, &mut rng)
        })
        .collect();
    let report = Engine::new(&layout, participants).run(schedule);
    let survivors =
        collect_history.then(|| distinct_per_round(report.processes.iter().map(|p| p.history())));
    summarize(report, &inputs, survivors)
}

/// Runs one trial of a history-recording conciliator, collecting
/// per-round survivor counts.
pub fn run_trial_with_history<C, P>(
    n: usize,
    seed: u64,
    kind: ScheduleKind,
    build: impl Fn(&mut LayoutBuilder) -> C,
) -> Trial
where
    C: Conciliator<Participant = P>,
    P: Process<Value = Persona, Output = Persona> + RoundHistory,
{
    run_generic(n, seed, kind, build, true)
}

/// Runs one trial of any conciliator (no survivor collection).
pub fn run_trial<C>(
    n: usize,
    seed: u64,
    kind: ScheduleKind,
    build: impl Fn(&mut LayoutBuilder) -> C,
) -> Trial
where
    C: Conciliator,
{
    let mut builder = LayoutBuilder::new();
    let conciliator = build(&mut builder);
    let layout = builder.build();
    let split = SeedSplitter::new(seed);
    let schedule = kind.build(n, split.seed("schedule", 0));
    let mut inputs = Vec::with_capacity(n);
    let participants: Vec<C::Participant> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            let input = i as u64;
            inputs.push(input);
            conciliator.participant(ProcessId(i), input, &mut rng)
        })
        .collect();
    let report = Engine::new(&layout, participants).run(schedule);
    summarize(report, &inputs, None)
}

/// Checks validity against the inputs the participants were actually
/// constructed with (not an assumed `0..n` range) and folds the run
/// report into a [`Trial`].
fn summarize<P>(
    report: sift_sim::RunReport<P>,
    inputs: &[u64],
    survivors: Option<Vec<usize>>,
) -> Trial
where
    P: Process<Value = Persona, Output = Persona>,
{
    use std::collections::HashSet;
    let allowed: HashSet<u64> = inputs.iter().copied().collect();
    let outputs: Vec<&Persona> = report.outputs.iter().flatten().collect();
    for p in &outputs {
        assert!(
            allowed.contains(&p.input()),
            "validity violated: output {} was not any participant's input",
            p.input()
        );
    }
    let distinct: HashSet<ProcessId> = outputs.iter().map(|p| p.origin()).collect();
    let trial = Trial {
        agreed: distinct.len() <= 1 && outputs.len() == report.outputs.len(),
        distinct_outputs: distinct.len(),
        metrics: report.metrics,
        stop_reason: report.stop_reason,
        survivors,
    };
    crate::obs::record_trial(&trial);
    trial
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_core::{CilConciliator, Epsilon, SiftingConciliator};

    #[test]
    fn trial_reports_steps_and_agreement() {
        let t = run_trial(8, 3, ScheduleKind::RoundRobin, |b| {
            SiftingConciliator::allocate(b, 8, Epsilon::HALF)
        });
        assert!(t.metrics.total_steps > 0);
        assert!(t.distinct_outputs >= 1);
        assert!(t.survivors.is_none());
        assert_eq!(t.stop_reason, StopReason::AllDone);
    }

    #[test]
    fn trial_with_history_reports_survivors() {
        let t = run_trial_with_history(8, 3, ScheduleKind::RandomInterleave, |b| {
            SiftingConciliator::allocate(b, 8, Epsilon::HALF)
        });
        let survivors = t.survivors.expect("history requested");
        assert!(!survivors.is_empty());
        assert!(survivors[0] <= 8);
        assert_eq!(t.agreed, *survivors.last().unwrap() == 1);
    }

    #[test]
    fn cil_trial_runs_without_history() {
        let t = run_trial(6, 1, ScheduleKind::RoundRobin, |b| {
            CilConciliator::allocate(b, 6)
        });
        assert!(t.metrics.total_steps > 0);
    }

    #[test]
    fn builders_are_reusable() {
        let build = |b: &mut LayoutBuilder| SiftingConciliator::allocate(b, 4, Epsilon::HALF);
        let a = run_trial(4, 1, ScheduleKind::RoundRobin, build);
        let b = run_trial(4, 1, ScheduleKind::RoundRobin, build);
        assert_eq!(a.metrics.total_steps, b.metrics.total_steps);
    }

    #[test]
    fn default_trials_honors_env() {
        // No env set in tests: fall back to wanted.
        assert_eq!(default_trials(42), 42);
    }
}

//! A dependency-free micro-benchmark harness with a Criterion-shaped
//! API.
//!
//! The workspace builds fully offline, so the `benches/` targets cannot
//! link the external `criterion` crate. This module provides the small
//! slice of its API the benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`) backed by a
//! plain warmup-then-measure wall-clock loop, printing one line per
//! benchmark. Budgets are tunable with `SIFT_BENCH_MS` (measure window
//! per benchmark, default 200).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level handle mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchGroup {
        BenchGroup {
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named benchmark id, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one id.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchGroup {
    name: String,
    sample_size: Option<usize>,
}

impl BenchGroup {
    /// Caps the number of measured samples (Criterion compatibility; the
    /// wall-clock budget usually binds first).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Runs and times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    sample_cap: Option<usize>,
    samples: u64,
    elapsed: Duration,
}

fn measure_budget() -> Duration {
    let ms = std::env::var("SIFT_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

impl Bencher {
    fn new(sample_cap: Option<usize>) -> Self {
        Self {
            sample_cap,
            samples: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Calls `f` repeatedly — a short warmup, then measured iterations
    /// until the wall-clock budget (or the sample cap) is exhausted.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let warmup_until = Instant::now() + measure_budget() / 10;
        let mut warmups = 0u64;
        while Instant::now() < warmup_until || warmups < 2 {
            black_box(f());
            warmups += 1;
        }
        let budget = measure_budget();
        let cap = self.sample_cap.map_or(u64::MAX, |c| c as u64);
        let start = Instant::now();
        let mut samples = 0u64;
        while samples < cap {
            black_box(f());
            samples += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.samples = samples;
        self.elapsed = start.elapsed();
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples == 0 {
            println!("{group}/{id:<40} (not measured)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.samples as f64;
        println!(
            "{group}/{id:<40} {:>12}/iter  ({} iters)",
            format_time(per_iter),
            self.samples
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions
/// into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::microbench::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the entry point for a
/// `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($group:path) => {
        fn main() {
            $group();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        std::env::set_var("SIFT_BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(10);
        let mut runs = 0u64;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(runs >= 2);
        std::env::remove_var("SIFT_BENCH_MS");
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with("s"));
    }
}

//! A dependency-free micro-benchmark harness with a Criterion-shaped
//! API.
//!
//! The workspace builds fully offline, so the `benches/` targets cannot
//! link the external `criterion` crate. This module provides the small
//! slice of its API the benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`) backed by a
//! plain warmup-then-measure wall-clock loop, printing one line per
//! benchmark.
//!
//! Measurement splits each benchmark's budget into short batches and
//! reports the **median** batch's per-iteration time, which shrugs off
//! one-sided scheduling noise far better than a single long mean.
//!
//! Configuration is injected, not global: [`Criterion::with_budget`]
//! takes the per-benchmark measure window directly (tests use this —
//! nothing here mutates the process environment).
//! [`Criterion::from_env`] (what [`criterion_group!`] uses) reads
//!
//! * `SIFT_BENCH_MS` — measure window per benchmark in ms, default 200;
//! * `SIFT_BENCH_JSON` — if set, a path to which the run's results are
//!   written as machine-readable JSON (one file per bench target; the
//!   file is overwritten, so point different targets at different
//!   paths or run one target per file). Cargo runs bench binaries with
//!   the *package* directory as cwd, so pass an absolute path to land
//!   the file somewhere predictable (`just bench-json` does).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (first path segment of the printed id).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median batch per-iteration time, in nanoseconds.
    pub median_ns: f64,
    /// Total measured iterations across all batches.
    pub samples: u64,
    /// Worker threads driving the benchmarked object, when the
    /// benchmark is a multi-threaded contention run (set via
    /// [`BenchGroup::threads`]); `None` for single-threaded benches.
    pub threads: Option<u64>,
    /// Thread-placement policy of those workers (set via
    /// [`BenchGroup::pinning`]), e.g. `"cores"` when each worker is
    /// pinned round-robin to a core, `"none"` when the scheduler
    /// places them. `None` for single-threaded benches.
    pub pinning: Option<String>,
}

/// Top-level handle mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Criterion {
    /// Builds a harness with an explicit per-benchmark measure budget.
    pub fn with_budget(budget: Duration) -> Self {
        Self {
            budget,
            results: Vec::new(),
        }
    }

    /// Builds a harness configured from `SIFT_BENCH_MS` (default 200ms
    /// per benchmark).
    pub fn from_env() -> Self {
        let ms = std::env::var("SIFT_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        Self::with_budget(Duration::from_millis(ms))
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchGroup<'_> {
        BenchGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            threads: None,
            pinning: None,
        }
    }

    /// All results measured so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes results as JSON to the path named by `SIFT_BENCH_JSON`,
    /// if that variable is set. Called by [`criterion_main!`] after all
    /// groups run; harmless to call when the variable is absent.
    pub fn write_json_if_requested(&self) {
        let Ok(path) = std::env::var("SIFT_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        match std::fs::write(&path, results_to_json(&self.results)) {
            Ok(()) => eprintln!("wrote {} bench results to {path}", self.results.len()),
            Err(e) => eprintln!("failed to write bench json to {path}: {e}"),
        }
    }

    /// Writes the observation report — the substrate's contention
    /// counters plus anything recorded through [`crate::obs`] — to the
    /// path named by `SIFT_BENCH_OBS_JSON`, if set. The `substrate.*`
    /// values are all zero unless the build carries the `obs` feature
    /// (`just bench-obs` turns both on). Called by [`criterion_main!`]
    /// after all groups run.
    pub fn write_obs_json_if_requested(&self) {
        let Ok(path) = std::env::var("SIFT_BENCH_OBS_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        match crate::obs::write_json(std::path::Path::new(&path)) {
            Ok(()) => eprintln!("wrote bench observations to {path}"),
            Err(e) => eprintln!("failed to write bench observations to {path}: {e}"),
        }
    }
}

/// Renders results as a stable, dependency-free JSON document. The
/// `threads`/`pinning` keys appear only on rows that declared them, so
/// single-threaded rows stay unchanged.
fn results_to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let mut row = format!(
            "    {{\"group\": {}, \"id\": {}, \"median_ns\": {:.1}, \"samples\": {}",
            json_string(&r.group),
            json_string(&r.id),
            r.median_ns,
            r.samples
        );
        if let Some(t) = r.threads {
            row.push_str(&format!(", \"threads\": {t}"));
        }
        if let Some(p) = &r.pinning {
            row.push_str(&format!(", \"pinning\": {}", json_string(p)));
        }
        out.push_str(&format!("{row}}}{sep}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A named benchmark id, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one id.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    threads: Option<u64>,
    pinning: Option<String>,
}

impl BenchGroup<'_> {
    /// Caps the number of measured samples (Criterion compatibility; the
    /// wall-clock budget usually binds first).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares the worker-thread count recorded on subsequently run
    /// benchmarks of this group (a thread-sweep sets it before each
    /// run).
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.threads = Some(n as u64);
        self
    }

    /// Declares the thread-placement policy recorded on subsequently
    /// run benchmarks of this group.
    pub fn pinning(&mut self, policy: impl Into<String>) -> &mut Self {
        self.pinning = Some(policy.into());
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.budget, self.sample_size);
        f(&mut b);
        self.record(&id.to_string(), &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.budget, self.sample_size);
        f(&mut b, input);
        let id = id.id.clone();
        self.record(&id, &b);
        self
    }

    fn record(&mut self, id: &str, b: &Bencher) {
        if b.samples == 0 {
            println!("{}/{id:<40} (not measured)", self.name);
            return;
        }
        println!(
            "{}/{id:<40} {:>12}/iter  ({} iters)",
            self.name,
            format_time(b.median_ns / 1e9),
            b.samples
        );
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            id: id.to_string(),
            median_ns: b.median_ns,
            samples: b.samples,
            threads: self.threads,
            pinning: self.pinning.clone(),
        });
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Batches per measure budget; the reported figure is the median batch.
const BATCHES: u32 = 15;

/// Runs and times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    sample_cap: Option<usize>,
    samples: u64,
    median_ns: f64,
}

impl Bencher {
    fn new(budget: Duration, sample_cap: Option<usize>) -> Self {
        Self {
            budget,
            sample_cap,
            samples: 0,
            median_ns: 0.0,
        }
    }

    /// Calls `f` repeatedly — a short warmup, then measured batches
    /// until the wall-clock budget (or the sample cap) is exhausted.
    /// The recorded figure is the median batch's per-iteration time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let warmup_until = Instant::now() + self.budget / 10;
        let mut warmups = 0u64;
        while Instant::now() < warmup_until || warmups < 2 {
            black_box(f());
            warmups += 1;
        }
        let cap = self.sample_cap.map_or(u64::MAX, |c| c as u64);
        let window = self.budget / BATCHES;
        let mut batch_ns: Vec<f64> = Vec::with_capacity(BATCHES as usize);
        let mut total: u64 = 0;
        let overall_start = Instant::now();
        'outer: for _ in 0..BATCHES {
            let start = Instant::now();
            let mut iters = 0u64;
            loop {
                black_box(f());
                iters += 1;
                total += 1;
                if start.elapsed() >= window {
                    break;
                }
                if total >= cap {
                    batch_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
                    break 'outer;
                }
            }
            batch_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
            if total >= cap || overall_start.elapsed() >= self.budget {
                break;
            }
        }
        batch_ns.sort_by(|a, b| a.total_cmp(b));
        self.samples = total;
        self.median_ns = batch_ns[batch_ns.len() / 2];
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions
/// into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::microbench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the entry point for a
/// `harness = false` bench target. Writes the JSON results file if
/// `SIFT_BENCH_JSON` is set and the observation report if
/// `SIFT_BENCH_OBS_JSON` is set.
#[macro_export]
macro_rules! criterion_main {
    ($group:path) => {
        fn main() {
            let mut c = $crate::microbench::Criterion::from_env();
            $group(&mut c);
            c.write_json_if_requested();
            c.write_obs_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::with_budget(Duration::from_millis(5));
        let mut g = c.benchmark_group("test");
        g.sample_size(10);
        let mut runs = 0u64;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.threads(8).pinning("cores");
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(runs >= 2);
        let results = c.results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].group, "test");
        assert_eq!(results[0].id, "noop");
        assert!(results[0].samples >= 1 && results[0].samples <= 10);
        assert_eq!(
            (results[0].threads, results[0].pinning.as_deref()),
            (None, None),
            "rows before the declaration stay unannotated"
        );
        assert_eq!(results[1].id, "param/4");
        assert!(results[1].median_ns >= 0.0);
        assert_eq!(results[1].threads, Some(8));
        assert_eq!(results[1].pinning.as_deref(), Some("cores"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let results = vec![
            BenchResult {
                group: "g".into(),
                id: "a/1".into(),
                median_ns: 12.34,
                samples: 100,
                threads: Some(8),
                pinning: Some("cores".into()),
            },
            BenchResult {
                group: "g".into(),
                id: "quote\"d".into(),
                median_ns: 5.0,
                samples: 7,
                threads: None,
                pinning: None,
            },
        ];
        let json = results_to_json(&results);
        assert!(json.contains("\"median_ns\": 12.3"));
        assert!(json.contains("\"samples\": 100"));
        assert!(json.contains("\"threads\": 8"));
        assert!(json.contains("\"pinning\": \"cores\""));
        assert!(json.contains("quote\\\"d"));
        assert!(json.trim_end().ends_with('}'));
        // Exactly one separator between the two entries, none after the
        // last.
        assert_eq!(json.matches("},\n").count(), 1);
        // The optional keys appear only on the row that declared them.
        assert_eq!(json.matches("\"threads\"").count(), 1);
        assert_eq!(json.matches("\"pinning\"").count(), 1);
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with("s"));
    }
}

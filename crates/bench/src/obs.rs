//! Harness-side observation collection behind `--obs-json`.
//!
//! When enabled (by the `--obs-json` flag, the `SIFT_OBS_JSON`
//! environment variable, or [`enable`]), every trial that flows through
//! [`runner`](crate::runner) folds its step accounting into a
//! process-global [`ObsReport`]; [`collect`] additionally folds in the
//! substrate's contention counters
//! ([`sift_shmem::obs::snapshot`]), and [`finish`] writes the merged
//! report as JSON. Disabled (the default), recording is a single
//! relaxed atomic load per trial.
//!
//! # Determinism
//!
//! Worker threads record trials in completion order, which varies with
//! `SIFT_THREADS` — but [`ObsReport::merge`] is commutative and
//! associative (property-tested in `sift-obs`), the trial set itself
//! depends only on `(master_seed, trial_index)`, and every value
//! recorded here is an integer, so the merged report — and its JSON
//! rendering — is byte-identical at any thread count. (Substrate
//! counters are genuinely schedule-dependent; they are all zero unless
//! the substrate was built with the `obs` feature, which the
//! determinism suite does not enable.)

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use sift_obs::ObsReport;
use sift_sim::Metrics;

use crate::runner::Trial;
use sift_sim::StopReason;

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: Mutex<Option<ObsReport>> = Mutex::new(None);
static OUTPUT: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Counter names per op kind, indexed by
/// [`sift_sim::metrics::op_kind_index`].
const OP_NAMES: [&str; 6] = [
    "register_read",
    "register_write",
    "snapshot_update",
    "snapshot_scan",
    "max_read",
    "max_write",
];

/// Turns trial recording on and clears previously collected
/// observations (including the substrate's counters, so one process
/// can take several measurement windows).
pub fn enable() {
    *COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()) = Some(ObsReport::new());
    sift_shmem::obs::reset();
    ENABLED.store(true, Ordering::Release);
}

/// Whether trial recording is on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Enables recording and registers `path` as the file [`finish`]
/// writes.
pub fn set_output(path: impl Into<PathBuf>) {
    enable();
    *OUTPUT.lock().unwrap_or_else(|e| e.into_inner()) = Some(path.into());
}

/// Folds one trial into the global report (no-op unless enabled).
/// Called by the shared trial runner; custom experiments that bypass it
/// can call this — or [`record_metrics`] / [`record_report`] — from
/// their own per-trial code.
pub fn record_trial(trial: &Trial) {
    if !is_enabled() {
        return;
    }
    let mut r = metrics_report(&trial.metrics);
    r.add_count("trials.agreed", trial.agreed as u64);
    r.add_count(
        "trials.truncated",
        (trial.stop_reason != StopReason::AllDone) as u64,
    );
    r.record_hist("trial.distinct_outputs", trial.distinct_outputs as u64);
    if let Some(survivors) = &trial.survivors {
        r.record_hist("trial.rounds", survivors.len() as u64);
        r.observe_max("sim.max_rounds", survivors.len() as u64);
    }
    record_report(&r);
}

/// Folds one run's step accounting into the global report (no-op
/// unless enabled).
pub fn record_metrics(metrics: &Metrics) {
    if !is_enabled() {
        return;
    }
    record_report(&metrics_report(metrics));
}

/// Merges an arbitrary pre-built report (no-op unless enabled).
pub fn record_report(report: &ObsReport) {
    if !is_enabled() {
        return;
    }
    COLLECTOR
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get_or_insert_with(ObsReport::new)
        .merge(report);
}

fn metrics_report(metrics: &Metrics) -> ObsReport {
    let mut r = ObsReport::new();
    r.add_count("trials", 1);
    r.add_count("sim.total_steps", metrics.total_steps);
    r.add_count("sim.total_ops", metrics.total_ops);
    r.add_count("sim.skipped_slots", metrics.skipped_slots);
    for (name, &count) in OP_NAMES.iter().zip(&metrics.ops_by_kind) {
        if count > 0 {
            r.add_count(&format!("sim.ops.{name}"), count);
        }
    }
    r.observe_max("sim.max_total_steps", metrics.total_steps);
    r.observe_max("sim.max_individual_steps", metrics.max_individual_steps());
    r.record_hist("trial.total_steps", metrics.total_steps);
    r.record_hist("trial.max_individual_steps", metrics.max_individual_steps());
    r
}

/// The merged observations so far: everything recorded through this
/// module plus the substrate's current counters (`substrate.*` keys —
/// all zero unless `sift-shmem` was built with its `obs` feature).
pub fn collect() -> ObsReport {
    let mut report = COLLECTOR
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_default();
    report.merge(&sift_shmem::obs::snapshot().to_report());
    report
}

/// Writes the merged observations as JSON to `path`.
pub fn write_json(path: &Path) -> io::Result<()> {
    std::fs::write(path, collect().to_json())
}

/// Writes the observation file registered with [`set_output`], if any.
///
/// Returns the path written (`None` when no output was requested) so
/// the caller owns the user-facing success/error reporting; the I/O
/// error of an unwritable path comes back instead of being swallowed.
///
/// # Errors
///
/// Propagates the underlying filesystem error (missing parent
/// directory, parent is a file, permission, invalid path, ...).
pub fn try_finish() -> io::Result<Option<PathBuf>> {
    let path = OUTPUT.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let Some(path) = path else {
        return Ok(None);
    };
    write_json(&path)?;
    Ok(Some(path))
}

/// Writes the observation file registered with [`set_output`], if any,
/// reporting the outcome on stderr and continuing on failure. Kept for
/// callers that treat observability as best-effort; `exp_*` binaries go
/// through [`cli::finish`](crate::cli::finish), which exits nonzero on
/// an unwritable path instead.
pub fn finish() {
    match try_finish() {
        Ok(Some(path)) => eprintln!("wrote observations to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("failed to write observations: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_sim::OpKind;

    /// Serializes tests that toggle the global collector (shared with
    /// other test binaries' threads only within this process).
    fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn sample_metrics() -> Metrics {
        let mut m = Metrics::new(2);
        // `record` is crate-private to sift-sim; set the public counters
        // directly.
        m.total_steps = 10;
        m.total_ops = 8;
        m.skipped_slots = 1;
        m.per_process_steps = vec![6, 4];
        m.per_process_ops = vec![4, 4];
        m.ops_by_kind = [2, 2, 0, 0, 1, 3];
        m
    }

    /// The metrics-to-report mapping, exercised as a pure function (no
    /// globals, so assertions are exact).
    #[test]
    fn metrics_report_maps_every_field() {
        let r = metrics_report(&sample_metrics());
        assert_eq!(r.count("trials"), 1);
        assert_eq!(r.count("sim.total_steps"), 10);
        assert_eq!(r.count("sim.total_ops"), 8);
        assert_eq!(r.count("sim.skipped_slots"), 1);
        assert_eq!(r.count("sim.ops.max_write"), 3);
        assert_eq!(r.count("sim.ops.register_read"), 2);
        // Zero-count kinds are omitted.
        assert_eq!(r.count("sim.ops.snapshot_scan"), 0);
        assert_eq!(r.max("sim.max_total_steps"), 10);
        assert_eq!(r.max("sim.max_individual_steps"), 6);
        assert_eq!(r.hist("trial.total_steps").unwrap().count(), 1);
    }

    // The global-collector tests below assert only on keys unique to
    // this module's tests: other tests of this binary run trials
    // concurrently and may fold standard `trials`/`sim.*` keys into the
    // collector while it is enabled.

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _guard = obs_lock();
        ENABLED.store(false, Ordering::Release);
        let mut unique = ObsReport::new();
        unique.add_count("test.disabled_marker", 1);
        record_report(&unique);
        record_metrics(&sample_metrics());
        assert_eq!(collect().count("test.disabled_marker"), 0);
    }

    #[test]
    fn enabled_recording_reaches_collector() {
        let _guard = obs_lock();
        enable();
        let mut unique = ObsReport::new();
        unique.add_count("test.enabled_marker", 2);
        unique.record_hist("test.enabled_hist", 40);
        record_report(&unique);
        record_report(&unique);
        let report = collect();
        assert_eq!(report.count("test.enabled_marker"), 4);
        assert_eq!(report.hist("test.enabled_hist").unwrap().count(), 2);
        // The substrate fold contributes its (constant) enabled marker.
        assert_eq!(
            report.count("substrate.enabled"),
            sift_shmem::obs::enabled() as u64
        );
        ENABLED.store(false, Ordering::Release);
    }

    #[test]
    fn enable_clears_previous_window() {
        let _guard = obs_lock();
        enable();
        let mut unique = ObsReport::new();
        unique.add_count("test.stale_marker", 1);
        record_report(&unique);
        enable();
        assert_eq!(collect().count("test.stale_marker"), 0);
        ENABLED.store(false, Ordering::Release);
    }

    #[test]
    fn op_names_align_with_kind_indices() {
        use sift_sim::metrics::op_kind_index;
        let kinds = [
            OpKind::RegisterRead,
            OpKind::RegisterWrite,
            OpKind::SnapshotUpdate,
            OpKind::SnapshotScan,
            OpKind::MaxRead,
            OpKind::MaxWrite,
        ];
        for kind in kinds {
            assert_eq!(
                OP_NAMES[op_kind_index(kind)],
                sift_sim::obs::op_kind_name(kind),
                "bench obs names must match the simulator's"
            );
        }
    }

    /// Clears the registered output path (tests only — production code
    /// sets it once per process).
    fn clear_output() {
        *OUTPUT.lock().unwrap_or_else(|e| e.into_inner()) = None;
        ENABLED.store(false, Ordering::Release);
    }

    #[test]
    fn try_finish_without_an_output_is_a_silent_noop() {
        let _guard = obs_lock();
        clear_output();
        assert!(matches!(try_finish(), Ok(None)));
    }

    #[test]
    fn try_finish_writes_the_registered_file() {
        let _guard = obs_lock();
        let dir = std::env::temp_dir().join(format!("sift-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("obs.json");
        set_output(&path);
        let written = try_finish().unwrap().expect("an output was registered");
        assert_eq!(written, path);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with('{'), "JSON object expected, got: {body}");
        std::fs::remove_dir_all(&dir).unwrap();
        clear_output();
    }

    #[test]
    fn try_finish_reports_a_parent_that_is_a_file() {
        let _guard = obs_lock();
        let blocker = std::env::temp_dir().join(format!("sift-obs-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        // The parent of the output path is a regular file: the write
        // must surface the OS error, not panic and not "succeed".
        set_output(blocker.join("obs.json"));
        let err = try_finish().expect_err("writing under a file must fail");
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::NotADirectory | io::ErrorKind::NotFound | io::ErrorKind::Other
            ),
            "unexpected error kind: {err:?}"
        );
        std::fs::remove_file(&blocker).unwrap();
        clear_output();
    }

    #[test]
    fn try_finish_reports_an_invalid_path() {
        let _guard = obs_lock();
        // A NUL byte is invalid in paths on every supported platform,
        // independent of privileges (chmod tricks are useless as root).
        set_output("sift-obs-\0-invalid.json");
        assert!(try_finish().is_err());
        clear_output();
    }
}

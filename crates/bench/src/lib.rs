//! # sift-bench — experiment harness
//!
//! Regenerates every table of the evaluation (see `DESIGN.md`'s
//! experiment index E1–E21 and `EXPERIMENTS.md` for recorded results).
//! Each `exp_*` binary prints one experiment's tables; `exp_all` runs
//! the whole suite. Trial counts scale with the `SIFT_TRIALS`
//! environment variable; run in `--release`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod conformance;
pub mod exec;
pub mod experiments;
pub mod fuzz;
pub mod microbench;
pub mod obs;
pub mod runner;
pub mod service_load;
pub mod stats;
pub mod table;

pub use conformance::{all_pass, ClaimResult};
pub use exec::{map_reduce, Batch, Merge, TrialSpec};
pub use runner::{default_trials, run_trial, run_trial_with_history, Trial};
pub use stats::{Last, Peak, RateCounter, RoundExcess, Summary, Truncations, Welford};
pub use table::Table;

//! Event-engine throughput at scale (in-tree microbench harness).
//!
//! Two groups, each swept over n ∈ {10³, 10⁵, 10⁶}:
//!
//! * `engine_events` — one full round-robin round over `n` lazily
//!   materialized processes, each executing one register write per
//!   slot. One measured iteration schedules exactly `n` events, so
//!   events/second is `n / median_iteration_time`.
//! * `sifting_round` — one full round of Algorithm 2 (every
//!   participant writes its persona to the round register and reads it
//!   back: `2n` scheduled events) on the lazy engine. This is the
//!   tracked headline number: the n = 10⁶ row must stay in single-digit
//!   seconds.
//!
//! `just bench-json` runs this target with
//! `SIFT_BENCH_JSON=BENCH_sim.json` to refresh the tracked baseline;
//! the CI `sim-scale-smoke` job runs the n = 10⁵ tier on every PR and
//! the full 10⁶ tier nightly.

use sift_bench::microbench::{BenchmarkId, Criterion};
use sift_bench::{criterion_group, criterion_main};
use sift_core::{Conciliator, Epsilon, SiftingConciliator};
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::RoundRobin;
use sift_sim::{Engine, LayoutBuilder, Op, OpResult, Process, RegisterId, Step, StopReason};

/// Process scales for both groups. Override with `SIFT_BENCH_MAX_N` to
/// cap the sweep (the PR smoke tier stops at 10⁵; nightly runs all
/// three).
const SIZES: [usize; 3] = [1_000, 100_000, 1_000_000];

fn sizes() -> Vec<usize> {
    let cap = std::env::var("SIFT_BENCH_MAX_N")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(usize::MAX);
    SIZES.iter().copied().filter(|&n| n <= cap).collect()
}

/// Writes its id to its own register on every slot, forever — the
/// minimal always-live load, so a slot-limited run measures pure
/// engine scheduling throughput.
struct Writer {
    reg: RegisterId,
    id: u64,
}

impl Process for Writer {
    type Value = u64;
    type Output = u64;

    fn step(&mut self, _prev: Option<OpResult<u64>>) -> Step<u64, u64> {
        Step::Issue(Op::RegisterWrite(self.reg, self.id))
    }
}

fn bench_engine_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_events");
    for n in sizes() {
        // One register per process, addressed by index (the layout is
        // built once; the paged memory materializes only written pages).
        let mut b = LayoutBuilder::new();
        for _ in 0..n {
            b.register();
        }
        let layout = b.build();
        group.bench_with_input(BenchmarkId::new("round_robin", n), &n, |bench, &n| {
            bench.iter(|| {
                let mut engine = Engine::lazy(&layout, n, |pid| Writer {
                    reg: RegisterId::from_index(pid.index()),
                    id: pid.index() as u64,
                });
                engine.limit_slots(n as u64);
                let report = engine.run_sparse(RoundRobin::new(n));
                assert_eq!(report.stop_reason, StopReason::SlotLimit);
                assert_eq!(report.metrics.total_ops, n as u64);
                report.metrics.total_ops
            });
        });
    }
    group.finish();
}

fn bench_sifting_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("sifting_round");
    for n in sizes() {
        let mut b = LayoutBuilder::new();
        let conciliator = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        group.bench_with_input(BenchmarkId::new("alg2_lazy", n), &n, |bench, &n| {
            let mut seed = 0u64;
            bench.iter(|| {
                seed += 1;
                let split = SeedSplitter::new(seed);
                let c = conciliator.clone();
                let mut engine = Engine::lazy(&layout, n, move |pid| {
                    let mut rng = split.stream("process", pid.index() as u64);
                    c.participant(pid, pid.index() as u64, &mut rng)
                });
                // One full round: every participant writes the round-0
                // register and reads it back.
                engine.limit_slots(2 * n as u64);
                let report = engine.run_sparse(RoundRobin::new(n));
                assert_eq!(report.metrics.total_ops, 2 * n as u64);
                report.metrics.total_ops
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_events, bench_sifting_round);
criterion_main!(benches);

//! Multi-threaded contention benches: lock-free vs lock-based
//! substrate objects under a mixed read/write load.
//!
//! Worker threads are spawned once per benchmark and coordinated with
//! barriers; each measured iteration is one *round* in which every
//! worker drives a fixed, interleaved operation sequence through one
//! shared object. All workers start a round together, so the substrates
//! see genuine sustained interference (not a spawn-staggered sequence
//! of solo phases), and the reported per-iteration time is inversely
//! proportional to 8-thread throughput. `just bench-json` runs this
//! target with `SIFT_BENCH_JSON=BENCH_shmem.json` to refresh the
//! tracked baseline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::thread;

use sift_bench::microbench::{Bencher, Criterion};
use sift_bench::{criterion_group, criterion_main};
use sift_shmem::max_register::{LockFreeMaxRegister, LockMaxRegister};
use sift_shmem::register::{LockFreeRegister, LockRegister};
use sift_shmem::snapshot::{CoarseSnapshot, LockFreeSnapshot};

/// Worker threads per benchmark.
const THREADS: usize = 8;
/// Operations per worker per round.
const OPS: usize = 2048;
/// One in this many operations is a write; the rest read. Protocols in
/// this repository are scan-heavy — a process polls shared state at
/// every step of a phase but publishes once per phase.
const WRITE_EVERY: usize = 64;
/// Snapshot components: one per simulated process, at the scale the
/// experiment harness actually runs (max registers and registers are
/// single cells).
const COMPONENTS: usize = 128;

/// Runs `op(thread, k)` for `OPS` values of `k` on each of [`THREADS`]
/// persistent workers, once per measured iteration, with all workers
/// released into the round together.
fn bench_rounds(b: &mut Bencher, op: impl Fn(usize, usize) + Sync) {
    let start = Barrier::new(THREADS + 1);
    let end = Barrier::new(THREADS + 1);
    let stop = AtomicBool::new(false);
    thread::scope(|scope| {
        for t in 0..THREADS {
            let (start, end, stop, op) = (&start, &end, &stop, &op);
            scope.spawn(move || loop {
                start.wait();
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                for k in 0..OPS {
                    op(t, k);
                }
                end.wait();
            });
        }
        b.iter(|| {
            start.wait();
            end.wait();
        });
        // Release the workers from their final `start.wait`.
        stop.store(true, Ordering::Relaxed);
        start.wait();
    });
}

fn bench_snapshot_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_contention");
    group.bench_function("lockfree/t8", |b| {
        let snap: LockFreeSnapshot<u64> = LockFreeSnapshot::new(COMPONENTS);
        bench_rounds(b, |t, k| {
            if k % WRITE_EVERY == 0 {
                snap.update(t % COMPONENTS, (t * OPS + k) as u64);
            } else {
                std::hint::black_box(snap.scan());
            }
        });
    });
    group.bench_function("coarse/t8", |b| {
        let snap: CoarseSnapshot<u64> = CoarseSnapshot::new(COMPONENTS);
        bench_rounds(b, |t, k| {
            if k % WRITE_EVERY == 0 {
                snap.update(t % COMPONENTS, (t * OPS + k) as u64);
            } else {
                std::hint::black_box(snap.scan());
            }
        });
    });
    group.finish();
}

fn bench_register_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("register_contention");
    group.bench_function("lockfree/t8", |b| {
        let reg: LockFreeRegister<u64> = LockFreeRegister::new();
        bench_rounds(b, |t, k| {
            if k % WRITE_EVERY == 0 {
                reg.write((t * OPS + k) as u64);
            } else {
                std::hint::black_box(reg.read());
            }
        });
    });
    group.bench_function("lock/t8", |b| {
        let reg: LockRegister<u64> = LockRegister::new();
        bench_rounds(b, |t, k| {
            if k % WRITE_EVERY == 0 {
                reg.write((t * OPS + k) as u64);
            } else {
                std::hint::black_box(reg.read());
            }
        });
    });
    group.finish();
}

fn bench_max_register_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_register_contention");
    group.bench_function("lockfree/t8", |b| {
        let max: LockFreeMaxRegister<u64> = LockFreeMaxRegister::new();
        bench_rounds(b, |t, k| {
            if k % WRITE_EVERY == 0 {
                max.write((t * OPS + k) as u64, t as u64);
            } else {
                std::hint::black_box(max.read());
            }
        });
    });
    group.bench_function("lock/t8", |b| {
        let max: LockMaxRegister<u64> = LockMaxRegister::new();
        bench_rounds(b, |t, k| {
            if k % WRITE_EVERY == 0 {
                max.write((t * OPS + k) as u64, t as u64);
            } else {
                std::hint::black_box(max.read());
            }
        });
    });
    group.finish();
}

fn bench_quiescent_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("quiescent_scan");
    group.bench_function("lockfree/n128", |b| {
        let snap: LockFreeSnapshot<u64> = LockFreeSnapshot::new(COMPONENTS);
        for i in 0..COMPONENTS {
            snap.update(i, i as u64);
        }
        b.iter(|| snap.scan());
    });
    group.bench_function("coarse/n128", |b| {
        let snap: CoarseSnapshot<u64> = CoarseSnapshot::new(COMPONENTS);
        for i in 0..COMPONENTS {
            snap.update(i, i as u64);
        }
        b.iter(|| snap.scan());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot_contention,
    bench_register_contention,
    bench_max_register_contention,
    bench_quiescent_scan,
);
criterion_main!(benches);

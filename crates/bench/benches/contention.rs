//! Multi-threaded contention benches: lock-free vs lock-based
//! substrate objects under a mixed read/write load, swept across
//! thread counts.
//!
//! Worker threads are spawned once per benchmark, pinned round-robin
//! to cores (when the platform supports it — each row's `pinning`
//! field records whether it did), and coordinated with barriers; each
//! measured iteration is one *round* in which every worker drives a
//! fixed, interleaved operation sequence through one shared object.
//! All workers start a round together, so the substrates see genuine
//! sustained interference (not a spawn-staggered sequence of solo
//! phases), and the reported per-iteration time is inversely
//! proportional to t-thread throughput.
//!
//! The contention groups sweep `t ∈ {2, 4, 8, 16}` by default;
//! `SIFT_BENCH_THREADS` (a comma-separated list) overrides the sweep —
//! CI's bench-smoke runs the `2,8` subset. Every contention row in the
//! JSON output carries explicit `threads` and `pinning` fields, so the
//! sweep is machine-diffable without parsing ids. `just bench-json`
//! runs this target with `SIFT_BENCH_JSON=BENCH_shmem.json` to refresh
//! the tracked baseline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::thread;

use sift_bench::microbench::{Bencher, Criterion};
use sift_bench::{criterion_group, criterion_main};
use sift_shmem::affinity::pin_to_core;
use sift_shmem::max_register::{LockFreeMaxRegister, LockMaxRegister};
use sift_shmem::register::{LockFreeRegister, LockRegister};
use sift_shmem::snapshot::{CoarseSnapshot, LockFreeSnapshot};

/// Operations per worker per round.
const OPS: usize = 2048;
/// One in this many operations is a write; the rest read. Protocols in
/// this repository are scan-heavy — a process polls shared state at
/// every step of a phase but publishes once per phase.
const WRITE_EVERY: usize = 64;
/// Snapshot components: one per simulated process, at the scale the
/// experiment harness actually runs (max registers and registers are
/// single cells).
const COMPONENTS: usize = 128;

/// The contention sweep: `SIFT_BENCH_THREADS` as a comma-separated
/// list, defaulting to {2, 4, 8, 16}.
fn thread_counts() -> Vec<usize> {
    let parsed = std::env::var("SIFT_BENCH_THREADS").ok().map(|v| {
        v.split(',')
            .filter_map(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .collect::<Vec<_>>()
    });
    match parsed {
        Some(ts) if !ts.is_empty() => ts,
        _ => vec![2, 4, 8, 16],
    }
}

/// The pinning policy this host supports, probed once on a scratch
/// thread: `"cores"` when workers can be pinned round-robin to cores,
/// `"none"` when affinity calls fail (non-Linux or restricted).
fn pinning_policy() -> &'static str {
    if thread::spawn(|| pin_to_core(0)).join().unwrap_or(false) {
        "cores"
    } else {
        "none"
    }
}

/// Runs `op(thread, k)` for `OPS` values of `k` on each of `threads`
/// persistent workers, once per measured iteration, with all workers
/// released into the round together. Workers are pinned round-robin
/// across the host's cores when `pin` holds.
fn bench_rounds(b: &mut Bencher, threads: usize, pin: bool, op: impl Fn(usize, usize) + Sync) {
    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    let start = Barrier::new(threads + 1);
    let end = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);
    thread::scope(|scope| {
        for t in 0..threads {
            let (start, end, stop, op) = (&start, &end, &stop, &op);
            scope.spawn(move || {
                if pin {
                    pin_to_core(t % cores);
                }
                loop {
                    start.wait();
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    for k in 0..OPS {
                        op(t, k);
                    }
                    end.wait();
                }
            });
        }
        b.iter(|| {
            start.wait();
            end.wait();
        });
        // Release the workers from their final `start.wait`.
        stop.store(true, Ordering::Relaxed);
        start.wait();
    });
}

fn bench_snapshot_contention(c: &mut Criterion) {
    let policy = pinning_policy();
    let pin = policy == "cores";
    let mut group = c.benchmark_group("snapshot_contention");
    group.pinning(policy);
    for t in thread_counts() {
        group.threads(t);
        group.bench_function(format!("lockfree/t{t}"), |b| {
            let snap: LockFreeSnapshot<u64> = LockFreeSnapshot::new(COMPONENTS);
            bench_rounds(b, t, pin, |t, k| {
                if k % WRITE_EVERY == 0 {
                    snap.update(t % COMPONENTS, (t * OPS + k) as u64);
                } else {
                    std::hint::black_box(snap.scan());
                }
            });
        });
        group.bench_function(format!("coarse/t{t}"), |b| {
            let snap: CoarseSnapshot<u64> = CoarseSnapshot::new(COMPONENTS);
            bench_rounds(b, t, pin, |t, k| {
                if k % WRITE_EVERY == 0 {
                    snap.update(t % COMPONENTS, (t * OPS + k) as u64);
                } else {
                    std::hint::black_box(snap.scan());
                }
            });
        });
    }
    group.finish();
}

fn bench_register_contention(c: &mut Criterion) {
    let policy = pinning_policy();
    let pin = policy == "cores";
    let mut group = c.benchmark_group("register_contention");
    group.pinning(policy);
    for t in thread_counts() {
        group.threads(t);
        group.bench_function(format!("lockfree/t{t}"), |b| {
            let reg: LockFreeRegister<u64> = LockFreeRegister::new();
            assert!(reg.is_inline(), "u64 registers must take the inline path");
            bench_rounds(b, t, pin, |t, k| {
                if k % WRITE_EVERY == 0 {
                    reg.write((t * OPS + k) as u64);
                } else {
                    std::hint::black_box(reg.read());
                }
            });
        });
        group.bench_function(format!("lock/t{t}"), |b| {
            let reg: LockRegister<u64> = LockRegister::new();
            bench_rounds(b, t, pin, |t, k| {
                if k % WRITE_EVERY == 0 {
                    reg.write((t * OPS + k) as u64);
                } else {
                    std::hint::black_box(reg.read());
                }
            });
        });
    }
    group.finish();
}

fn bench_max_register_contention(c: &mut Criterion) {
    let policy = pinning_policy();
    let pin = policy == "cores";
    let mut group = c.benchmark_group("max_register_contention");
    group.pinning(policy);
    for t in thread_counts() {
        group.threads(t);
        group.bench_function(format!("lockfree/t{t}"), |b| {
            let max: LockFreeMaxRegister<u64> = LockFreeMaxRegister::new();
            assert!(
                max.is_combining(),
                "u64 max registers must take the combining path"
            );
            bench_rounds(b, t, pin, |t, k| {
                if k % WRITE_EVERY == 0 {
                    max.write((t * OPS + k) as u64, t as u64);
                } else {
                    std::hint::black_box(max.read());
                }
            });
        });
        group.bench_function(format!("lock/t{t}"), |b| {
            let max: LockMaxRegister<u64> = LockMaxRegister::new();
            bench_rounds(b, t, pin, |t, k| {
                if k % WRITE_EVERY == 0 {
                    max.write((t * OPS + k) as u64, t as u64);
                } else {
                    std::hint::black_box(max.read());
                }
            });
        });
    }
    group.finish();
}

fn bench_quiescent_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("quiescent_scan");
    group.bench_function("lockfree/n128", |b| {
        let snap: LockFreeSnapshot<u64> = LockFreeSnapshot::new(COMPONENTS);
        for i in 0..COMPONENTS {
            snap.update(i, i as u64);
        }
        b.iter(|| snap.scan());
    });
    group.bench_function("coarse/n128", |b| {
        let snap: CoarseSnapshot<u64> = CoarseSnapshot::new(COMPONENTS);
        for i in 0..COMPONENTS {
            snap.update(i, i as u64);
        }
        b.iter(|| snap.scan());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot_contention,
    bench_register_contention,
    bench_max_register_contention,
    bench_quiescent_scan,
);
criterion_main!(benches);

//! Wall-clock benches (in-tree microbench harness): simulated-execution throughput of each
//! conciliator across n (mirrors experiments E3/E6/E7 in wall-clock
//! form).

use sift_bench::microbench::{BenchmarkId, Criterion};
use sift_bench::run_trial;
use sift_bench::{criterion_group, criterion_main};
use sift_core::{
    CilConciliator, EmbeddedConciliator, Epsilon, MaxConciliator, SiftingConciliator,
    SnapshotConciliator,
};
use sift_sim::schedule::ScheduleKind;

fn bench_conciliators(c: &mut Criterion) {
    let mut group = c.benchmark_group("conciliator_run");
    for &n in &[16usize, 256, 4096] {
        group.bench_with_input(BenchmarkId::new("alg1_snapshot", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_trial(n, seed, ScheduleKind::RoundRobin, |lb| {
                    SnapshotConciliator::allocate(lb, n, Epsilon::HALF)
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("alg1_max_register", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_trial(n, seed, ScheduleKind::RoundRobin, |lb| {
                    MaxConciliator::allocate(lb, n, Epsilon::HALF)
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("alg2_sifting", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_trial(n, seed, ScheduleKind::RoundRobin, |lb| {
                    SiftingConciliator::allocate(lb, n, Epsilon::HALF)
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("alg3_embedded", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_trial(n, seed, ScheduleKind::RoundRobin, |lb| {
                    EmbeddedConciliator::allocate(lb, n)
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("cil_baseline", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_trial(n, seed, ScheduleKind::RoundRobin, |lb| {
                    CilConciliator::allocate(lb, n)
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conciliators);
criterion_main!(benches);

//! Wall-clock benches (in-tree microbench harness): test-and-set cost (wall-clock form of E17).

use sift_bench::microbench::{BenchmarkId, Criterion};
use sift_bench::{criterion_group, criterion_main};
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::RandomInterleave;
use sift_sim::{Engine, LayoutBuilder, ProcessId};
use sift_tas::{SiftingTas, TournamentTas};

fn bench_tas(c: &mut Criterion) {
    let mut group = c.benchmark_group("test_and_set_run");
    for &n in &[16usize, 256] {
        group.bench_with_input(BenchmarkId::new("sifting_tas", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut builder = LayoutBuilder::new();
                let tas = SiftingTas::allocate(&mut builder, n);
                let layout = builder.build();
                let split = SeedSplitter::new(seed);
                let procs: Vec<_> = (0..n)
                    .map(|i| tas.participant(ProcessId(i), &mut split.stream("process", i as u64)))
                    .collect();
                Engine::new(&layout, procs).run(RandomInterleave::new(n, split.seed("schedule", 0)))
            });
        });
        group.bench_with_input(BenchmarkId::new("tournament_tas", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut builder = LayoutBuilder::new();
                let tas = TournamentTas::allocate(&mut builder, n);
                let layout = builder.build();
                let split = SeedSplitter::new(seed);
                let procs: Vec<_> = (0..n)
                    .map(|i| tas.participant(ProcessId(i), &mut split.stream("process", i as u64)))
                    .collect();
                Engine::new(&layout, procs).run(RandomInterleave::new(n, split.seed("schedule", 0)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tas);
criterion_main!(benches);

//! Wall-clock benches (in-tree microbench harness): adopt-commit object cost across the code space
//! (wall-clock form of experiment E14).

use sift_adopt_commit::{AdoptCommit, DigitAc, FlagsAc, GafniRegisterAc, GafniSnapshotAc};
use sift_bench::microbench::{BenchmarkId, Criterion};
use sift_bench::{criterion_group, criterion_main};
use sift_sim::schedule::RandomInterleave;
use sift_sim::{Engine, LayoutBuilder, ProcessId};

fn run_ac<A: AdoptCommit<u64>>(ac: &A, layout: &sift_sim::Layout, n: usize, seed: u64) {
    let procs: Vec<_> = (0..n)
        .map(|i| ac.proposer(ProcessId(i), (i % 3) as u64, (i % 3) as u64))
        .collect();
    let report = Engine::new(layout, procs).run(RandomInterleave::new(n, seed));
    assert!(report.all_decided());
}

fn bench_adopt_commit(c: &mut Criterion) {
    let n = 16;
    let mut group = c.benchmark_group("adopt_commit_run");
    for &m in &[16u64, 1024, 65_536] {
        if m <= 1024 {
            group.bench_with_input(BenchmarkId::new("flags", m), &m, |b, &m| {
                let mut builder = LayoutBuilder::new();
                let ac = FlagsAc::allocate(&mut builder, m as usize);
                let layout = builder.build();
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    run_ac(&ac, &layout, n, seed)
                });
            });
        }
        group.bench_with_input(BenchmarkId::new("digit_b2", m), &m, |b, &m| {
            let mut builder = LayoutBuilder::new();
            let ac = DigitAc::for_code_space(&mut builder, m, 2);
            let layout = builder.build();
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_ac(&ac, &layout, n, seed)
            });
        });
    }
    group.bench_function("gafni_snapshot_n16", |b| {
        let mut builder = LayoutBuilder::new();
        let ac = GafniSnapshotAc::<u64>::allocate(&mut builder, n, |v| *v);
        let layout = builder.build();
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_ac(&ac, &layout, n, seed)
        });
    });
    group.bench_function("gafni_register_n16", |b| {
        let mut builder = LayoutBuilder::new();
        let ac = GafniRegisterAc::<u64>::allocate(&mut builder, n, |v| *v);
        let layout = builder.build();
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_ac(&ac, &layout, n, seed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_adopt_commit);
criterion_main!(benches);

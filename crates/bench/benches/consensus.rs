//! Wall-clock benches (in-tree microbench harness): full consensus stacks end to end (wall-clock form
//! of experiments E8/E9).

use sift_bench::microbench::{BenchmarkId, Criterion};
use sift_bench::{criterion_group, criterion_main};
use sift_consensus::{
    cil_consensus, linear_work_consensus, max_register_consensus, sifting_consensus,
    snapshot_consensus,
};
use sift_core::Persona;
use sift_sim::rng::SeedSplitter;
use sift_sim::schedule::RandomInterleave;
use sift_sim::{Engine, LayoutBuilder, ProcessId};

fn run_consensus<C, A>(
    layout: &sift_sim::Layout,
    protocol: &sift_consensus::ConsensusProtocol<C, A>,
    n: usize,
    seed: u64,
) where
    C: sift_core::Conciliator,
    A: sift_adopt_commit::AdoptCommit<Persona>,
{
    let split = SeedSplitter::new(seed);
    let procs: Vec<_> = (0..n)
        .map(|i| {
            let mut rng = split.stream("process", i as u64);
            protocol.participant(ProcessId(i), (i % 4) as u64, &mut rng)
        })
        .collect();
    let report =
        Engine::new(layout, procs).run(RandomInterleave::new(n, split.seed("schedule", 0)));
    assert!(report.all_decided());
}

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_run");
    for &n in &[8usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("snapshot_cor1", n), &n, |b, &n| {
            let mut builder = LayoutBuilder::new();
            let p = snapshot_consensus(&mut builder, n);
            let layout = builder.build();
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_consensus(&layout, &p, n, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("max_register_cor1", n), &n, |b, &n| {
            let mut builder = LayoutBuilder::new();
            let p = max_register_consensus(&mut builder, n);
            let layout = builder.build();
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_consensus(&layout, &p, n, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("sifting_cor2", n), &n, |b, &n| {
            let mut builder = LayoutBuilder::new();
            let p = sifting_consensus(&mut builder, n, 4, 2);
            let layout = builder.build();
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_consensus(&layout, &p, n, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("linear_work_cor3", n), &n, |b, &n| {
            let mut builder = LayoutBuilder::new();
            let p = linear_work_consensus(&mut builder, n, 4, 2);
            let layout = builder.build();
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_consensus(&layout, &p, n, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("cil_baseline", n), &n, |b, &n| {
            let mut builder = LayoutBuilder::new();
            let p = cil_consensus(&mut builder, n);
            let layout = builder.build();
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_consensus(&layout, &p, n, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_consensus);
criterion_main!(benches);

//! Wall-clock benches (in-tree microbench harness): the threaded shared-memory substrate — object
//! operation costs and a conciliator running on real threads.

use sift_bench::microbench::Criterion;
use sift_bench::{criterion_group, criterion_main};
use sift_core::{Conciliator, Epsilon, SiftingConciliator};
use sift_shmem::max_register::{LockMaxRegister, TreeMaxRegister};
use sift_shmem::register::{AtomicIndexRegister, LockRegister};
use sift_shmem::runtime::run_threads;
use sift_shmem::snapshot::{CoarseSnapshot, WaitFreeSnapshot};
use sift_sim::rng::SeedSplitter;
use sift_sim::{LayoutBuilder, ProcessId};

fn bench_objects(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_objects");

    group.bench_function("lock_register_write_read", |b| {
        let r = LockRegister::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            r.write(i);
            r.read()
        });
    });

    group.bench_function("atomic_index_register_write_read", |b| {
        let r = AtomicIndexRegister::new();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            r.write(i);
            r.read()
        });
    });

    group.bench_function("coarse_snapshot_update_scan_n16", |b| {
        let s = CoarseSnapshot::new(16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            s.update((i % 16) as usize, i);
            s.scan()
        });
    });

    group.bench_function("waitfree_snapshot_update_scan_n16", |b| {
        let s = WaitFreeSnapshot::new(16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            s.update((i % 16) as usize, i);
            s.scan()
        });
    });

    group.bench_function("lock_max_register_write_read", |b| {
        let m = LockMaxRegister::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            m.write(i % 1000, i);
            m.read()
        });
    });

    group.bench_function("tree_max_register_write_read_12bit", |b| {
        let m: TreeMaxRegister<u64> = TreeMaxRegister::new(12);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            m.write(i % (1 << 12), i);
            m.read()
        });
    });

    group.finish();
}

fn bench_threaded_conciliator(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_runtime");
    group.sample_size(10);
    for &n in &[4usize, 8] {
        group.bench_function(format!("sifting_threads_n{n}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut builder = LayoutBuilder::new();
                let conciliator = SiftingConciliator::allocate(&mut builder, n, Epsilon::HALF);
                let layout = builder.build();
                let split = SeedSplitter::new(seed);
                let procs: Vec<_> = (0..n)
                    .map(|i| {
                        let mut rng = split.stream("process", i as u64);
                        conciliator.participant(ProcessId(i), i as u64, &mut rng)
                    })
                    .collect();
                run_threads(&layout, procs)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_objects, bench_threaded_conciliator);
criterion_main!(benches);

//! Lock-free execution of register-model protocols.
//!
//! The paper's register-model algorithms (the sifting conciliator, CIL,
//! Algorithm 3 with its binary adopt-commit) use nothing but MWMR
//! registers holding personae. Because every persona is generated
//! before the protocol starts, each process can publish its persona
//! once in a [`PersonaTable`] and the registers need only carry `u32`
//! table indices — making the whole execution **lock-free** on real
//! hardware ([`AtomicIndexRegister`]s are plain `AtomicU64`s).
//!
//! [`IndexedMemory`] adapts a protocol's [`Layout`] to this scheme: a
//! `RegisterWrite(r, v)` stores `index_of(v)`, a `RegisterRead(r)`
//! resolves the index through the table. Only register operations are
//! supported; layouts that declare snapshots or max registers are
//! rejected at construction.

use std::sync::Arc;

use sift_sim::{Layout, Op, OpResult, Process, Step, Value};

use crate::persona_table::PersonaTable;
use crate::register::AtomicIndexRegister;

/// Shared lock-free memory for register-only layouts.
///
/// # Examples
///
/// ```
/// use sift_shmem::indexed::IndexedMemory;
/// use sift_sim::{LayoutBuilder, Op};
///
/// let mut b = LayoutBuilder::new();
/// let r = b.register();
/// let mem: IndexedMemory<String> =
///     IndexedMemory::new(&b.build(), 2, |s: &String| s.len() as u32 - 5);
/// mem.publish(0, "alice".to_string()); // index 0
/// mem.publish(1, "warden".to_string()); // index 1
/// mem.execute(Op::RegisterWrite(r, "warden".to_string())).expect_ack();
/// assert_eq!(
///     mem.execute(Op::RegisterRead(r)).expect_register(),
///     Some("warden".to_string())
/// );
/// ```
pub struct IndexedMemory<V> {
    registers: Vec<AtomicIndexRegister>,
    table: PersonaTable<V>,
    index_of: Box<dyn Fn(&V) -> u32 + Send + Sync>,
}

impl<V: Value> IndexedMemory<V> {
    /// Builds lock-free memory for `layout` with a value table of
    /// `table_len` slots and the given value-to-index mapping.
    ///
    /// The mapping must satisfy `table[index_of(v)] ~ v` for every value
    /// the protocol writes (personae: `index_of = origin id`).
    ///
    /// # Panics
    ///
    /// Panics if the layout declares snapshots or max registers.
    pub fn new(
        layout: &Layout,
        table_len: usize,
        index_of: impl Fn(&V) -> u32 + Send + Sync + 'static,
    ) -> Self {
        assert!(
            layout.snapshot_components().is_empty() && layout.max_register_count() == 0,
            "indexed memory supports register-only layouts \
             (got {} snapshots, {} max registers)",
            layout.snapshot_components().len(),
            layout.max_register_count()
        );
        Self {
            registers: (0..layout.register_count())
                .map(|_| AtomicIndexRegister::new())
                .collect(),
            table: PersonaTable::new(table_len),
            index_of: Box::new(index_of),
        }
    }

    /// Publishes `value` at `slot` (once, before the run).
    ///
    /// # Panics
    ///
    /// Panics if the slot was already published.
    pub fn publish(&self, slot: usize, value: V) {
        assert!(
            self.table.publish(slot, value),
            "slot {slot} published twice"
        );
    }

    /// Executes one register operation lock-free.
    ///
    /// # Panics
    ///
    /// Panics on non-register operations, on writes of unpublished
    /// values, or on reads of indices missing from the table (both
    /// indicate a protocol/publication mismatch).
    pub fn execute(&self, op: Op<V>) -> OpResult<V> {
        match op {
            Op::RegisterRead(id) => {
                let value = self.registers[id.index()].read().map(|index| {
                    self.table
                        .get(index as usize)
                        .expect("read an index that was never published")
                        .clone()
                });
                OpResult::RegisterValue(value)
            }
            Op::RegisterWrite(id, v) => {
                let index = (self.index_of)(&v);
                assert!(
                    self.table.get(index as usize).is_some(),
                    "writing value with unpublished index {index}"
                );
                self.registers[id.index()].write(index);
                OpResult::Ack
            }
            other => panic!("indexed memory supports registers only, got {other:?}"),
        }
    }
}

impl<V> std::fmt::Debug for IndexedMemory<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexedMemory")
            .field("registers", &self.registers.len())
            .finish_non_exhaustive()
    }
}

/// Runs register-only protocol state machines on OS threads over
/// lock-free [`IndexedMemory`], blocking until all finish.
///
/// `published` seeds the value table: `published[i]` is stored at slot
/// `i` before any thread starts.
///
/// # Panics
///
/// Panics if the layout is not register-only or a thread panics.
pub fn run_threads_lock_free<P>(
    layout: &Layout,
    processes: Vec<P>,
    published: Vec<P::Value>,
    index_of: impl Fn(&P::Value) -> u32 + Send + Sync + 'static,
) -> crate::runtime::ThreadReport<P::Output>
where
    P: Process + Send + 'static,
    P::Output: Send + 'static,
{
    let memory = Arc::new(IndexedMemory::new(layout, published.len(), index_of));
    for (slot, value) in published.into_iter().enumerate() {
        memory.publish(slot, value);
    }
    let handles: Vec<_> = processes
        .into_iter()
        .map(|mut proc| {
            let memory = Arc::clone(&memory);
            std::thread::spawn(move || {
                let mut ops = 0u64;
                let mut prev = None;
                loop {
                    match proc.step(prev.take()) {
                        Step::Issue(op) => {
                            ops += 1;
                            prev = Some(memory.execute(op));
                        }
                        Step::Done(output) => return (output, ops),
                    }
                }
            })
        })
        .collect();
    let mut outputs = Vec::with_capacity(handles.len());
    let mut ops = Vec::with_capacity(handles.len());
    for handle in handles {
        let (output, count) = handle.join().expect("process thread panicked");
        outputs.push(output);
        ops.push(count);
    }
    crate::runtime::ThreadReport { outputs, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_core::{Epsilon, Persona, SiftingConciliator};
    use sift_sim::rng::SeedSplitter;
    use sift_sim::{LayoutBuilder, ProcessId};

    #[test]
    fn sifting_conciliator_runs_lock_free() {
        let n = 8;
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        let split = SeedSplitter::new(11);

        // Generate all personae first, publish them, then run over
        // word-sized lock-free registers.
        let personae: Vec<Persona> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                Persona::generate(ProcessId(i), i as u64, &c.persona_spec(), &mut rng)
            })
            .collect();
        let procs: Vec<_> = personae
            .iter()
            .map(|p| c.participant_with_persona(p.clone()))
            .collect();
        let report = run_threads_lock_free(&layout, procs, personae, |p: &Persona| {
            p.origin().index() as u32
        });
        let rounds = c.rounds() as u64;
        assert!(report.ops.iter().all(|&o| o == rounds));
        for p in &report.outputs {
            assert!(p.input() < n as u64, "validity over lock-free registers");
        }
    }

    #[test]
    fn publish_resolves_reads() {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let mem: IndexedMemory<u64> = IndexedMemory::new(&b.build(), 3, |v| (*v / 10) as u32);
        mem.publish(0, 0);
        mem.publish(1, 10);
        mem.publish(2, 20);
        assert_eq!(mem.execute(Op::RegisterRead(r)).expect_register(), None);
        mem.execute(Op::RegisterWrite(r, 20)).expect_ack();
        assert_eq!(mem.execute(Op::RegisterRead(r)).expect_register(), Some(20));
        mem.execute(Op::RegisterWrite(r, 10)).expect_ack();
        assert_eq!(mem.execute(Op::RegisterRead(r)).expect_register(), Some(10));
    }

    #[test]
    #[should_panic(expected = "register-only layouts")]
    fn snapshot_layouts_are_rejected() {
        let mut b = LayoutBuilder::new();
        let _ = b.snapshot(4);
        let _: IndexedMemory<u64> = IndexedMemory::new(&b.build(), 1, |_| 0);
    }

    #[test]
    #[should_panic(expected = "unpublished index")]
    fn unpublished_write_panics() {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let mem: IndexedMemory<u64> = IndexedMemory::new(&b.build(), 1, |_| 0);
        mem.execute(Op::RegisterWrite(r, 5)).expect_ack();
    }

    #[test]
    #[should_panic(expected = "published twice")]
    fn double_publish_panics() {
        let mut b = LayoutBuilder::new();
        let _ = b.register();
        let mem: IndexedMemory<u64> = IndexedMemory::new(&b.build(), 1, |_| 0);
        mem.publish(0, 1);
        mem.publish(0, 2);
    }
}

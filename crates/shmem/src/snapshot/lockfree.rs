//! Lock-free snapshot via versioned copy-on-write publication.
//!
//! The whole object state lives behind **one** publication [`Slot`]
//! holding an immutable [`VersionedState`]: a monotone version number
//! plus an `Arc`-backed component vector. The two operations are then
//! almost embarrassingly simple:
//!
//! * **scan** is one guarded pointer load plus one `Arc` refcount
//!   increment — `O(1)`, wait-free, and *interference-immune*: the
//!   loaded state is coherent by construction no matter how many
//!   updates are in flight, so there is nothing to retry;
//! * **update** clones the current component vector (`O(n)`
//!   copy-on-write — component counts here are process counts, tens to
//!   a few hundred words), writes its component, and publishes the new
//!   state with a compare-exchange, rebuilding from the freshest state
//!   on every conflict. Lock-free: a failed CAS is another update's
//!   success.
//!
//! # Why not an optimistic double collect?
//!
//! The classic alternative keeps one slot per component (updates are
//! then `O(1)`) and has scans retry a collect of all `n` pointers until
//! two consecutive collects agree, escalating to updater *helping*
//! under interference — [`WaitFreeSnapshot`](super::WaitFreeSnapshot)
//! is exactly that construction and remains in the crate as the
//! theory-faithful reference. As a *performance* substrate it is the
//! wrong trade: with 8 threads mixing scans and updates, the aggregate
//! update inter-arrival time drops to roughly the duration of a single
//! collect, so clean double collects become vanishingly rare and every
//! scan pays the helping path (measured: 7–12× *slower* than the
//! lock-based [`CoarseSnapshot`](super::CoarseSnapshot) at 1-in-8
//! writes). Versioned publication moves the `O(n)` cost onto the
//! update, where the protocols in this repository — which scan at
//! every step but publish comparatively rarely — can afford it, and
//! makes scan latency completely independent of update traffic.
//!
//! Memory reclamation (displaced states, and the ABA-safety of the
//! pointer CAS) is inherited from the [`Pile`] reader gates — see the
//! [`lockfree`](crate::lockfree) module docs.

use std::sync::Arc;

use crate::lockfree::{Pile, Slot};

use sift_sim::{ScanView, Value};

/// One immutable published state: the version is the number of updates
/// that ever succeeded, the vector is the component array after them.
#[derive(Debug)]
struct VersionedState<V> {
    version: u64,
    components: Arc<Vec<Option<V>>>,
}

/// A lock-free linearizable snapshot object.
///
/// See the [module docs](self) for the algorithm and the comparison
/// with [`CoarseSnapshot`](super::CoarseSnapshot) (the lock-based
/// reference implementation, selected by the `coarse-substrate`
/// feature).
///
/// Linearization points:
///
/// * *update* — its successful compare-exchange on the root pointer:
///   the published state contains every earlier update (the candidate
///   was rebuilt from the pointer the CAS then displaced) and becomes
///   visible to every later load atomically;
/// * *scan* — its root pointer load: the returned view *is* the
///   complete state the object had at that instant.
///
/// Because the root pointer is the entire object, linearizability is
/// immediate — the operations literally execute in the order of their
/// atomic accesses to one location.
///
/// # Examples
///
/// ```
/// use sift_shmem::snapshot::LockFreeSnapshot;
/// let snap: LockFreeSnapshot<u32> = LockFreeSnapshot::new(3);
/// snap.update(1, 7);
/// let view = snap.scan();
/// assert_eq!(&view[..], &[None, Some(7), None]);
/// ```
#[derive(Debug)]
pub struct LockFreeSnapshot<V: Value> {
    root: Slot<VersionedState<V>>,
    pile: Pile<VersionedState<V>>,
    /// Component count, cached so `len` needs no guard.
    components: usize,
}

impl<V: Value> LockFreeSnapshot<V> {
    /// Creates a snapshot object with `components` components, all ⊥.
    pub fn new(components: usize) -> Self {
        let snap = Self {
            root: Slot::new(),
            pile: Pile::new(),
            components,
        };
        snap.root.store(
            VersionedState {
                version: 0,
                components: Arc::new(vec![None; components]),
            },
            &snap.pile,
        );
        snap
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components
    }

    /// Returns `true` if the object has no components.
    pub fn is_empty(&self) -> bool {
        self.components == 0
    }

    /// Atomically replaces component `component` with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `component` is out of range.
    pub fn update(&self, component: usize, value: V) {
        assert!(
            component < self.components,
            "component {component} out of range for {}-component snapshot",
            self.components
        );
        let guard = self.pile.enter();
        self.root.publish_with(&self.pile, &guard, |current| {
            let current = current.expect("root state is published at construction");
            let mut components = Vec::clone(&current.components);
            components[component] = Some(value.clone());
            VersionedState {
                version: current.version + 1,
                components: Arc::new(components),
            }
        });
    }

    /// Atomically scans the object: `O(1)`, wait-free, regardless of
    /// concurrent update traffic.
    pub fn scan(&self) -> ScanView<V> {
        let guard = self.pile.enter();
        let state = self
            .root
            .load(&guard)
            .expect("root state is published at construction");
        ScanView::from_arc(Arc::clone(&state.components))
    }

    /// The number of updates that have linearized so far.
    pub fn version(&self) -> u64 {
        let guard = self.pile.enter();
        self.root
            .load(&guard)
            .expect("root state is published at construction")
            .version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_scan_is_all_bottom() {
        let snap: LockFreeSnapshot<u32> = LockFreeSnapshot::new(4);
        assert_eq!(snap.len(), 4);
        assert!(!snap.is_empty());
        assert_eq!(snap.version(), 0);
        let view = snap.scan();
        assert_eq!(&view[..], &[None, None, None, None]);
    }

    #[test]
    fn update_then_scan_round_trip() {
        let snap = LockFreeSnapshot::new(3);
        snap.update(0, 10u64);
        snap.update(2, 30);
        let view = snap.scan();
        assert_eq!(&view[..], &[Some(10), None, Some(30)]);
        snap.update(0, 11);
        assert_eq!(&snap.scan()[..], &[Some(11), None, Some(30)]);
        assert_eq!(snap.version(), 3);
    }

    #[test]
    fn quiescent_scans_share_one_vector() {
        let snap = LockFreeSnapshot::new(2);
        snap.update(0, 1u32);
        let first = snap.scan();
        let second = snap.scan();
        assert!(
            Arc::ptr_eq(first.as_arc(), second.as_arc()),
            "scans of an unchanged state must share the published vector"
        );
        snap.update(1, 2);
        let third = snap.scan();
        assert!(!Arc::ptr_eq(first.as_arc(), third.as_arc()));
        // The earlier view is immutable even after the update.
        assert_eq!(&first[..], &[Some(1), None]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_out_of_range_panics() {
        let snap = LockFreeSnapshot::new(2);
        snap.update(2, 1u32);
    }

    #[test]
    fn version_counts_every_successful_update() {
        let snap = Arc::new(LockFreeSnapshot::new(4));
        let handles: Vec<_> = (0..4usize)
            .map(|c| {
                let snap = Arc::clone(&snap);
                std::thread::spawn(move || {
                    for k in 0..250u64 {
                        snap.update(c, k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // No update may be lost to a CAS conflict.
        assert_eq!(snap.version(), 4 * 250);
        assert_eq!(&snap.scan()[..], &[Some(249); 4]);
    }

    #[test]
    fn concurrent_scans_never_observe_regressions() {
        // Single writer per component; each writes an increasing
        // counter. Any atomic view must be component-wise monotone
        // w.r.t. previously observed views.
        let snap = Arc::new(LockFreeSnapshot::new(4));
        let writers: Vec<_> = (0..4usize)
            .map(|c| {
                let snap = Arc::clone(&snap);
                std::thread::spawn(move || {
                    for k in 0..400u64 {
                        snap.update(c, k);
                    }
                })
            })
            .collect();
        let scanners: Vec<_> = (0..4)
            .map(|_| {
                let snap = Arc::clone(&snap);
                std::thread::spawn(move || {
                    let mut seen = [None::<u64>; 4];
                    for _ in 0..400 {
                        let view = snap.scan();
                        for (c, slot) in view.iter().enumerate() {
                            match (seen[c], *slot) {
                                (Some(old), None) => {
                                    panic!("component {c} regressed from {old} to ⊥")
                                }
                                (Some(old), Some(new)) => {
                                    assert!(new >= old, "component {c}: {old} -> {new}");
                                    seen[c] = Some(new);
                                }
                                (None, new) => seen[c] = new,
                            }
                        }
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(scanners) {
            h.join().unwrap();
        }
        assert_eq!(&snap.scan()[..], &[Some(399); 4]);
    }
}

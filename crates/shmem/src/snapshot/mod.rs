//! Snapshot objects for real threads.
//!
//! Three implementations of the same linearizable scan/update interface:
//!
//! * [`LockFreeSnapshot`] — optimistic double collect over lock-free
//!   publication cells, with an `O(1)` cached-view fast path for
//!   quiescent scans and a bounded helping fallback under sustained
//!   interference. What the runtime uses by default.
//! * [`CoarseSnapshot`] — a reader-writer lock around the component
//!   vector. Simple and obviously linearizable; kept as the reference
//!   implementation (the `coarse-substrate` feature switches the
//!   runtime back to it for differential testing and benchmarking).
//! * [`WaitFreeSnapshot`] — the classic Afek et al. construction from
//!   single-writer registers (double collect with embedded-scan
//!   helping). Built here to demonstrate that the model's snapshot
//!   object is implementable from registers alone; its operations cost
//!   `O(n)` register accesses, which is exactly the gap the paper's
//!   "unit-cost snapshot" accounting abstracts away (and which the
//!   simulator's `CostModel::RegisterImplemented` charges).

mod coarse;
mod lockfree;
mod waitfree;

pub use coarse::CoarseSnapshot;
pub use lockfree::LockFreeSnapshot;
pub use waitfree::WaitFreeSnapshot;

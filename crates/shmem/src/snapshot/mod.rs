//! Snapshot objects for real threads.
//!
//! Two implementations of the same linearizable scan/update interface:
//!
//! * [`CoarseSnapshot`] — a reader-writer lock around the component
//!   vector. Simple, linearizable, and what the runtime uses by
//!   default.
//! * [`WaitFreeSnapshot`] — the classic Afek et al. construction from
//!   single-writer registers (double collect with embedded-scan
//!   helping). Built here to demonstrate that the model's snapshot
//!   object is implementable from registers alone; its operations cost
//!   `O(n)` register accesses, which is exactly the gap the paper's
//!   "unit-cost snapshot" accounting abstracts away (and which the
//!   simulator's `CostModel::RegisterImplemented` charges).

mod coarse;
mod waitfree;

pub use coarse::CoarseSnapshot;
pub use waitfree::WaitFreeSnapshot;

//! Wait-free atomic snapshot from single-writer registers
//! (Afek, Attiya, Dolev, Gafni, Merritt, Shavit 1993).
//!
//! Each writer owns one register holding its current value, a sequence
//! number, and the *embedded view* it obtained by scanning before its
//! write. A scanner repeatedly collects all registers:
//!
//! * two identical consecutive collects (no sequence number moved) form
//!   a **clean double collect** — the common snapshot is returned;
//! * otherwise some writer moved; a writer seen moving **twice** wrote
//!   its register entirely within the scan's interval, so its embedded
//!   view is a valid snapshot inside the interval and is *borrowed*.
//!
//! By pigeonhole one of the two happens within `n + 2` collects, so
//! scans are wait-free with `O(n²)` register reads — the cost the
//! paper's unit-cost snapshot model abstracts to 1 (compare the
//! simulator's `CostModel::RegisterImplemented`).

use sift_sim::{ScanView, Value};

use crate::register::LockRegister;

#[derive(Debug, Clone)]
struct Entry<V> {
    value: Option<V>,
    seq: u64,
    view: Option<ScanView<V>>,
}

impl<V> Default for Entry<V> {
    fn default() -> Self {
        Self {
            value: None,
            seq: 0,
            view: None,
        }
    }
}

/// A wait-free snapshot object over `n` single-writer registers.
///
/// Component `i` may only be updated by the thread acting as writer `i`
/// (single-writer discipline; enforced only by convention, as in the
/// original construction).
///
/// # Examples
///
/// ```
/// use sift_shmem::snapshot::WaitFreeSnapshot;
/// let s: WaitFreeSnapshot<u32> = WaitFreeSnapshot::new(2);
/// s.update(0, 10);
/// s.update(1, 20);
/// let view = s.scan();
/// assert_eq!(view[0], Some(10));
/// assert_eq!(view[1], Some(20));
/// ```
#[derive(Debug)]
pub struct WaitFreeSnapshot<V> {
    registers: Vec<LockRegister<Entry<V>>>,
}

impl<V: Value> WaitFreeSnapshot<V> {
    /// Creates a snapshot object with `len` components, all ⊥.
    pub fn new(len: usize) -> Self {
        Self {
            registers: (0..len).map(|_| LockRegister::new()).collect(),
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.registers.len()
    }

    /// Returns `true` if the object has zero components.
    pub fn is_empty(&self) -> bool {
        self.registers.is_empty()
    }

    fn collect(&self) -> Vec<Entry<V>> {
        self.registers
            .iter()
            .map(|r| r.read().unwrap_or_default())
            .collect()
    }

    /// Sets component `component` to `value` (single-writer: only one
    /// thread may update a given component).
    ///
    /// # Panics
    ///
    /// Panics if `component` is out of range.
    pub fn update(&self, component: usize, value: V) {
        let view = self.scan();
        let seq = self.registers[component].read().map(|e| e.seq).unwrap_or(0);
        self.registers[component].write(Entry {
            value: Some(value),
            seq: seq + 1,
            view: Some(view),
        });
    }

    /// Returns a linearizable view of all components.
    pub fn scan(&self) -> ScanView<V> {
        let n = self.registers.len();
        let mut moved = vec![0u32; n];
        let mut previous = self.collect();
        loop {
            let current = self.collect();
            if previous
                .iter()
                .zip(current.iter())
                .all(|(a, b)| a.seq == b.seq)
            {
                // Clean double collect.
                return ScanView::from_components(current.into_iter().map(|e| e.value).collect());
            }
            for (j, (a, b)) in previous.iter().zip(current.iter()).enumerate() {
                if a.seq != b.seq {
                    moved[j] += 1;
                    if moved[j] >= 2 {
                        // Writer j performed a complete update inside our
                        // interval: borrow its embedded view.
                        if let Some(view) = &b.view {
                            return view.clone();
                        }
                    }
                }
            }
            previous = current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_semantics() {
        let s = WaitFreeSnapshot::new(3);
        assert_eq!(&s.scan()[..], &[None, None, None]);
        s.update(2, 7u32);
        s.update(0, 5u32);
        assert_eq!(&s.scan()[..], &[Some(5), None, Some(7)]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn updates_overwrite_own_component() {
        let s = WaitFreeSnapshot::new(1);
        s.update(0, 1u32);
        s.update(0, 2u32);
        assert_eq!(s.scan()[0], Some(2));
    }

    #[test]
    fn concurrent_scans_see_monotone_component_histories() {
        // Writer thread increments its component; scanner threads verify
        // that observed values never decrease (regularity implied by
        // linearizability for a single writer).
        let s = Arc::new(WaitFreeSnapshot::new(2));
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for v in 0..2000u32 {
                    s.update(0, v);
                }
            })
        };
        let scanners: Vec<_> = (0..3)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut last = None::<u32>;
                    for _ in 0..500 {
                        let view = s.scan();
                        let v = view[0];
                        if let (Some(prev), Some(cur)) = (last, v) {
                            assert!(cur >= prev, "component went backwards: {prev} -> {cur}");
                        }
                        if v.is_some() {
                            last = v;
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for h in scanners {
            h.join().unwrap();
        }
    }

    #[test]
    fn two_writers_and_scanners_produce_consistent_views() {
        // Views must be "comparable" in the single-object partial order:
        // for single-writer components with increasing values, any two
        // views are component-wise ordered one way or the other.
        let s = Arc::new(WaitFreeSnapshot::new(2));
        let writers: Vec<_> = (0..2usize)
            .map(|i| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for v in 0..1500u32 {
                        s.update(i, v);
                    }
                })
            })
            .collect();
        let scanner = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut views = Vec::new();
                for _ in 0..300 {
                    let view = s.scan();
                    views.push([view[0], view[1]]);
                }
                views
            })
        };
        for h in writers {
            h.join().unwrap();
        }
        let views = scanner.join().unwrap();
        let key = |x: Option<u32>| x.map(|v| v as i64 + 1).unwrap_or(0);
        for w in views.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Later scans by the same thread must dominate earlier ones.
            assert!(
                key(b[0]) >= key(a[0]) && key(b[1]) >= key(a[1]),
                "scan order violated: {a:?} then {b:?}"
            );
        }
    }
}

//! Lock-based linearizable snapshot.

use crate::sync::RwLock;

use sift_sim::{ScanView, Value};

/// A snapshot object guarded by a single reader-writer lock.
///
/// `update` takes the write lock for one store; `scan` takes the read
/// lock and clones the vector. Linearizable by lock order.
///
/// # Examples
///
/// ```
/// use sift_shmem::snapshot::CoarseSnapshot;
/// let s: CoarseSnapshot<u32> = CoarseSnapshot::new(3);
/// s.update(1, 9);
/// let view = s.scan();
/// assert_eq!(view[1], Some(9));
/// ```
#[derive(Debug)]
pub struct CoarseSnapshot<V> {
    components: RwLock<Vec<Option<V>>>,
    /// Component count, fixed at construction — kept outside the lock
    /// so `len`/`is_empty` never contend with writers.
    len: usize,
}

impl<V: Value> CoarseSnapshot<V> {
    /// Creates a snapshot object with `len` components, all ⊥.
    pub fn new(len: usize) -> Self {
        Self {
            components: RwLock::new(vec![None; len]),
            len,
        }
    }

    /// Number of components (lock-free: fixed at construction).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the object has zero components.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets component `component` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `component` is out of range.
    pub fn update(&self, component: usize, value: V) {
        self.components.write()[component] = Some(value);
    }

    /// Returns an atomic view of all components.
    pub fn scan(&self) -> ScanView<V> {
        ScanView::from_components(self.components.read().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn update_then_scan() {
        let s = CoarseSnapshot::new(2);
        s.update(0, 5u32);
        assert_eq!(&s.scan()[..], &[Some(5), None]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn concurrent_updates_all_land() {
        let s = Arc::new(CoarseSnapshot::new(8));
        let handles: Vec<_> = (0..8usize)
            .map(|i| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || s.update(i, i as u32))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let view = s.scan();
        for i in 0..8 {
            assert_eq!(view[i], Some(i as u32));
        }
    }

    #[test]
    fn scans_are_stable_views() {
        let s = CoarseSnapshot::new(1);
        s.update(0, 1u32);
        let v1 = s.scan();
        s.update(0, 2u32);
        assert_eq!(v1[0], Some(1), "old view unaffected by later update");
        assert_eq!(s.scan()[0], Some(2));
    }
}

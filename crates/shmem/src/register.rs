//! Linearizable multi-writer multi-reader registers for real threads.

use crate::sync::RwLock;

use sift_sim::Value;

/// A linearizable MWMR register over any value type, built on a
/// reader-writer lock.
///
/// Each operation holds the lock for a single load or store, so
/// operations are trivially linearizable (the lock acquisition order is
/// the linearization order). Not lock-free; see
/// [`AtomicIndexRegister`] for the lock-free word-sized variant used
/// with a [`PersonaTable`](crate::persona_table::PersonaTable).
///
/// # Examples
///
/// ```
/// use sift_shmem::register::LockRegister;
/// let r: LockRegister<String> = LockRegister::new();
/// assert_eq!(r.read(), None);
/// r.write("hello".to_string());
/// assert_eq!(r.read(), Some("hello".to_string()));
/// ```
#[derive(Debug, Default)]
pub struct LockRegister<V> {
    cell: RwLock<Option<V>>,
}

impl<V: Value> LockRegister<V> {
    /// Creates a register holding ⊥.
    pub fn new() -> Self {
        Self {
            cell: RwLock::new(None),
        }
    }

    /// Reads the register (`None` is ⊥).
    pub fn read(&self) -> Option<V> {
        self.cell.read().clone()
    }

    /// Writes `value`.
    pub fn write(&self, value: V) {
        *self.cell.write() = Some(value);
    }
}

/// A lock-free MWMR register holding a `u32` index (`None` is ⊥).
///
/// The register packs `Some(i)` as `i + 1` into an `AtomicU64`, with 0
/// for ⊥. Protocols that publish their personae in a
/// [`PersonaTable`](crate::persona_table::PersonaTable) can then run
/// entirely on word-sized lock-free registers, the configuration closest
/// to the paper's model on real hardware.
///
/// # Examples
///
/// ```
/// use sift_shmem::register::AtomicIndexRegister;
/// let r = AtomicIndexRegister::new();
/// assert_eq!(r.read(), None);
/// r.write(7);
/// assert_eq!(r.read(), Some(7));
/// ```
#[derive(Debug, Default)]
pub struct AtomicIndexRegister {
    cell: std::sync::atomic::AtomicU64,
}

impl AtomicIndexRegister {
    /// Creates a register holding ⊥.
    pub fn new() -> Self {
        Self {
            cell: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Reads the register.
    pub fn read(&self) -> Option<u32> {
        match self.cell.load(std::sync::atomic::Ordering::SeqCst) {
            0 => None,
            v => Some((v - 1) as u32),
        }
    }

    /// Writes `index`.
    pub fn write(&self, index: u32) {
        self.cell
            .store(index as u64 + 1, std::sync::atomic::Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_register_last_write_wins() {
        let r = LockRegister::new();
        r.write(1u32);
        r.write(2u32);
        assert_eq!(r.read(), Some(2));
    }

    #[test]
    fn atomic_index_register_round_trip() {
        let r = AtomicIndexRegister::new();
        assert_eq!(r.read(), None);
        r.write(0);
        assert_eq!(r.read(), Some(0), "index 0 must be distinguishable from ⊥");
        r.write(u32::MAX);
        assert_eq!(r.read(), Some(u32::MAX));
    }

    #[test]
    fn concurrent_writers_leave_some_written_value() {
        let r = Arc::new(LockRegister::new());
        let handles: Vec<_> = (0..8u32)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        r.write(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let v = r.read().expect("someone wrote");
        assert!(v < 8);
    }

    #[test]
    fn concurrent_atomic_register_is_safe() {
        let r = Arc::new(AtomicIndexRegister::new());
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.write(i);
                        if let Some(v) = r.read() {
                            assert!(v < 4);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}

//! Linearizable multi-writer multi-reader registers for real threads.

use crate::lockfree::{inline_ok, Pile, SeqCell, Slot};
use crate::sync::RwLock;

use sift_sim::{PackValue, Value};

/// A linearizable MWMR register over any value type, built on a
/// reader-writer lock.
///
/// Each operation holds the lock for a single load or store, so
/// operations are trivially linearizable (the lock acquisition order is
/// the linearization order). Not lock-free; see
/// [`AtomicIndexRegister`] for the lock-free word-sized variant used
/// with a [`PersonaTable`](crate::persona_table::PersonaTable).
///
/// # Examples
///
/// ```
/// use sift_shmem::register::LockRegister;
/// let r: LockRegister<String> = LockRegister::new();
/// assert_eq!(r.read(), None);
/// r.write("hello".to_string());
/// assert_eq!(r.read(), Some("hello".to_string()));
/// ```
#[derive(Debug, Default)]
pub struct LockRegister<V> {
    cell: RwLock<Option<V>>,
}

impl<V: Value> LockRegister<V> {
    /// Creates a register holding ⊥.
    pub fn new() -> Self {
        Self {
            cell: RwLock::new(None),
        }
    }

    /// Reads the register (`None` is ⊥).
    pub fn read(&self) -> Option<V> {
        self.cell.read().clone()
    }

    /// Writes `value`.
    pub fn write(&self, value: V) {
        *self.cell.write() = Some(value);
    }
}

/// A lock-free MWMR register over any value type, with an
/// allocation-free inline fast path for small payloads.
///
/// The representation is chosen once, at construction, from the value
/// type (the branch is const-foldable, so each monomorphization
/// compiles to a single path):
///
/// * **Inline** — values that fit 16 bytes and have no destructor live
///   directly in a seqlock cell (`SeqCell` in the `lockfree` module):
///   writes are a claim CAS plus plain stores, reads are pure loads
///   with sequence validation. No allocation, no node retirement, no
///   reader guards anywhere on the path. Writes linearize at the
///   sequence publish store, reads at the first sequence load of the
///   validated attempt.
/// * **Published** — larger or `Drop`-carrying values keep the original
///   pointer-publication path: writes publish an immutable heap node
///   with a single swap (wait-free), reads dereference and clone under
///   a reader guard, and displaced nodes go through interval-stamp
///   reclamation. A write linearizes at its swap, a read at its pointer
///   load.
///
/// On the inline path writers serialize on the claim word (a stalled
/// mid-publication writer delays other writers and makes readers of
/// that cell retry); the published path keeps the stronger lock-free
/// guarantee. DESIGN.md ("Inline seqlock registers") argues the
/// linearizability of both.
///
/// For word-sized values [`PackedRegister`] is smaller still (a single
/// atomic word, no ⊥ sentinel cost).
///
/// # Examples
///
/// ```
/// use sift_shmem::register::LockFreeRegister;
/// let r: LockFreeRegister<String> = LockFreeRegister::new();
/// assert_eq!(r.read(), None);
/// r.write("hello".to_string());
/// assert_eq!(r.read(), Some("hello".to_string()));
///
/// let small: LockFreeRegister<(u64, u64)> = LockFreeRegister::new();
/// assert!(small.is_inline());
/// small.write((1, 2));
/// assert_eq!(small.read(), Some((1, 2)));
/// ```
#[derive(Debug)]
pub struct LockFreeRegister<V: Value> {
    repr: Repr<V>,
}

/// The two register representations. `Published` is boxed so an inline
/// register stays a cache-line pair instead of carrying a dormant
/// `Pile` (which is ~2 KiB of stripes) in its footprint.
#[derive(Debug)]
enum Repr<V: Value> {
    Inline(SeqCell<V>),
    Published(Box<Published<V>>),
}

#[derive(Debug)]
struct Published<V: Value> {
    pile: Pile<V>,
    slot: Slot<V>,
}

impl<V: Value> Default for LockFreeRegister<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Value> LockFreeRegister<V> {
    /// Creates a register holding ⊥.
    pub fn new() -> Self {
        let repr = if inline_ok::<V>() {
            Repr::Inline(SeqCell::new())
        } else {
            Repr::Published(Box::new(Published {
                pile: Pile::new(),
                slot: Slot::new(),
            }))
        };
        Self { repr }
    }

    /// Whether this register uses the inline seqlock path (diagnostic;
    /// decided by the value type at construction).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }

    /// Reads the register (`None` is ⊥).
    pub fn read(&self) -> Option<V> {
        match &self.repr {
            Repr::Inline(cell) => cell.read(),
            Repr::Published(p) => p.slot.read_cloned(&p.pile),
        }
    }

    /// Writes `value`.
    pub fn write(&self, value: V) {
        match &self.repr {
            Repr::Inline(cell) => cell.write(value),
            Repr::Published(p) => p.slot.store(value, &p.pile),
        }
    }
}

/// A torn write held open mid-publication (torn-publication mode).
///
/// Returned by [`LockFreeRegister::torn_write`]: the new payload is
/// fully stored and committed, but the sequence is still odd, so
/// concurrent readers resolve inside the torn window — alternately to
/// the new and the displaced value. Dropping or
/// [`finish`](Self::finish)ing the guard publishes the write and closes
/// the window.
///
/// This split-phase API exists for deterministic test choreography:
/// histories exhibiting genuine new/old inversions can be produced
/// without racing the (nanoseconds-wide) natural window.
#[cfg(feature = "torn-publication")]
#[must_use = "dropping the guard immediately closes the torn window"]
pub struct TornWriteGuard<'a, V: Value> {
    cell: &'a SeqCell<V>,
    claimed: u64,
    done: bool,
}

#[cfg(feature = "torn-publication")]
impl<V: Value> LockFreeRegister<V> {
    /// Begins a torn write of `value`, holding the publication window
    /// open until the returned guard is finished or dropped. Reads
    /// issued while the guard lives resolve to the new or the old value
    /// on an alternating parity coin.
    ///
    /// # Panics
    ///
    /// Panics if the register uses the pointer-publication
    /// representation (oversized or `Drop`-carrying payloads): torn
    /// publication is injected only on the inline seqlock path.
    pub fn torn_write(&self, value: V) -> TornWriteGuard<'_, V> {
        match &self.repr {
            Repr::Inline(cell) => TornWriteGuard {
                claimed: cell.begin_torn_write(value),
                cell,
                done: false,
            },
            Repr::Published(_) => {
                panic!("torn writes require the inline seqlock representation")
            }
        }
    }
}

#[cfg(feature = "torn-publication")]
impl<V: Value> TornWriteGuard<'_, V> {
    /// Publishes the write, closing the torn window.
    pub fn finish(mut self) {
        self.done = true;
        self.cell.finish_torn_write(self.claimed);
    }
}

#[cfg(feature = "torn-publication")]
impl<V: Value> Drop for TornWriteGuard<'_, V> {
    fn drop(&mut self) {
        if !self.done {
            self.cell.finish_torn_write(self.claimed);
        }
    }
}

/// A wait-free MWMR register for word-packable values (`None` is ⊥).
///
/// The value is packed into an `AtomicU64` ([`PackValue`] keeps
/// `pack()` below `u64::MAX`, so `u64::MAX` encodes ⊥): reads are one
/// atomic load, writes one atomic store — the configuration closest to
/// the paper's model on real hardware, with no allocation anywhere.
///
/// # Examples
///
/// ```
/// use sift_shmem::register::PackedRegister;
/// let r: PackedRegister<u32> = PackedRegister::new();
/// assert_eq!(r.read(), None);
/// r.write(7);
/// assert_eq!(r.read(), Some(7));
/// ```
#[derive(Debug)]
pub struct PackedRegister<V> {
    cell: std::sync::atomic::AtomicU64,
    _marker: std::marker::PhantomData<V>,
}

/// The word reserved for ⊥ in [`PackedRegister`].
const BOTTOM: u64 = u64::MAX;

impl<V: PackValue> PackedRegister<V> {
    /// Creates a register holding ⊥.
    pub fn new() -> Self {
        Self {
            cell: std::sync::atomic::AtomicU64::new(BOTTOM),
            _marker: std::marker::PhantomData,
        }
    }

    /// Reads the register with one atomic load.
    pub fn read(&self) -> Option<V> {
        match self.cell.load(std::sync::atomic::Ordering::SeqCst) {
            BOTTOM => None,
            word => Some(V::unpack(word)),
        }
    }

    /// Writes `value` with one atomic store.
    pub fn write(&self, value: V) {
        let word = value.pack();
        debug_assert_ne!(word, BOTTOM, "PackValue must stay below u64::MAX");
        self.cell.store(word, std::sync::atomic::Ordering::SeqCst);
    }
}

impl<V> Default for PackedRegister<V>
where
    V: PackValue,
{
    fn default() -> Self {
        Self::new()
    }
}

/// A lock-free MWMR register holding a `u32` index (`None` is ⊥).
///
/// The register packs `Some(i)` as `i + 1` into an `AtomicU64`, with 0
/// for ⊥. Protocols that publish their personae in a
/// [`PersonaTable`](crate::persona_table::PersonaTable) can then run
/// entirely on word-sized lock-free registers, the configuration closest
/// to the paper's model on real hardware.
///
/// # Examples
///
/// ```
/// use sift_shmem::register::AtomicIndexRegister;
/// let r = AtomicIndexRegister::new();
/// assert_eq!(r.read(), None);
/// r.write(7);
/// assert_eq!(r.read(), Some(7));
/// ```
#[derive(Debug, Default)]
pub struct AtomicIndexRegister {
    cell: std::sync::atomic::AtomicU64,
}

impl AtomicIndexRegister {
    /// Creates a register holding ⊥.
    pub fn new() -> Self {
        Self {
            cell: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Reads the register.
    pub fn read(&self) -> Option<u32> {
        match self.cell.load(std::sync::atomic::Ordering::SeqCst) {
            0 => None,
            v => Some((v - 1) as u32),
        }
    }

    /// Writes `index`.
    pub fn write(&self, index: u32) {
        self.cell
            .store(index as u64 + 1, std::sync::atomic::Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_register_last_write_wins() {
        let r = LockRegister::new();
        r.write(1u32);
        r.write(2u32);
        assert_eq!(r.read(), Some(2));
    }

    #[test]
    fn atomic_index_register_round_trip() {
        let r = AtomicIndexRegister::new();
        assert_eq!(r.read(), None);
        r.write(0);
        assert_eq!(r.read(), Some(0), "index 0 must be distinguishable from ⊥");
        r.write(u32::MAX);
        assert_eq!(r.read(), Some(u32::MAX));
    }

    #[test]
    fn concurrent_writers_leave_some_written_value() {
        let r = Arc::new(LockRegister::new());
        let handles: Vec<_> = (0..8u32)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        r.write(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let v = r.read().expect("someone wrote");
        assert!(v < 8);
    }

    #[test]
    fn lock_free_register_round_trip() {
        let r: LockFreeRegister<String> = LockFreeRegister::new();
        assert_eq!(r.read(), None);
        r.write("a".to_string());
        r.write("b".to_string());
        assert_eq!(r.read(), Some("b".to_string()));
    }

    #[test]
    fn representation_follows_value_type() {
        // Small trivially-destructible payloads take the inline path.
        assert!(LockFreeRegister::<u64>::new().is_inline());
        assert!(LockFreeRegister::<(u64, u64)>::new().is_inline());
        assert!(LockFreeRegister::<[u8; 16]>::new().is_inline());
        // Oversized or Drop-carrying payloads keep pointer publication.
        assert!(!LockFreeRegister::<String>::new().is_inline());
        assert!(!LockFreeRegister::<[u64; 3]>::new().is_inline());
    }

    #[test]
    fn oversized_published_path_round_trips() {
        let r: LockFreeRegister<[u64; 3]> = LockFreeRegister::new();
        assert_eq!(r.read(), None);
        r.write([1, 2, 3]);
        r.write([4, 5, 6]);
        assert_eq!(r.read(), Some([4, 5, 6]));
    }

    #[test]
    fn packed_register_round_trip() {
        let r: PackedRegister<u32> = PackedRegister::new();
        assert_eq!(r.read(), None);
        r.write(0);
        assert_eq!(r.read(), Some(0), "0 must be distinguishable from ⊥");
        r.write(u32::MAX);
        assert_eq!(r.read(), Some(u32::MAX));
    }

    #[test]
    fn concurrent_lock_free_writers_leave_some_written_value() {
        let r = Arc::new(LockFreeRegister::new());
        let writers: Vec<_> = (0..8u64)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for k in 0..500 {
                        r.write((i, k));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        if let Some((i, k)) = r.read() {
                            assert!(i < 8 && k < 500, "read a torn or foreign value");
                        }
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        let (_, k) = r.read().expect("someone wrote");
        assert_eq!(k, 499, "final value is some writer's last write");
    }

    /// Inside a held-open torn window the parity coin alternates
    /// between the committed new image and the displaced old one, and
    /// finishing the guard restores plain last-write-wins reads.
    #[cfg(feature = "torn-publication")]
    #[test]
    fn torn_window_serves_both_old_and_new() {
        let r: LockFreeRegister<(u64, u64)> = LockFreeRegister::new();
        r.write((1, 1));
        let guard = r.torn_write((2, 2));
        let seen: Vec<_> = (0..4).map(|_| r.read()).collect();
        assert!(
            seen.contains(&Some((2, 2))),
            "window must expose the new value"
        );
        assert!(
            seen.contains(&Some((1, 1))),
            "window must expose the old value"
        );
        guard.finish();
        assert_eq!(r.read(), Some((2, 2)));
    }

    /// The first-ever write's torn window exposes ⊥ as the old value.
    #[cfg(feature = "torn-publication")]
    #[test]
    fn first_torn_window_serves_bottom_as_old() {
        let r: LockFreeRegister<u64> = LockFreeRegister::new();
        let guard = r.torn_write(7);
        let seen: Vec<_> = (0..4).map(|_| r.read()).collect();
        assert!(seen.contains(&Some(7)));
        assert!(
            seen.contains(&None),
            "displaced value of the first write is ⊥"
        );
        drop(guard);
        assert_eq!(r.read(), Some(7));
    }

    /// New/old inversion — the signature regular-but-not-atomic
    /// behaviour: a later read returns the *old* value after an earlier
    /// read already returned the new one.
    #[cfg(feature = "torn-publication")]
    #[test]
    fn torn_window_produces_new_old_inversion() {
        let r: LockFreeRegister<u64> = LockFreeRegister::new();
        r.write(10);
        let guard = r.torn_write(20);
        let first = r.read();
        let second = r.read();
        guard.finish();
        assert_eq!(
            (first, second),
            (Some(20), Some(10)),
            "parity coin starts on the new image, then serves the old"
        );
    }

    /// Under concurrency every torn read is still one of the two
    /// neighbouring committed values — never a mix of their words.
    #[cfg(feature = "torn-publication")]
    #[test]
    fn concurrent_torn_reads_never_tear_words() {
        let r = Arc::new(LockFreeRegister::new());
        let writer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for k in 1..400u64 {
                    let guard = r.torn_write((k, k * 3));
                    std::hint::spin_loop();
                    guard.finish();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        if let Some((a, b)) = r.read() {
                            assert_eq!(b, a * 3, "torn read mixed two images");
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for h in readers {
            h.join().unwrap();
        }
        assert_eq!(r.read(), Some((399, 399 * 3)));
    }

    #[test]
    fn concurrent_atomic_register_is_safe() {
        let r = Arc::new(AtomicIndexRegister::new());
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.write(i);
                        if let Some(v) = r.read() {
                            assert!(v < 4);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}

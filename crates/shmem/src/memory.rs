//! Thread-safe shared memory mirroring a simulator [`Layout`].
//!
//! [`ObjectMemory`] assembles any trio of object implementations
//! ([`SharedRegister`], [`SharedSnapshot`], [`SharedMaxRegister`]) into
//! an [`Op`]-executing memory. Two assemblies are named:
//!
//! * [`LockFreeMemory`] — the lock-free objects
//!   ([`LockFreeRegister`], [`LockFreeSnapshot`],
//!   [`LockFreeMaxRegister`]); registers and max registers holding
//!   small `Copy`-like payloads take allocation-free inline fast
//!   paths (seqlock cells and a combining announce array) instead of
//!   pointer publication;
//! * [`CoarseMemory`] — the lock-based references ([`LockRegister`],
//!   [`CoarseSnapshot`], [`LockMaxRegister`]).
//!
//! [`AtomicMemory`] — the alias the runtime and every protocol harness
//! use — is `LockFreeMemory` by default and `CoarseMemory` when the
//! crate is built with the `coarse-substrate` feature, so the whole
//! test suite doubles as a differential test between the two
//! substrates.

use sift_sim::{Layout, MaxRegisterId, Op, OpResult, RegisterId, ScanView, SnapshotId, Value};

use crate::max_register::{LockFreeMaxRegister, LockMaxRegister};
use crate::register::{LockFreeRegister, LockRegister};
use crate::snapshot::{CoarseSnapshot, LockFreeSnapshot};

/// A linearizable MWMR register usable from any thread.
pub trait SharedRegister<V: Value>: Send + Sync {
    /// Creates a register holding ⊥.
    fn new() -> Self;
    /// Reads the register (`None` is ⊥).
    fn read(&self) -> Option<V>;
    /// Writes `value`.
    fn write(&self, value: V);
}

/// A linearizable snapshot object usable from any thread.
pub trait SharedSnapshot<V: Value>: Send + Sync {
    /// Creates a snapshot object with `components` components, all ⊥.
    fn new(components: usize) -> Self;
    /// Atomically replaces one component.
    fn update(&self, component: usize, value: V);
    /// Returns an atomic view of all components.
    fn scan(&self) -> ScanView<V>;
}

/// A linearizable max register usable from any thread.
pub trait SharedMaxRegister<V: Value>: Send + Sync {
    /// Creates an empty max register.
    fn new() -> Self;
    /// Reads the current maximum entry.
    fn read(&self) -> Option<(u64, V)>;
    /// Writes `(key, value)`, kept only if `key` exceeds the current
    /// maximum.
    fn write(&self, key: u64, value: V);
}

macro_rules! impl_shared_register {
    ($ty:ident) => {
        impl<V: Value> SharedRegister<V> for $ty<V> {
            fn new() -> Self {
                $ty::new()
            }
            fn read(&self) -> Option<V> {
                $ty::read(self)
            }
            fn write(&self, value: V) {
                $ty::write(self, value)
            }
        }
    };
}

impl_shared_register!(LockRegister);
impl_shared_register!(LockFreeRegister);

macro_rules! impl_shared_snapshot {
    ($ty:ident) => {
        impl<V: Value> SharedSnapshot<V> for $ty<V> {
            fn new(components: usize) -> Self {
                $ty::new(components)
            }
            fn update(&self, component: usize, value: V) {
                $ty::update(self, component, value)
            }
            fn scan(&self) -> ScanView<V> {
                $ty::scan(self)
            }
        }
    };
}

impl_shared_snapshot!(CoarseSnapshot);
impl_shared_snapshot!(LockFreeSnapshot);

macro_rules! impl_shared_max_register {
    ($ty:ident) => {
        impl<V: Value> SharedMaxRegister<V> for $ty<V> {
            fn new() -> Self {
                $ty::new()
            }
            fn read(&self) -> Option<(u64, V)> {
                $ty::read(self)
            }
            fn write(&self, key: u64, value: V) {
                $ty::write(self, key, value)
            }
        }
    };
}

impl_shared_max_register!(LockMaxRegister);
impl_shared_max_register!(LockFreeMaxRegister);

/// Anything that can execute the model's [`Op`]s against shared state.
///
/// Implemented by every memory assembly here and by
/// [`RecordingMemory`](crate::history::RecordingMemory), which wraps
/// one of them and records a timestamped history.
pub trait ExecuteOps<V: Value>: Send + Sync {
    /// Executes one operation atomically.
    fn execute(&self, op: Op<V>) -> OpResult<V>;
}

/// Shared memory for real threads, instantiated from the same
/// [`Layout`] a protocol declares for the simulator — so a protocol
/// written once runs on both runtimes unchanged.
///
/// Generic over the three object implementations; use the
/// [`AtomicMemory`] alias unless you are explicitly pinning a
/// substrate (as the differential tests and benches do via
/// [`LockFreeMemory`] / [`CoarseMemory`]).
///
/// All objects are linearizable; operations take `&self` and are safe to
/// call from any number of threads.
///
/// # Examples
///
/// ```
/// use sift_shmem::memory::AtomicMemory;
/// use sift_sim::{LayoutBuilder, Op};
///
/// let mut b = LayoutBuilder::new();
/// let r = b.register();
/// let mem: AtomicMemory<u32> = AtomicMemory::new(&b.build());
/// mem.execute(Op::RegisterWrite(r, 9)).expect_ack();
/// assert_eq!(mem.execute(Op::RegisterRead(r)).expect_register(), Some(9));
/// ```
#[derive(Debug)]
pub struct ObjectMemory<V, R, S, M>
where
    V: Value,
    R: SharedRegister<V>,
    S: SharedSnapshot<V>,
    M: SharedMaxRegister<V>,
{
    registers: Vec<R>,
    snapshots: Vec<S>,
    max_registers: Vec<M>,
    _marker: std::marker::PhantomData<V>,
}

/// Memory assembled from the lock-free objects.
pub type LockFreeMemory<V> =
    ObjectMemory<V, LockFreeRegister<V>, LockFreeSnapshot<V>, LockFreeMaxRegister<V>>;

/// Memory assembled from the lock-based reference objects.
pub type CoarseMemory<V> = ObjectMemory<V, LockRegister<V>, CoarseSnapshot<V>, LockMaxRegister<V>>;

/// The substrate the runtime uses: [`LockFreeMemory`] by default,
/// [`CoarseMemory`] under the `coarse-substrate` feature.
#[cfg(not(feature = "coarse-substrate"))]
pub type AtomicMemory<V> = LockFreeMemory<V>;

/// The substrate the runtime uses: [`LockFreeMemory`] by default,
/// [`CoarseMemory`] under the `coarse-substrate` feature.
#[cfg(feature = "coarse-substrate")]
pub type AtomicMemory<V> = CoarseMemory<V>;

impl<V, R, S, M> ObjectMemory<V, R, S, M>
where
    V: Value,
    R: SharedRegister<V>,
    S: SharedSnapshot<V>,
    M: SharedMaxRegister<V>,
{
    /// Instantiates thread-safe memory for `layout`.
    pub fn new(layout: &Layout) -> Self {
        Self {
            registers: (0..layout.register_count()).map(|_| R::new()).collect(),
            snapshots: layout
                .snapshot_components()
                .iter()
                .map(|&c| S::new(c))
                .collect(),
            max_registers: (0..layout.max_register_count()).map(|_| M::new()).collect(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Executes one operation atomically.
    ///
    /// # Panics
    ///
    /// Panics if an object id is out of range for the layout.
    pub fn execute(&self, op: Op<V>) -> OpResult<V> {
        #[cfg(feature = "obs")]
        let (kind, start) = (op.kind(), std::time::Instant::now());
        #[cfg(feature = "obs")]
        let _latency = crate::obs::LatencyRecorder { kind, start };
        match op {
            Op::RegisterRead(id) => OpResult::RegisterValue(self.register(id).read()),
            Op::RegisterWrite(id, v) => {
                self.register(id).write(v);
                OpResult::Ack
            }
            Op::SnapshotUpdate(id, component, v) => {
                self.snapshot(id).update(component, v);
                OpResult::Ack
            }
            Op::SnapshotScan(id) => OpResult::SnapshotView(self.snapshot(id).scan()),
            Op::MaxRead(id) => OpResult::MaxValue(self.max_register(id).read()),
            Op::MaxWrite(id, key, v) => {
                self.max_register(id).write(key, v);
                OpResult::Ack
            }
        }
    }

    fn register(&self, id: RegisterId) -> &R {
        &self.registers[id.index()]
    }

    fn snapshot(&self, id: SnapshotId) -> &S {
        &self.snapshots[id.index()]
    }

    fn max_register(&self, id: MaxRegisterId) -> &M {
        &self.max_registers[id.index()]
    }
}

impl<V, R, S, M> ExecuteOps<V> for ObjectMemory<V, R, S, M>
where
    V: Value,
    R: SharedRegister<V>,
    S: SharedSnapshot<V>,
    M: SharedMaxRegister<V>,
{
    fn execute(&self, op: Op<V>) -> OpResult<V> {
        ObjectMemory::execute(self, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_sim::LayoutBuilder;

    fn exercise<Mem: ExecuteOps<u32>>(mem: &Mem, layout: (RegisterId, SnapshotId, MaxRegisterId)) {
        let (r, s, m) = layout;
        mem.execute(Op::RegisterWrite(r, 1)).expect_ack();
        assert_eq!(mem.execute(Op::RegisterRead(r)).expect_register(), Some(1));

        mem.execute(Op::SnapshotUpdate(s, 2, 5)).expect_ack();
        let view = mem.execute(Op::SnapshotScan(s)).expect_view();
        assert_eq!(view[2], Some(5));

        mem.execute(Op::MaxWrite(m, 9, 90)).expect_ack();
        mem.execute(Op::MaxWrite(m, 3, 30)).expect_ack();
        assert_eq!(mem.execute(Op::MaxRead(m)).expect_max(), Some((9, 90)));
    }

    #[test]
    fn both_substrates_mirror_layout_objects() {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let s = b.snapshot(4);
        let m = b.max_register();
        let layout = b.build();

        let lock_free: LockFreeMemory<u32> = LockFreeMemory::new(&layout);
        exercise(&lock_free, (r, s, m));
        let coarse: CoarseMemory<u32> = CoarseMemory::new(&layout);
        exercise(&coarse, (r, s, m));
    }

    #[test]
    fn empty_layout_is_fine() {
        let mem: AtomicMemory<u32> = AtomicMemory::new(&LayoutBuilder::new().build());
        let _ = mem;
    }
}

//! Thread-safe shared memory mirroring a simulator [`Layout`].

use sift_sim::{Layout, MaxRegisterId, Op, OpResult, RegisterId, SnapshotId, Value};

use crate::max_register::LockMaxRegister;
use crate::register::LockRegister;
use crate::snapshot::CoarseSnapshot;

/// Shared memory for real threads, instantiated from the same
/// [`Layout`] a protocol declares for the simulator — so a protocol
/// written once runs on both runtimes unchanged.
///
/// All objects are linearizable; operations take `&self` and are safe to
/// call from any number of threads.
///
/// # Examples
///
/// ```
/// use sift_shmem::memory::AtomicMemory;
/// use sift_sim::{LayoutBuilder, Op};
///
/// let mut b = LayoutBuilder::new();
/// let r = b.register();
/// let mem: AtomicMemory<u32> = AtomicMemory::new(&b.build());
/// mem.execute(Op::RegisterWrite(r, 9)).expect_ack();
/// assert_eq!(mem.execute(Op::RegisterRead(r)).expect_register(), Some(9));
/// ```
#[derive(Debug)]
pub struct AtomicMemory<V> {
    registers: Vec<LockRegister<V>>,
    snapshots: Vec<CoarseSnapshot<V>>,
    max_registers: Vec<LockMaxRegister<V>>,
}

impl<V: Value> AtomicMemory<V> {
    /// Instantiates thread-safe memory for `layout`.
    pub fn new(layout: &Layout) -> Self {
        Self {
            registers: (0..layout.register_count())
                .map(|_| LockRegister::new())
                .collect(),
            snapshots: layout
                .snapshot_components()
                .iter()
                .map(|&c| CoarseSnapshot::new(c))
                .collect(),
            max_registers: (0..layout.max_register_count())
                .map(|_| LockMaxRegister::new())
                .collect(),
        }
    }

    /// Executes one operation atomically.
    ///
    /// # Panics
    ///
    /// Panics if an object id is out of range for the layout.
    pub fn execute(&self, op: Op<V>) -> OpResult<V> {
        match op {
            Op::RegisterRead(id) => OpResult::RegisterValue(self.register(id).read()),
            Op::RegisterWrite(id, v) => {
                self.register(id).write(v);
                OpResult::Ack
            }
            Op::SnapshotUpdate(id, component, v) => {
                self.snapshot(id).update(component, v);
                OpResult::Ack
            }
            Op::SnapshotScan(id) => OpResult::SnapshotView(self.snapshot(id).scan()),
            Op::MaxRead(id) => OpResult::MaxValue(self.max_register(id).read()),
            Op::MaxWrite(id, key, v) => {
                self.max_register(id).write(key, v);
                OpResult::Ack
            }
        }
    }

    fn register(&self, id: RegisterId) -> &LockRegister<V> {
        &self.registers[id.index()]
    }

    fn snapshot(&self, id: SnapshotId) -> &CoarseSnapshot<V> {
        &self.snapshots[id.index()]
    }

    fn max_register(&self, id: MaxRegisterId) -> &LockMaxRegister<V> {
        &self.max_registers[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_sim::LayoutBuilder;

    #[test]
    fn mirrors_layout_objects() {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let s = b.snapshot(4);
        let m = b.max_register();
        let mem: AtomicMemory<u32> = AtomicMemory::new(&b.build());

        mem.execute(Op::RegisterWrite(r, 1)).expect_ack();
        assert_eq!(mem.execute(Op::RegisterRead(r)).expect_register(), Some(1));

        mem.execute(Op::SnapshotUpdate(s, 2, 5)).expect_ack();
        let view = mem.execute(Op::SnapshotScan(s)).expect_view();
        assert_eq!(view[2], Some(5));

        mem.execute(Op::MaxWrite(m, 9, 90)).expect_ack();
        mem.execute(Op::MaxWrite(m, 3, 30)).expect_ack();
        assert_eq!(mem.execute(Op::MaxRead(m)).expect_max(), Some((9, 90)));
    }

    #[test]
    fn empty_layout_is_fine() {
        let mem: AtomicMemory<u32> = AtomicMemory::new(&LayoutBuilder::new().build());
        let _ = mem;
    }
}

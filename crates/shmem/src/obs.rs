//! Substrate observability: contention counters and per-op latency
//! histograms for the lock-free objects.
//!
//! Compiled to **no-ops unless the `obs` cargo feature is enabled**:
//! the hook functions below are empty `#[inline(always)]` stubs in the
//! default build, so the substrate hot paths compile to exactly the
//! uninstrumented code (the negative test in this module and the CI
//! bench-smoke comparison hold the line). With the feature on, hooks
//! record into process-global [`sift_obs`] primitives:
//!
//! * striped relaxed counters for the hot events — slot CAS retries
//!   ([`Slot::publish_max`](crate::lockfree)), snapshot republish
//!   conflicts (`publish_with` rebuild loops), guard entries, retires;
//! * inline-cell counters — seqlock register publishes and write/read
//!   retries, combining max-register installs and covered (dominated)
//!   writes, plus a histogram of writes collapsed per combining
//!   install; a pure small-payload register workload shows inline
//!   writes with **zero** retires/guard entries, proving the fast path;
//! * a retire-pile occupancy gauge with a high-water mark, and a
//!   histogram of reclamation batch sizes (nodes freed per pass);
//! * stale-epoch pin events — guards that pinned an epoch already
//!   behind the live retire sequence (each one extends node lifetimes
//!   by up to one reclaim interval);
//! * log-bucketed per-op latency histograms, recorded around
//!   [`ObjectMemory::execute`](crate::memory::ObjectMemory::execute)
//!   by [`OpKind`](sift_sim::OpKind).
//!
//! All recording is `Relaxed` and strictly one-directional (the
//! substrate never reads an observation), so the instrumentation
//! cannot perturb the `SeqCst` linearization and reclamation arguments
//! of [`lockfree`](crate::lockfree) — see DESIGN.md, "Observability".
//!
//! Counters are global to the process (not per-object): the protocols
//! allocate thousands of short-lived piles per trial, and the questions
//! the counters answer — "how much CAS contention did this bench
//! suffer?", "how deep did retire piles get?" — are aggregate ones.
//! [`reset`] rezeroes everything between measurement windows;
//! [`snapshot`] freezes the current values.

use sift_obs::{Histogram, ObsReport};

/// Number of [`OpKind`](sift_sim::OpKind)s (dense index — see
/// [`sift_sim::metrics::op_kind_index`]).
const OP_KINDS: usize = 6;

/// Stable names for the per-op latency histograms, indexed by
/// [`sift_sim::metrics::op_kind_index`].
const OP_NAMES: [&str; OP_KINDS] = [
    "register_read",
    "register_write",
    "snapshot_update",
    "snapshot_scan",
    "max_read",
    "max_write",
];

/// Whether substrate instrumentation is compiled in (`obs` feature).
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

/// A frozen copy of every substrate counter.
///
/// All zeros when the `obs` feature is disabled (the hooks are no-ops)
/// or after [`reset`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubstrateSnapshot {
    /// Failed `compare_exchange` attempts in max-register publication.
    pub slot_cas_retries: u64,
    /// Copy-on-write republish conflicts (snapshot update rebuilds).
    pub republish_conflicts: u64,
    /// Read-guard entries across all piles.
    pub guard_entries: u64,
    /// Guard entries that pinned an epoch already behind the live
    /// retire sequence.
    pub stale_epoch_pins: u64,
    /// Nodes retired onto piles.
    pub retired_nodes: u64,
    /// Nodes freed by reclamation passes (excludes `Drop`).
    pub reclaimed_nodes: u64,
    /// Reclamation passes that detached a non-empty chain.
    pub reclaim_passes: u64,
    /// Current aggregate retire-pile occupancy (nodes retired but not
    /// yet reclaimed, across all live piles).
    pub retire_pile_len: u64,
    /// High-water mark of the aggregate retire-pile occupancy.
    pub retire_pile_hwm: u64,
    /// Completed writes through the inline seqlock register path
    /// (`SeqCell` publishes). Proves the fast path is taken: a pure
    /// register workload over inline payloads should show these with
    /// zero retires/guard entries.
    pub inline_register_writes: u64,
    /// Inline-cell write claims that found the sequence word odd or
    /// lost the claim CAS (writer-writer contention on a `SeqCell`).
    pub inline_write_retries: u64,
    /// Inline-cell optimistic reads invalidated by a concurrent writer
    /// (`SeqCell` reads and `CombiningMax` root reads).
    pub inline_read_retries: u64,
    /// Combining max-register installs: root-claim winners that
    /// collapsed a batch of announced writes into one store sequence.
    pub combine_installs: u64,
    /// Combining max-register writes that returned covered — their key
    /// was at or below the global maximum they observed (the O(1)
    /// amortized-CAS path).
    pub combine_covered: u64,
    /// Nodes freed per reclamation pass.
    pub reclaim_batch: Histogram,
    /// Writes collapsed per combining install (the winner's own write
    /// plus every fresh announce it carried).
    pub combine_batch: Histogram,
    /// Per-op wall-clock latency in nanoseconds, indexed by
    /// [`sift_sim::metrics::op_kind_index`].
    pub op_latency_ns: [Histogram; OP_KINDS],
}

impl SubstrateSnapshot {
    /// Folds the snapshot into an [`ObsReport`] under `substrate.*`
    /// keys (plus `substrate.enabled` recording whether the hooks were
    /// compiled in).
    pub fn to_report(&self) -> ObsReport {
        let mut r = ObsReport::new();
        r.add_count("substrate.enabled", enabled() as u64);
        r.add_count("substrate.slot_cas_retries", self.slot_cas_retries);
        r.add_count("substrate.republish_conflicts", self.republish_conflicts);
        r.add_count("substrate.guard_entries", self.guard_entries);
        r.add_count("substrate.stale_epoch_pins", self.stale_epoch_pins);
        r.add_count("substrate.retired_nodes", self.retired_nodes);
        r.add_count("substrate.reclaimed_nodes", self.reclaimed_nodes);
        r.add_count("substrate.reclaim_passes", self.reclaim_passes);
        r.add_count(
            "substrate.inline_register_writes",
            self.inline_register_writes,
        );
        r.add_count("substrate.inline_write_retries", self.inline_write_retries);
        r.add_count("substrate.inline_read_retries", self.inline_read_retries);
        r.add_count("substrate.combine_installs", self.combine_installs);
        r.add_count("substrate.combine_covered", self.combine_covered);
        r.observe_max("substrate.retire_pile_hwm", self.retire_pile_hwm);
        r.merge_hist("substrate.reclaim_batch", &self.reclaim_batch);
        r.merge_hist("substrate.combine_batch", &self.combine_batch);
        for (name, hist) in OP_NAMES.iter().zip(&self.op_latency_ns) {
            if !hist.is_empty() {
                r.merge_hist(&format!("substrate.op_ns.{name}"), hist);
            }
        }
        r
    }
}

#[cfg(feature = "obs")]
mod active {
    use super::{SubstrateSnapshot, OP_KINDS};
    use sift_obs::{AtomicHistogram, MaxTracker, StripedCounter};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(super) static SLOT_CAS_RETRIES: StripedCounter = StripedCounter::new();
    pub(super) static REPUBLISH_CONFLICTS: StripedCounter = StripedCounter::new();
    pub(super) static GUARD_ENTRIES: StripedCounter = StripedCounter::new();
    pub(super) static STALE_EPOCH_PINS: StripedCounter = StripedCounter::new();
    pub(super) static RETIRED_NODES: StripedCounter = StripedCounter::new();
    pub(super) static RECLAIMED_NODES: StripedCounter = StripedCounter::new();
    pub(super) static RECLAIM_PASSES: StripedCounter = StripedCounter::new();
    /// Aggregate pile occupancy. A single word (not striped): the
    /// running value feeds the high-water mark, which a striped sum
    /// cannot provide atomically. Retires are already amortized by the
    /// reclaim interval, so the shared line is acceptable at obs
    /// builds' measurement fidelity.
    pub(super) static PILE_LEN: AtomicU64 = AtomicU64::new(0);
    pub(super) static PILE_HWM: MaxTracker = MaxTracker::new();
    pub(super) static INLINE_REGISTER_WRITES: StripedCounter = StripedCounter::new();
    pub(super) static INLINE_WRITE_RETRIES: StripedCounter = StripedCounter::new();
    pub(super) static INLINE_READ_RETRIES: StripedCounter = StripedCounter::new();
    pub(super) static COMBINE_INSTALLS: StripedCounter = StripedCounter::new();
    pub(super) static COMBINE_COVERED: StripedCounter = StripedCounter::new();
    pub(super) static RECLAIM_BATCH: AtomicHistogram = AtomicHistogram::new();
    pub(super) static COMBINE_BATCH: AtomicHistogram = AtomicHistogram::new();
    pub(super) static OP_LATENCY: [AtomicHistogram; OP_KINDS] =
        [const { AtomicHistogram::new() }; OP_KINDS];

    pub(super) fn snapshot() -> SubstrateSnapshot {
        SubstrateSnapshot {
            slot_cas_retries: SLOT_CAS_RETRIES.sum(),
            republish_conflicts: REPUBLISH_CONFLICTS.sum(),
            guard_entries: GUARD_ENTRIES.sum(),
            stale_epoch_pins: STALE_EPOCH_PINS.sum(),
            retired_nodes: RETIRED_NODES.sum(),
            reclaimed_nodes: RECLAIMED_NODES.sum(),
            reclaim_passes: RECLAIM_PASSES.sum(),
            retire_pile_len: PILE_LEN.load(Ordering::Relaxed),
            retire_pile_hwm: PILE_HWM.get(),
            inline_register_writes: INLINE_REGISTER_WRITES.sum(),
            inline_write_retries: INLINE_WRITE_RETRIES.sum(),
            inline_read_retries: INLINE_READ_RETRIES.sum(),
            combine_installs: COMBINE_INSTALLS.sum(),
            combine_covered: COMBINE_COVERED.sum(),
            reclaim_batch: RECLAIM_BATCH.snapshot(),
            combine_batch: COMBINE_BATCH.snapshot(),
            op_latency_ns: std::array::from_fn(|i| OP_LATENCY[i].snapshot()),
        }
    }

    pub(super) fn reset() {
        SLOT_CAS_RETRIES.reset();
        REPUBLISH_CONFLICTS.reset();
        GUARD_ENTRIES.reset();
        STALE_EPOCH_PINS.reset();
        RETIRED_NODES.reset();
        RECLAIMED_NODES.reset();
        RECLAIM_PASSES.reset();
        PILE_LEN.store(0, Ordering::Relaxed);
        PILE_HWM.reset();
        INLINE_REGISTER_WRITES.reset();
        INLINE_WRITE_RETRIES.reset();
        INLINE_READ_RETRIES.reset();
        COMBINE_INSTALLS.reset();
        COMBINE_COVERED.reset();
        RECLAIM_BATCH.reset();
        COMBINE_BATCH.reset();
        for h in &OP_LATENCY {
            h.reset();
        }
    }
}

/// Freezes the current substrate counters (all zeros when the `obs`
/// feature is off).
pub fn snapshot() -> SubstrateSnapshot {
    #[cfg(feature = "obs")]
    {
        active::snapshot()
    }
    #[cfg(not(feature = "obs"))]
    {
        SubstrateSnapshot::default()
    }
}

/// Rezeroes every substrate counter (no-op when the `obs` feature is
/// off). Call between measurement windows; concurrent recorders make
/// the reset racy but never unsafe.
pub fn reset() {
    #[cfg(feature = "obs")]
    active::reset();
}

/// Records the wall-clock latency of one [`Op`](sift_sim::Op) into the
/// per-kind histogram when dropped (so every return path of
/// [`ObjectMemory::execute`](crate::memory::ObjectMemory::execute) is
/// covered). Only exists in `obs` builds.
#[cfg(feature = "obs")]
pub(crate) struct LatencyRecorder {
    pub(crate) kind: sift_sim::OpKind,
    pub(crate) start: std::time::Instant,
}

#[cfg(feature = "obs")]
impl Drop for LatencyRecorder {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        record_op_latency(sift_sim::metrics::op_kind_index(self.kind), ns);
    }
}

// ---- hooks (pub(crate)): empty inline stubs unless `obs` is on ------

macro_rules! hooks {
    ($(fn $name:ident($($arg:ident : $ty:ty),*) $body:block)+) => {
        $(
            #[cfg(feature = "obs")]
            #[inline]
            pub(crate) fn $name($($arg: $ty),*) $body

            // Stubs a caller is compiled out of (e.g. the latency
            // recorder) are expectedly dead in the default build.
            #[cfg(not(feature = "obs"))]
            #[inline(always)]
            #[allow(dead_code)]
            pub(crate) fn $name($(#[allow(unused)] $arg: $ty),*) {}
        )+
    };
}

hooks! {
    fn note_cas_retry() {
        active::SLOT_CAS_RETRIES.add(1);
    }
    fn note_republish_conflict() {
        active::REPUBLISH_CONFLICTS.add(1);
    }
    fn note_guard_entry(stale: bool) {
        active::GUARD_ENTRIES.add(1);
        if stale {
            active::STALE_EPOCH_PINS.add(1);
        }
    }
    fn note_retire() {
        use std::sync::atomic::Ordering;
        active::RETIRED_NODES.add(1);
        let len = active::PILE_LEN.fetch_add(1, Ordering::Relaxed) + 1;
        active::PILE_HWM.observe(len);
    }
    fn note_reclaim(freed: u64, _kept: u64) {
        use std::sync::atomic::Ordering;
        active::RECLAIM_PASSES.add(1);
        active::RECLAIMED_NODES.add(freed);
        active::PILE_LEN.fetch_sub(freed, Ordering::Relaxed);
        active::RECLAIM_BATCH.record(freed);
    }
    fn note_inline_register_write() {
        active::INLINE_REGISTER_WRITES.add(1);
    }
    fn note_inline_write_retry() {
        active::INLINE_WRITE_RETRIES.add(1);
    }
    fn note_inline_read_retry() {
        active::INLINE_READ_RETRIES.add(1);
    }
    fn note_combine_install(batch: u64) {
        active::COMBINE_INSTALLS.add(1);
        active::COMBINE_BATCH.record(batch);
    }
    fn note_combine_covered() {
        active::COMBINE_COVERED.add(1);
    }
    fn record_op_latency(kind_index: usize, ns: u64) {
        active::OP_LATENCY[kind_index].record(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With the feature off this proves the hooks are behavioral
    /// no-ops; with it on, that recording reaches the snapshot. The
    /// enabled-side assertions are lower bounds because other tests of
    /// this binary exercise the (global) substrate concurrently.
    #[test]
    fn hooks_match_feature_flag() {
        note_cas_retry();
        note_republish_conflict();
        note_guard_entry(true);
        note_guard_entry(false);
        note_retire();
        note_retire();
        note_reclaim(1, 1);
        note_inline_register_write();
        note_inline_write_retry();
        note_inline_read_retry();
        note_combine_install(3);
        note_combine_covered();
        record_op_latency(0, 123);
        let snap = snapshot();
        if enabled() {
            assert!(snap.slot_cas_retries >= 1);
            assert!(snap.republish_conflicts >= 1);
            assert!(snap.guard_entries >= 2);
            assert!(snap.stale_epoch_pins >= 1);
            assert!(snap.retired_nodes >= 2);
            assert!(snap.reclaimed_nodes >= 1);
            assert!(snap.retire_pile_hwm >= 2);
            assert!(snap.reclaim_batch.count() >= 1);
            assert!(snap.inline_register_writes >= 1);
            assert!(snap.inline_write_retries >= 1);
            assert!(snap.inline_read_retries >= 1);
            assert!(snap.combine_installs >= 1);
            assert!(snap.combine_covered >= 1);
            assert!(snap.combine_batch.count() >= 1);
            assert!(snap.op_latency_ns[0].count() >= 1);
        } else {
            assert_eq!(
                snap,
                SubstrateSnapshot::default(),
                "obs disabled: every hook must be a no-op"
            );
            reset();
            assert_eq!(snapshot(), SubstrateSnapshot::default());
        }
    }

    #[test]
    fn report_keys_are_prefixed_and_complete() {
        let mut snap = SubstrateSnapshot {
            slot_cas_retries: 3,
            retire_pile_hwm: 9,
            inline_register_writes: 11,
            combine_covered: 5,
            ..SubstrateSnapshot::default()
        };
        snap.op_latency_ns[0].record(100);
        snap.combine_batch.record(4);
        let report = snap.to_report();
        assert_eq!(report.count("substrate.slot_cas_retries"), 3);
        assert_eq!(report.max("substrate.retire_pile_hwm"), 9);
        assert_eq!(report.count("substrate.inline_register_writes"), 11);
        assert_eq!(report.count("substrate.combine_covered"), 5);
        assert_eq!(report.hist("substrate.combine_batch").unwrap().count(), 1);
        assert_eq!(
            report
                .hist("substrate.op_ns.register_read")
                .unwrap()
                .count(),
            1
        );
        assert_eq!(report.count("substrate.enabled"), enabled() as u64);
        // Empty latency histograms are omitted from the report.
        assert!(report.hist("substrate.op_ns.max_write").is_none());
    }
}

//! # sift-shmem — threaded shared-memory substrate
//!
//! Real-thread counterparts of the simulator's shared objects, plus a
//! runtime that drives the same [`Process`](sift_sim::Process) state
//! machines on OS threads:
//!
//! * [`register::LockFreeRegister`] / [`register::PackedRegister`] /
//!   [`register::AtomicIndexRegister`] — lock-free linearizable MWMR
//!   registers (an allocation-free inline seqlock cell for ≤16-byte
//!   trivially-destructible values, pointer publication for the rest, a
//!   single `AtomicU64` for word-packable ones);
//!   [`register::LockRegister`] is the lock-based reference.
//! * [`snapshot::LockFreeSnapshot`] — lock-free snapshot: versioned
//!   copy-on-write publication with `O(1)` wait-free scans.
//!   [`snapshot::CoarseSnapshot`] is the lock-based reference;
//!   [`snapshot::WaitFreeSnapshot`] is the Afek et al. construction
//!   from single-writer registers, the one the paper's unit-cost
//!   accounting abstracts away.
//! * [`max_register::LockFreeMaxRegister`] — max register with a
//!   combining announce-array fast path for small values (concurrent
//!   writers collapse into `O(1)` amortized CAS traffic) and a
//!   compare-exchange publication path for the rest;
//!   [`max_register::LockMaxRegister`] is the lock-based
//!   reference and [`max_register::TreeMaxRegister`] the switch-trie
//!   construction from monotone circuits (footnote 1's object, built
//!   from plain bits).
//! * [`indexed::IndexedMemory`] — lock-free execution of the
//!   register-model protocols: personae are published once and
//!   registers carry word-sized table indices.
//! * [`memory::AtomicMemory`] + [`runtime::run_threads`] — instantiate a
//!   protocol's [`Layout`](sift_sim::Layout) over these objects and run
//!   its participants on threads. `AtomicMemory` uses the lock-free
//!   objects; building with the `coarse-substrate` feature switches it
//!   to the lock-based references for differential testing.
//!
//! Statistical claims are measured on the simulator, where the adversary
//! is controlled; this crate shows the algorithms running on real
//! atomics and provides the substrate for wall-clock benches.
//!
//! All `unsafe` in the crate lives in two audited leaf modules: the
//! private `lockfree` module (pointer publication with reader-gated
//! reclamation, plus the inline seqlock cells' bitwise payload
//! encoding) and the tiny [`affinity`] module (one raw
//! `sched_setaffinity` syscall for bench core pinning); everything
//! else forbids it.
//!
//! Building with the `obs` feature turns on the [`obs`] module's
//! contention counters and per-op latency histograms; without it every
//! recording hook is an empty inline stub.

#![warn(missing_docs)]
#![deny(unsafe_code)]

#[allow(unsafe_code)]
pub mod affinity;
pub mod history;
pub mod indexed;
#[allow(unsafe_code)]
mod lockfree;
pub mod max_register;
pub mod memory;
pub mod obs;
pub mod persona_table;
pub mod register;
pub mod runtime;
pub mod snapshot;
pub mod sync;

pub use history::{history_fingerprint, RecordingMemory};
pub use indexed::{run_threads_lock_free, IndexedMemory};
pub use memory::{AtomicMemory, CoarseMemory, ExecuteOps, LockFreeMemory, ObjectMemory};
pub use persona_table::PersonaTable;
pub use runtime::{
    run_lockstep, run_lockstep_on, run_lockstep_recorded, run_script_on, run_threads,
    run_threads_recorded, ThreadReport,
};

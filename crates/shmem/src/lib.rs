//! # sift-shmem — threaded shared-memory substrate
//!
//! Real-thread counterparts of the simulator's shared objects, plus a
//! runtime that drives the same [`Process`](sift_sim::Process) state
//! machines on OS threads:
//!
//! * [`register::LockRegister`] / [`register::AtomicIndexRegister`] —
//!   linearizable MWMR registers (lock-based for arbitrary values,
//!   lock-free word-sized for index exchange via
//!   [`persona_table::PersonaTable`]).
//! * [`snapshot::CoarseSnapshot`] — lock-based linearizable snapshot.
//! * [`snapshot::WaitFreeSnapshot`] — the Afek et al. wait-free snapshot
//!   from single-writer registers (double collect + embedded-view
//!   helping), the construction the paper's unit-cost accounting
//!   abstracts away.
//! * [`max_register::LockMaxRegister`] /
//!   [`max_register::TreeMaxRegister`] — max registers, including the
//!   switch-trie construction from monotone circuits (footnote 1's
//!   object, built from plain bits).
//! * [`indexed::IndexedMemory`] — lock-free execution of the
//!   register-model protocols: personae are published once and
//!   registers carry word-sized table indices.
//! * [`memory::AtomicMemory`] + [`runtime::run_threads`] — instantiate a
//!   protocol's [`Layout`](sift_sim::Layout) over these objects and run
//!   its participants on threads.
//!
//! Statistical claims are measured on the simulator, where the adversary
//! is controlled; this crate shows the algorithms running on real
//! atomics and provides the substrate for wall-clock benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod history;
pub mod indexed;
pub mod max_register;
pub mod memory;
pub mod persona_table;
pub mod register;
pub mod runtime;
pub mod snapshot;
pub mod sync;

pub use history::RecordingMemory;
pub use indexed::{run_threads_lock_free, IndexedMemory};
pub use memory::AtomicMemory;
pub use persona_table::PersonaTable;
pub use runtime::{
    run_lockstep, run_lockstep_recorded, run_threads, run_threads_recorded, ThreadReport,
};

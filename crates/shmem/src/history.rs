//! History-recording instrumentation for the threaded substrate.
//!
//! [`RecordingMemory`] wraps an [`AtomicMemory`] and logs every
//! operation as a [`HistoryEntry`]: a global atomic ticket clock is
//! drawn immediately before and immediately after each `execute`, so
//! the recorded `[invoked, responded]` interval always contains the
//! operation's linearization point. Recorded real-time precedence
//! (`A.responded < B.invoked`) therefore under-approximates true
//! precedence, which makes feeding the resulting
//! [`History`] to
//! [`check_linearizable`](sift_sim::mc::check_linearizable) sound: a
//! history the checker rejects is genuinely non-linearizable.
//!
//! This is the tooling for the Golab–Higham–Woelfel caveat (§2 of the
//! paper): the threaded runtime is only a faithful stand-in for the
//! atomic model if its objects are linearizable, and with this module we
//! can at least falsify that claim on real captured histories.

use std::sync::atomic::{AtomicU64, Ordering};

use sift_sim::fuzz::FingerprintHasher;
use sift_sim::mc::{History, HistoryEntry, ObjectKey};
use sift_sim::{Layout, Op, OpResult, ProcessId, Value};

use crate::memory::{AtomicMemory, ExecuteOps};
use crate::sync::Mutex;

/// Digests a history's register-write interleaving signature: the
/// sequence of `(process, operation kind, object)` triples in recording
/// order, with value payloads erased. Feeds the fuzzer's coverage
/// fingerprint, letting substrate-level histories distinguish schedules
/// whose final outputs coincide but whose interleavings differ.
pub fn history_fingerprint<V: Value>(history: &History<V>) -> u64 {
    let mut h = FingerprintHasher::new();
    for entry in history.entries() {
        h.write_usize(entry.pid.index());
        h.write_u64(sift_sim::metrics::op_kind_index(entry.op.kind()) as u64);
        let (tag, index) = match entry.object() {
            ObjectKey::Register(r) => (0u64, r.index()),
            ObjectKey::Snapshot(s) => (1, s.index()),
            ObjectKey::MaxRegister(m) => (2, m.index()),
        };
        h.write_u64(tag);
        h.write_usize(index);
    }
    h.finish()
}

/// An [`ExecuteOps`] memory (an [`AtomicMemory`] unless overridden)
/// that records every operation with invocation/response timestamps.
///
/// The memory parameter makes the instrumentation reusable for
/// differential and adversarial testing: wrap a
/// [`LockFreeMemory`](crate::memory::LockFreeMemory) or
/// [`CoarseMemory`](crate::memory::CoarseMemory) explicitly via
/// [`over`](RecordingMemory::over), or wrap a deliberately broken
/// memory to check that the linearizability checker rejects its
/// histories.
#[derive(Debug)]
pub struct RecordingMemory<V, M = AtomicMemory<V>> {
    memory: M,
    clock: AtomicU64,
    log: Mutex<Vec<HistoryEntry<V>>>,
}

impl<V: Value> RecordingMemory<V> {
    /// Builds recording memory for `layout` over the default
    /// [`AtomicMemory`] substrate.
    pub fn new(layout: &Layout) -> Self {
        Self::over(AtomicMemory::new(layout))
    }
}

impl<V: Value, M: ExecuteOps<V>> RecordingMemory<V, M> {
    /// Wraps an existing memory in the recorder.
    pub fn over(memory: M) -> Self {
        Self {
            memory,
            clock: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Executes `op` on behalf of `pid`, recording the operation, its
    /// result, and its invocation/response interval.
    pub fn execute_as(&self, pid: ProcessId, op: Op<V>) -> OpResult<V> {
        let invoked = self.clock.fetch_add(1, Ordering::SeqCst);
        let result = self.memory.execute(op.clone());
        let responded = self.clock.fetch_add(1, Ordering::SeqCst);
        self.log.lock().push(HistoryEntry {
            pid,
            op,
            result: result.clone(),
            invoked,
            responded,
        });
        result
    }

    /// Number of operations recorded so far.
    pub fn recorded_ops(&self) -> usize {
        self.log.lock().len()
    }

    /// The [`history_fingerprint`] of everything recorded so far,
    /// without consuming the recorder.
    pub fn fingerprint(&self) -> u64 {
        history_fingerprint(&History::from_entries(self.log.lock().clone()))
    }

    /// Consumes the recorder and returns the captured history.
    pub fn into_history(self) -> History<V> {
        History::from_entries(self.log.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_sim::mc::check_linearizable;
    use sift_sim::LayoutBuilder;

    #[test]
    fn records_intervals_and_results() {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let layout = b.build();
        let mem = RecordingMemory::<u64>::new(&layout);
        mem.execute_as(ProcessId(0), Op::RegisterWrite(r, 7))
            .expect_ack();
        assert_eq!(
            mem.execute_as(ProcessId(1), Op::RegisterRead(r))
                .expect_register(),
            Some(7)
        );
        assert_eq!(mem.recorded_ops(), 2);
        let history = mem.into_history();
        history.check_well_formed().unwrap();
        assert_eq!(history.len(), 2);
        let e = &history.entries()[0];
        assert_eq!(e.pid, ProcessId(0));
        assert!(e.invoked < e.responded);
        assert!(e.responded < history.entries()[1].invoked);
        check_linearizable(&layout, &history).unwrap();
    }

    #[test]
    fn fingerprint_reflects_interleaving_not_payloads() {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let layout = b.build();

        let write_then_read = |w: u64| {
            let mem = RecordingMemory::<u64>::new(&layout);
            mem.execute_as(ProcessId(0), Op::RegisterWrite(r, w));
            mem.execute_as(ProcessId(1), Op::RegisterRead(r));
            mem.fingerprint()
        };
        // Same interleaving, different payloads: same fingerprint.
        assert_eq!(write_then_read(7), write_then_read(9));

        // Reordered interleaving: different fingerprint.
        let mem = RecordingMemory::<u64>::new(&layout);
        mem.execute_as(ProcessId(1), Op::RegisterRead(r));
        mem.execute_as(ProcessId(0), Op::RegisterWrite(r, 7));
        assert_ne!(mem.fingerprint(), write_then_read(7));
    }

    #[test]
    fn fingerprint_matches_the_free_function_on_the_history() {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let layout = b.build();
        let mem = RecordingMemory::<u64>::new(&layout);
        mem.execute_as(ProcessId(0), Op::RegisterWrite(r, 3));
        let live = mem.fingerprint();
        assert_eq!(live, history_fingerprint(&mem.into_history()));
    }

    #[test]
    fn fingerprint_distinguishes_objects() {
        let mut b = LayoutBuilder::new();
        let r0 = b.register();
        let r1 = b.register();
        let layout = b.build();
        let on = |reg| {
            let mem = RecordingMemory::<u64>::new(&layout);
            mem.execute_as(ProcessId(0), Op::RegisterWrite(reg, 1));
            mem.fingerprint()
        };
        assert_ne!(on(r0), on(r1));
    }
}

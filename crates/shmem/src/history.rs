//! History-recording instrumentation for the threaded substrate.
//!
//! [`RecordingMemory`] wraps an [`AtomicMemory`] and logs every
//! operation as a [`HistoryEntry`]: a global atomic ticket clock is
//! drawn immediately before and immediately after each `execute`, so
//! the recorded `[invoked, responded]` interval always contains the
//! operation's linearization point. Recorded real-time precedence
//! (`A.responded < B.invoked`) therefore under-approximates true
//! precedence, which makes feeding the resulting
//! [`History`] to
//! [`check_linearizable`](sift_sim::mc::check_linearizable) sound: a
//! history the checker rejects is genuinely non-linearizable.
//!
//! This is the tooling for the Golab–Higham–Woelfel caveat (§2 of the
//! paper): the threaded runtime is only a faithful stand-in for the
//! atomic model if its objects are linearizable, and with this module we
//! can at least falsify that claim on real captured histories.

use std::sync::atomic::{AtomicU64, Ordering};

use sift_sim::mc::{History, HistoryEntry};
use sift_sim::{Layout, Op, OpResult, ProcessId, Value};

use crate::memory::{AtomicMemory, ExecuteOps};
use crate::sync::Mutex;

/// An [`ExecuteOps`] memory (an [`AtomicMemory`] unless overridden)
/// that records every operation with invocation/response timestamps.
///
/// The memory parameter makes the instrumentation reusable for
/// differential and adversarial testing: wrap a
/// [`LockFreeMemory`](crate::memory::LockFreeMemory) or
/// [`CoarseMemory`](crate::memory::CoarseMemory) explicitly via
/// [`over`](RecordingMemory::over), or wrap a deliberately broken
/// memory to check that the linearizability checker rejects its
/// histories.
#[derive(Debug)]
pub struct RecordingMemory<V, M = AtomicMemory<V>> {
    memory: M,
    clock: AtomicU64,
    log: Mutex<Vec<HistoryEntry<V>>>,
}

impl<V: Value> RecordingMemory<V> {
    /// Builds recording memory for `layout` over the default
    /// [`AtomicMemory`] substrate.
    pub fn new(layout: &Layout) -> Self {
        Self::over(AtomicMemory::new(layout))
    }
}

impl<V: Value, M: ExecuteOps<V>> RecordingMemory<V, M> {
    /// Wraps an existing memory in the recorder.
    pub fn over(memory: M) -> Self {
        Self {
            memory,
            clock: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Executes `op` on behalf of `pid`, recording the operation, its
    /// result, and its invocation/response interval.
    pub fn execute_as(&self, pid: ProcessId, op: Op<V>) -> OpResult<V> {
        let invoked = self.clock.fetch_add(1, Ordering::SeqCst);
        let result = self.memory.execute(op.clone());
        let responded = self.clock.fetch_add(1, Ordering::SeqCst);
        self.log.lock().push(HistoryEntry {
            pid,
            op,
            result: result.clone(),
            invoked,
            responded,
        });
        result
    }

    /// Number of operations recorded so far.
    pub fn recorded_ops(&self) -> usize {
        self.log.lock().len()
    }

    /// Consumes the recorder and returns the captured history.
    pub fn into_history(self) -> History<V> {
        History::from_entries(self.log.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_sim::mc::check_linearizable;
    use sift_sim::LayoutBuilder;

    #[test]
    fn records_intervals_and_results() {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let layout = b.build();
        let mem = RecordingMemory::<u64>::new(&layout);
        mem.execute_as(ProcessId(0), Op::RegisterWrite(r, 7))
            .expect_ack();
        assert_eq!(
            mem.execute_as(ProcessId(1), Op::RegisterRead(r))
                .expect_register(),
            Some(7)
        );
        assert_eq!(mem.recorded_ops(), 2);
        let history = mem.into_history();
        history.check_well_formed().unwrap();
        assert_eq!(history.len(), 2);
        let e = &history.entries()[0];
        assert_eq!(e.pid, ProcessId(0));
        assert!(e.invoked < e.responded);
        assert!(e.responded < history.entries()[1].invoked);
        check_linearizable(&layout, &history).unwrap();
    }
}

//! Publish-once value tables for word-sized lock-free registers.
//!
//! The paper's registers hold whole personae; real lock-free registers
//! hold a machine word. Because every persona is generated *before* the
//! protocol starts (the persona technique), each process can publish its
//! persona once in a pre-sized table and protocols can then exchange
//! `u32` table indices through
//! [`AtomicIndexRegister`](crate::register::AtomicIndexRegister)s — the
//! configuration closest to the paper's model that is actually lock-free
//! on hardware.

use std::sync::OnceLock;

use sift_sim::Value;

/// A table of values published at most once per slot.
///
/// # Examples
///
/// ```
/// use sift_shmem::persona_table::PersonaTable;
/// let table: PersonaTable<String> = PersonaTable::new(2);
/// table.publish(0, "alice".to_string());
/// assert_eq!(table.get(0), Some(&"alice".to_string()));
/// assert_eq!(table.get(1), None);
/// ```
#[derive(Debug)]
pub struct PersonaTable<V> {
    slots: Vec<OnceLock<V>>,
}

impl<V: Value> PersonaTable<V> {
    /// Creates a table with `len` empty slots.
    pub fn new(len: usize) -> Self {
        Self {
            slots: (0..len).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the table has zero slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Publishes `value` in `slot`. Returns `false` if the slot was
    /// already published (the original value is kept).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn publish(&self, slot: usize, value: V) -> bool {
        self.slots[slot].set(value).is_ok()
    }

    /// Reads slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn get(&self, slot: usize) -> Option<&V> {
        self.slots[slot].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn publish_once_semantics() {
        let t: PersonaTable<u32> = PersonaTable::new(1);
        assert!(t.publish(0, 7));
        assert!(!t.publish(0, 8), "second publish is rejected");
        assert_eq!(t.get(0), Some(&7));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn concurrent_publishers_keep_exactly_one() {
        let t = Arc::new(PersonaTable::<u32>::new(1));
        let handles: Vec<_> = (0..8u32)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || t.publish(0, i))
            })
            .collect();
        let successes = handles
            .into_iter()
            .filter(|_| true)
            .map(|h| h.join().unwrap())
            .filter(|&ok| ok)
            .count();
        assert_eq!(successes, 1, "exactly one publish wins");
        assert!(t.get(0).is_some());
    }
}

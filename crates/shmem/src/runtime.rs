//! Runs simulator state machines on real OS threads.
//!
//! The adversary here is the operating-system scheduler: it cannot see
//! the processes' coins (they live in thread-local state), so it is a
//! reasonable real-world approximation of a content-oblivious adversary
//! — with the caveat discussed in the paper's §2 (and in
//! Golab–Higham–Woelfel) that linearizable implementations do not in
//! general preserve the probabilistic guarantees proved for atomic
//! objects. The statistical experiments therefore run on the simulator;
//! this runtime demonstrates the algorithms working on real atomics and
//! measures wall-clock cost.

use std::sync::Arc;

use sift_sim::mc::History;
use sift_sim::schedule::{RoundRobin, Schedule};
use sift_sim::{Layout, Op, OpResult, Process, ProcessId, Step};

use crate::history::RecordingMemory;
use crate::memory::AtomicMemory;

/// Outcome of one threaded run.
#[derive(Debug)]
pub struct ThreadReport<O> {
    /// Per-process outputs, in process order.
    pub outputs: Vec<O>,
    /// Per-process operation counts.
    pub ops: Vec<u64>,
}

impl<O> ThreadReport<O> {
    /// Total operations across all processes.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }
}

impl<O: PartialEq> ThreadReport<O> {
    /// Returns `true` if all outputs are equal.
    pub fn outputs_agree(&self) -> bool {
        self.outputs.windows(2).all(|w| w[0] == w[1])
    }
}

/// Runs each process state machine on its own OS thread against
/// [`AtomicMemory`] built from `layout`, blocking until all finish.
///
/// # Examples
///
/// ```
/// use sift_core::{Conciliator, Epsilon, SiftingConciliator};
/// use sift_shmem::runtime::run_threads;
/// use sift_sim::rng::SeedSplitter;
/// use sift_sim::{LayoutBuilder, ProcessId};
///
/// let n = 4;
/// let mut b = LayoutBuilder::new();
/// let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
/// let layout = b.build();
/// let split = SeedSplitter::new(1);
/// let procs: Vec<_> = (0..n)
///     .map(|i| {
///         let mut rng = split.stream("process", i as u64);
///         c.participant(ProcessId(i), i as u64, &mut rng)
///     })
///     .collect();
/// let report = run_threads(&layout, procs);
/// assert_eq!(report.outputs.len(), n);
/// ```
///
/// # Panics
///
/// Panics if a process thread panics.
pub fn run_threads<P>(layout: &Layout, processes: Vec<P>) -> ThreadReport<P::Output>
where
    P: Process + Send + 'static,
    P::Output: Send + 'static,
{
    let memory: Arc<AtomicMemory<P::Value>> = Arc::new(AtomicMemory::new(layout));
    let handles: Vec<_> = processes
        .into_iter()
        .map(|mut proc| {
            let memory = Arc::clone(&memory);
            std::thread::spawn(move || {
                let mut ops = 0u64;
                let mut prev = None;
                loop {
                    match proc.step(prev.take()) {
                        Step::Issue(op) => {
                            ops += 1;
                            prev = Some(memory.execute(op));
                        }
                        Step::Done(output) => return (output, ops),
                    }
                }
            })
        })
        .collect();
    let mut outputs = Vec::with_capacity(handles.len());
    let mut ops = Vec::with_capacity(handles.len());
    for handle in handles {
        let (output, count) = handle.join().expect("process thread panicked");
        outputs.push(output);
        ops.push(count);
    }
    ThreadReport { outputs, ops }
}

/// Runs each process state machine on its own OS thread against a
/// [`RecordingMemory`], returning the report together with the captured
/// concurrent [`History`] (see
/// [`check_linearizable`](sift_sim::mc::check_linearizable)).
///
/// # Panics
///
/// Panics if a process thread panics.
pub fn run_threads_recorded<P>(
    layout: &Layout,
    processes: Vec<P>,
) -> (ThreadReport<P::Output>, History<P::Value>)
where
    P: Process + Send + 'static,
    P::Output: Send + 'static,
{
    let memory: Arc<RecordingMemory<P::Value>> = Arc::new(RecordingMemory::new(layout));
    let handles: Vec<_> = processes
        .into_iter()
        .enumerate()
        .map(|(i, mut proc)| {
            let memory = Arc::clone(&memory);
            std::thread::spawn(move || {
                let mut ops = 0u64;
                let mut prev = None;
                loop {
                    match proc.step(prev.take()) {
                        Step::Issue(op) => {
                            ops += 1;
                            prev = Some(memory.execute_as(ProcessId(i), op));
                        }
                        Step::Done(output) => return (output, ops),
                    }
                }
            })
        })
        .collect();
    let mut outputs = Vec::with_capacity(handles.len());
    let mut ops = Vec::with_capacity(handles.len());
    for handle in handles {
        let (output, count) = handle.join().expect("process thread panicked");
        outputs.push(output);
        ops.push(count);
    }
    let Ok(memory) = Arc::try_unwrap(memory) else {
        unreachable!("all process threads joined, so no clone outlives us");
    };
    (ThreadReport { outputs, ops }, memory.into_history())
}

/// Drives the state machines against the threaded objects in the exact
/// round-robin order the simulator's engine would use, single-threaded.
///
/// Because the engine resumes a state machine immediately after its
/// operation executes, "one operation per scheduled slot" here is the
/// same discipline — outputs must match a simulator run under
/// [`RoundRobin`] exactly, which `tests/cross_runtime.rs` verifies.
pub fn run_lockstep<P: Process>(layout: &Layout, processes: Vec<P>) -> Vec<P::Output> {
    run_lockstep_on(&AtomicMemory::new(layout), processes)
}

/// [`run_lockstep`] against a caller-provided memory — any
/// [`ExecuteOps`](crate::memory::ExecuteOps) implementation. This is
/// what differential tests use to drive the *same* deterministic
/// schedule through both substrates (e.g.
/// [`LockFreeMemory`](crate::memory::LockFreeMemory) versus
/// [`CoarseMemory`](crate::memory::CoarseMemory)) and compare outcomes.
pub fn run_lockstep_on<P: Process, M: crate::memory::ExecuteOps<P::Value>>(
    memory: &M,
    processes: Vec<P>,
) -> Vec<P::Output> {
    drive_lockstep(processes, |_, op| memory.execute(op))
}

/// [`run_lockstep`] over a [`RecordingMemory`]: returns the outputs and
/// the captured (sequential) history.
pub fn run_lockstep_recorded<P: Process>(
    layout: &Layout,
    processes: Vec<P>,
) -> (Vec<P::Output>, History<P::Value>) {
    let memory = RecordingMemory::new(layout);
    let outputs = drive_lockstep(processes, |pid, op| memory.execute_as(pid, op));
    (outputs, memory.into_history())
}

/// Replays a process-id script — e.g. a fuzzer corpus entry or a shrunk
/// counterexample — against a caller-provided memory, mirroring the
/// simulator engine's slot semantics exactly: each script slot executes
/// the scheduled process's pending operation and immediately resumes
/// the state machine, slots naming finished processes are free no-ops,
/// and processes the script starves end with `None`.
///
/// This is the substrate half of the differential fuzz harness: the
/// same script replayed here on [`LockFreeMemory`](crate::memory::
/// LockFreeMemory) and [`CoarseMemory`](crate::memory::CoarseMemory)
/// (or through the simulator's `replay_script`) must produce identical
/// outputs.
///
/// # Panics
///
/// Panics if the script names a process index out of range.
pub fn run_script_on<P: Process, M: crate::memory::ExecuteOps<P::Value>>(
    memory: &M,
    processes: Vec<P>,
    script: &[usize],
) -> Vec<Option<P::Output>> {
    enum Slot<P: Process> {
        Running { proc: P, pending: Op<P::Value> },
        Done(P::Output),
    }
    let mut slots: Vec<Slot<P>> = processes
        .into_iter()
        .map(|mut proc| match proc.step(None) {
            Step::Issue(op) => Slot::Running { proc, pending: op },
            Step::Done(output) => Slot::Done(output),
        })
        .collect();
    for &i in script {
        assert!(i < slots.len(), "script names out-of-range process {i}");
        if let Slot::Running { proc, pending } = &mut slots[i] {
            let result = memory.execute(pending.clone());
            match proc.step(Some(result)) {
                Step::Issue(next) => *pending = next,
                Step::Done(output) => slots[i] = Slot::Done(output),
            }
        }
    }
    slots
        .into_iter()
        .map(|slot| match slot {
            Slot::Running { .. } => None,
            Slot::Done(output) => Some(output),
        })
        .collect()
}

/// A live process paired with the result of its last operation, or
/// `None` once it has finished.
type LockstepSlot<P> = Option<(P, Option<OpResult<<P as Process>::Value>>)>;

fn drive_lockstep<P: Process>(
    processes: Vec<P>,
    mut execute: impl FnMut(ProcessId, Op<P::Value>) -> OpResult<P::Value>,
) -> Vec<P::Output> {
    let mut slots: Vec<LockstepSlot<P>> = processes.into_iter().map(|p| Some((p, None))).collect();
    let mut outputs: Vec<Option<P::Output>> = (0..slots.len()).map(|_| None).collect();
    let mut schedule = RoundRobin::new(slots.len());
    let mut remaining = slots.len();
    while remaining > 0 {
        let pid = schedule.next_pid().expect("round robin is infinite");
        let slot = &mut slots[pid.index()];
        if let Some((proc_ref, prev)) = slot.as_mut() {
            match proc_ref.step(prev.take()) {
                Step::Issue(op) => {
                    *prev = Some(execute(pid, op));
                }
                Step::Done(out) => {
                    outputs[pid.index()] = Some(out);
                    *slot = None;
                    remaining -= 1;
                }
            }
        }
    }
    outputs
        .into_iter()
        .map(|o| o.expect("lockstep runs every process to completion"))
        .collect()
}

/// Convenience alias used by examples: the value type most protocols
/// store.
pub type PersonaMemory = AtomicMemory<sift_core::Persona>;

#[cfg(test)]
mod tests {
    use super::*;
    use sift_core::{
        CilConciliator, Conciliator, EmbeddedConciliator, Epsilon, SiftingConciliator,
        SnapshotConciliator,
    };
    use sift_sim::rng::SeedSplitter;
    use sift_sim::{LayoutBuilder, ProcessId};

    #[test]
    fn sifting_conciliator_runs_on_threads() {
        let n = 8;
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        let split = SeedSplitter::new(2);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        let report = run_threads(&layout, procs);
        assert_eq!(report.outputs.len(), n);
        for p in &report.outputs {
            assert!(p.input() < n as u64, "validity on threads");
        }
        let rounds = c.rounds() as u64;
        assert!(report.ops.iter().all(|&o| o == rounds));
    }

    #[test]
    fn script_replay_matches_the_simulator_engine() {
        use sift_sim::mc::replay_script;
        use sift_sim::schedule::RandomInterleave;
        use sift_sim::Engine;

        let n = 6;
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        let split = SeedSplitter::new(11);
        let make_procs = || -> Vec<_> {
            (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), i as u64, &mut rng)
                })
                .collect()
        };
        // Record the charged slot script of a random interleaving.
        let mut engine = Engine::new(&layout, make_procs());
        engine.enable_trace();
        let report = engine.run(RandomInterleave::new(n, 5));
        let script: Vec<usize> = report
            .trace
            .as_ref()
            .expect("trace enabled")
            .events()
            .iter()
            .map(|e| e.pid.index())
            .collect();

        let sim_outputs = replay_script(&layout, make_procs(), &script);
        let substrate_outputs = run_script_on(&AtomicMemory::new(&layout), make_procs(), &script);
        assert_eq!(sim_outputs.len(), substrate_outputs.len());
        for (a, b) in sim_outputs.iter().zip(&substrate_outputs) {
            assert_eq!(a, b);
        }
        assert!(substrate_outputs.iter().all(Option::is_some));
    }

    #[test]
    fn script_replay_starves_unscheduled_processes() {
        let n = 3;
        let mut b = LayoutBuilder::new();
        let c = SiftingConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        let split = SeedSplitter::new(12);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        // Only p0 is ever scheduled, and generously enough to finish.
        let script = vec![0usize; 4 * c.rounds()];
        let outputs = run_script_on(&AtomicMemory::new(&layout), procs, &script);
        assert!(outputs[0].is_some());
        assert!(outputs[1].is_none());
        assert!(outputs[2].is_none());
    }

    #[test]
    fn snapshot_conciliator_runs_on_threads() {
        let n = 6;
        let mut b = LayoutBuilder::new();
        let c = SnapshotConciliator::allocate(&mut b, n, Epsilon::HALF);
        let layout = b.build();
        let split = SeedSplitter::new(3);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), 100 + i as u64, &mut rng)
            })
            .collect();
        let report = run_threads(&layout, procs);
        for p in &report.outputs {
            assert!((100..106).contains(&p.input()));
        }
    }

    #[test]
    fn embedded_conciliator_runs_on_threads() {
        let n = 8;
        let mut b = LayoutBuilder::new();
        let c = EmbeddedConciliator::allocate(&mut b, n);
        let layout = b.build();
        let split = SeedSplitter::new(4);
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                c.participant(ProcessId(i), i as u64, &mut rng)
            })
            .collect();
        let report = run_threads(&layout, procs);
        let bound = c.steps_bound().unwrap();
        for (&ops, p) in report.ops.iter().zip(&report.outputs) {
            assert!(ops <= bound);
            assert!(p.input() < n as u64);
        }
    }

    #[test]
    fn cil_conciliator_usually_agrees_on_threads() {
        let n = 4;
        let mut agreements = 0;
        let trials = 20;
        for seed in 0..trials {
            let mut b = LayoutBuilder::new();
            let c = CilConciliator::allocate(&mut b, n);
            let layout = b.build();
            let split = SeedSplitter::new(seed);
            let procs: Vec<_> = (0..n)
                .map(|i| {
                    let mut rng = split.stream("process", i as u64);
                    c.participant(ProcessId(i), i as u64, &mut rng)
                })
                .collect();
            let report = run_threads(&layout, procs);
            if report.outputs_agree() {
                agreements += 1;
            }
        }
        assert!(
            agreements * 2 > trials,
            "agreement rate {agreements}/{trials} suspiciously low"
        );
    }

    #[test]
    fn adopt_commit_objects_run_on_threads() {
        use sift_adopt_commit::{check_ac_properties, AdoptCommit, GafniSnapshotAc};
        let n = 6;
        let mut b = LayoutBuilder::new();
        let ac = GafniSnapshotAc::<u64>::allocate(&mut b, n, |v| *v);
        let layout = b.build();
        let proposals: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
        let procs: Vec<_> = proposals
            .iter()
            .enumerate()
            .map(|(i, &c)| ac.proposer(ProcessId(i), c, c))
            .collect();
        let report = run_threads(&layout, procs);
        let outputs: Vec<_> = report.outputs.into_iter().map(Some).collect();
        check_ac_properties(&proposals, &outputs);
    }

    #[test]
    fn sifting_tas_runs_on_threads() {
        use sift_tas::{check_tas_properties, SiftingTas};
        let n = 8;
        for seed in 0..10 {
            let mut b = LayoutBuilder::new();
            let tas = SiftingTas::allocate(&mut b, n);
            let layout = b.build();
            let split = SeedSplitter::new(seed);
            let procs: Vec<_> = (0..n)
                .map(|i| tas.participant(ProcessId(i), &mut split.stream("process", i as u64)))
                .collect();
            let report = run_threads(&layout, procs);
            let outputs: Vec<_> = report.outputs.into_iter().map(Some).collect();
            check_tas_properties(&outputs);
        }
    }

    #[test]
    fn full_consensus_stack_runs_on_threads() {
        use sift_consensus::{check_consensus, snapshot_consensus};
        let n = 5;
        let mut b = LayoutBuilder::new();
        let protocol = snapshot_consensus(&mut b, n);
        let layout = b.build();
        let split = SeedSplitter::new(6);
        let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
        let procs: Vec<_> = (0..n)
            .map(|i| {
                let mut rng = split.stream("process", i as u64);
                protocol.participant(ProcessId(i), inputs[i], &mut rng)
            })
            .collect();
        let report = run_threads(&layout, procs);
        check_consensus(&inputs, report.outputs.iter());
    }
}

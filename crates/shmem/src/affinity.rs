//! Thread-to-core pinning for the contention benches.
//!
//! The bench harness pins each worker thread to a core so the measured
//! contention profile is a property of the primitives, not of where the
//! scheduler happened to place the threads; BENCH_shmem.json rows
//! record whether pinning actually took effect. The workspace carries
//! no `libc` dependency, so on x86-64 Linux the single call this needs
//! — `sched_setaffinity(2)` on the calling thread — is made as a raw
//! syscall; everywhere else [`pin_to_core`] reports failure and the
//! benches fall back to unpinned runs.

/// Pins the **calling thread** to `core` (0-based). Returns `true` on
/// success; `false` when the core does not exist, the kernel refuses,
/// or the platform is unsupported (non-Linux, non-x86-64).
pub fn pin_to_core(core: usize) -> bool {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        // A fixed 1024-bit cpu_set_t, the kernel's historical size.
        let mut mask = [0u64; 16];
        if core >= mask.len() * 64 {
            return false;
        }
        mask[core / 64] = 1u64 << (core % 64);
        let ret: isize;
        // Safety: sched_setaffinity (x86-64 syscall 203) reads
        // `len` bytes from the mask pointer and touches nothing else;
        // pid 0 means the calling thread. The asm clobbers only the
        // registers the syscall ABI says it may (rcx, r11, flags).
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") 203isize => ret,
                in("rdi") 0usize,                       // pid: calling thread
                in("rsi") std::mem::size_of_val(&mask), // mask length in bytes
                in("rdx") mask.as_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack, readonly),
            );
        }
        ret == 0
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    {
        let _ = core;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pin inside a scratch thread so the test runner's own thread
    /// keeps its affinity.
    #[test]
    fn pinning_to_core_zero_succeeds_where_supported() {
        let ok = std::thread::spawn(|| pin_to_core(0)).join().unwrap();
        if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            assert!(ok, "core 0 always exists");
        } else {
            assert!(!ok, "unsupported platforms must report failure");
        }
    }

    #[test]
    fn pinning_to_absent_core_fails() {
        let ok = std::thread::spawn(|| pin_to_core(1 << 20)).join().unwrap();
        assert!(!ok);
    }
}

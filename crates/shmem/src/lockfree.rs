//! Lock-free publication cells with reader-gated reclamation.
//!
//! This is the only module in the crate that uses `unsafe`; everything
//! lock-free in `sift-shmem` (registers, max registers, snapshot
//! components, the snapshot's cached scan view) is built from the two
//! types here:
//!
//! * [`Slot<T>`] — an atomic pointer to an immutable heap node holding a
//!   `T` (null encodes ⊥). Writers publish with a single
//!   [`swap`](Slot::store) or a [`compare_exchange`](Slot::publish_max)
//!   loop; readers dereference under a [`ReadGuard`].
//! * [`Pile<T>`] — the retire pile shared by the slots of one object:
//!   *striped* reader pins plus a Treiber stack of stamped retired
//!   nodes.
//!
//! # Reclamation protocol (interval stamps)
//!
//! A node that is swapped out of a slot is *retired* onto the pile, not
//! freed: a concurrent reader may still hold a reference into it. The
//! pile decides what is safe to free with retire-sequence **stamps**
//! rather than by waiting for global quiescence (which, under sustained
//! read traffic from many threads, simply never occurs):
//!
//! 1. every retired node is stamped with a ticket from the pile's
//!    monotone retire sequence — assigned *after* the `SeqCst` swap
//!    that unlinked the node from its slot;
//! 2. a guard, on entry, **pins** a value the sequence has already
//!    reached (a read-mostly *epoch* copy, refreshed at reclaim time)
//!    into its stripe: each stripe packs an occupancy count with the
//!    minimum pin of its current occupants;
//! 3. the reclaimer (every [`RECLAIM_INTERVAL`]-th retire, and `Drop`)
//!    detaches the whole retire chain, reads all stripes, takes the
//!    minimum pin over the *occupied* ones, frees exactly the nodes
//!    stamped strictly below that minimum, and splices the survivors
//!    back.
//!
//! Soundness: every pointer publication, detach, stripe RMW, stripe
//! read and sequence access is `SeqCst`, so they share one total order
//! `S`. Suppose a reader `R` holds a reference into node `N`. `R`'s
//! slot load returned `N`, so that load precedes `N`'s unlink swap in
//! `S` (a later load returns a newer publication); `R`'s pin read
//! precedes its enter-CAS, which precedes the load; and `N`'s stamp is
//! drawn from the sequence *after* the unlink. Monotonicity then gives
//! `pin(R) ≤ seq-at-pin-read ≤ stamp(N)` (the pinned epoch never
//! exceeds the sequence). The reclaimer reads `R`'s stripe after the
//! detach; if `R`'s enter-CAS precedes that read in `S`, the stripe's
//! packed minimum is `≤ pin(R) ≤ stamp(N)` and `N` survives. If instead
//! `R` enters *after* the stripe read, then `R`'s slot load follows the
//! read, follows the detach, follows every unlink of every node in the
//! detached chain — so `R` cannot acquire `N` at all. Either way no
//! freed node is reachable. (Stripes are shared by design: later
//! entrants only lower the packed minimum, exits never raise it, and it
//! resets to a fresh pin only on an empty-to-occupied transition.)
//!
//! The pins are striped across [`STRIPES`] cache-line-padded words,
//! indexed by a per-thread id: a guard enter/exit is an (almost always
//! uncontended) RMW on the thread's own line, while the reclaimer —
//! which runs rarely — pays to read all stripes.
//!
//! All operations are lock-free: no step ever blocks on another
//! thread, a stalled reader only delays *reclamation of the nodes
//! retired after it pinned* (memory is freed later, never unsafely
//! early), and a stalled writer delays nobody. Unreclaimed memory is
//! bounded by the retires during the longest in-flight guard plus the
//! reclaim interval — crucially, steady read traffic does *not* stall
//! reclamation, because each fresh guard pins a fresh sequence value
//! and the occupied minimum keeps advancing. Everything still
//! unreclaimed is freed in `Drop`, when `&mut self` proves no reader
//! can exist.

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Reader-gate stripes per pile (power of two).
const STRIPES: usize = 16;

/// Retires between opportunistic reclamation attempts.
const RECLAIM_INTERVAL: usize = 64;

/// Stripe word layout: low bits count the stripe's occupants, the rest
/// hold the minimum retire-sequence pin among them (meaningless while
/// the count is zero). 16 bits allow far more nested guards per stripe
/// than any realistic thread count; 48 stamp bits outlast any run.
const COUNT_MASK: u64 = (1 << STAMP_SHIFT) - 1;
const STAMP_SHIFT: u32 = 16;

/// One reader stripe (packed count + minimum pin), padded to its own
/// cache line pair so enter/exit RMWs from different threads never
/// false-share.
#[repr(align(128))]
#[derive(Debug)]
struct Stripe(AtomicU64);

/// The stripe this thread's guards use. Thread ids are handed out once
/// per thread from a global counter; with up to [`STRIPES`] live
/// threads every thread gets a private line.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
    }
    STRIPE.with(|s| *s)
}

/// An immutable published value plus the retire-chain link.
///
/// `value` is written once, before publication, and never mutated
/// afterwards; `next` is only touched while the node is exclusively
/// owned (before a retire push, or by the reclaimer after a detach).
pub(crate) struct Node<T: Send> {
    value: T,
    next: AtomicPtr<Node<T>>,
    /// Retire-sequence ticket, written at retirement. Atomic because
    /// readers may still hold `&Node` when the retirer writes it.
    stamp: AtomicU64,
}

impl<T: Send> Node<T> {
    fn boxed(value: T) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            value,
            next: AtomicPtr::new(ptr::null_mut()),
            stamp: AtomicU64::new(0),
        }))
    }
}

/// The reader gate and retire pile shared by one object's slots.
#[derive(Debug)]
pub(crate) struct Pile<T: Send> {
    stripes: [Stripe; STRIPES],
    /// A *stale* copy of [`seq`](Self::seq), refreshed only at reclaim
    /// time, that guards pin instead of the live sequence. Pinning an
    /// older value is always sound (it only keeps nodes longer), and it
    /// turns the reader's hottest shared load into a read-mostly hit:
    /// this line changes once per [`RECLAIM_INTERVAL`] retires, while
    /// `seq` changes on every one. Own cache line pair so writer
    /// traffic on the neighbouring fields never invalidates it.
    epoch: Stripe,
    /// The monotone retire sequence stamps dole out of.
    seq: AtomicU64,
    retired: AtomicPtr<Node<T>>,
    /// Retires since creation (approximate); paces reclamation.
    retire_count: AtomicUsize,
    /// The pile owns the retired nodes (and therefore their `T`s).
    _owns: PhantomData<Node<T>>,
}

/// Proof that a reader-count stripe of a [`Pile`] is elevated;
/// references obtained from [`Slot::load`] under this guard stay valid
/// until the guard drops.
#[derive(Debug)]
pub(crate) struct ReadGuard<'p, T: Send> {
    pile: &'p Pile<T>,
    stripe: usize,
}

impl<T: Send> Pile<T> {
    pub(crate) fn new() -> Self {
        Self {
            stripes: std::array::from_fn(|_| Stripe(AtomicU64::new(0))),
            epoch: Stripe(AtomicU64::new(0)),
            seq: AtomicU64::new(0),
            retired: AtomicPtr::new(ptr::null_mut()),
            retire_count: AtomicUsize::new(0),
            _owns: PhantomData,
        }
    }

    /// Enters a read-side critical section, pinning the current retire
    /// sequence into this thread's stripe: a load plus one (almost
    /// always uncontended) CAS on the thread's own line. See the module
    /// docs for the soundness argument.
    pub(crate) fn enter(&self) -> ReadGuard<'_, T> {
        let stripe = stripe_index();
        let pin = self.epoch.0.load(Ordering::SeqCst);
        // The extra sequence load exists only in `obs` builds; a stale
        // pin (epoch behind the live sequence) is sound but keeps
        // retired nodes alive up to one extra reclaim interval.
        #[cfg(feature = "obs")]
        crate::obs::note_guard_entry(pin < self.seq.load(Ordering::Relaxed));
        let word = &self.stripes[stripe].0;
        let mut old = word.load(Ordering::SeqCst);
        loop {
            let count = old & COUNT_MASK;
            let min_pin = if count == 0 {
                pin
            } else {
                pin.min(old >> STAMP_SHIFT)
            };
            let new = (count + 1) | (min_pin << STAMP_SHIFT);
            match word.compare_exchange_weak(old, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => break,
                Err(now) => old = now,
            }
        }
        ReadGuard { pile: self, stripe }
    }

    /// Retires `node` (already unreachable from every slot) and
    /// occasionally attempts reclamation.
    fn retire(&self, node: *mut Node<T>) {
        debug_assert!(!node.is_null());
        crate::obs::note_retire();
        let stamp = self.seq.fetch_add(1, Ordering::SeqCst);
        // Safety: unlinked and not yet pushed — no other writer touches
        // `stamp`; concurrent readers may hold `&Node`, hence atomic.
        unsafe { (*node).stamp.store(stamp, Ordering::Relaxed) };
        let mut head = self.retired.load(Ordering::Relaxed);
        loop {
            // Safety: until the compare_exchange below succeeds, `node`
            // is exclusively owned by this thread.
            unsafe { (*node).next.store(head, Ordering::Relaxed) };
            match self.retired.compare_exchange_weak(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(current) => head = current,
            }
        }
        // Reclaim in batches: reading all gate stripes touches many
        // lines, so doing it on every retire would defeat the striping.
        if self.retire_count.fetch_add(1, Ordering::Relaxed) % RECLAIM_INTERVAL
            == RECLAIM_INTERVAL - 1
        {
            self.try_reclaim();
        }
    }

    /// Detaches the retire chain, frees every node stamped before the
    /// minimum pin of the occupied stripes, and splices the survivors
    /// back. Lock-free and safe to call from any thread at any time.
    fn try_reclaim(&self) {
        // Advance the pinnable epoch (any value `seq` has already
        // reached is sound — see the `epoch` field docs).
        self.epoch
            .0
            .store(self.seq.load(Ordering::SeqCst), Ordering::SeqCst);
        let head = self.retired.swap(ptr::null_mut(), Ordering::SeqCst);
        if head.is_null() {
            return;
        }
        // Minimum pin among stripes that currently host a reader; ∞
        // when none does. Read *after* the detach (the module docs'
        // argument needs that order).
        let min_pin = self.stripes.iter().fold(u64::MAX, |min, s| {
            let word = s.0.load(Ordering::SeqCst);
            if word & COUNT_MASK == 0 {
                min
            } else {
                min.min(word >> STAMP_SHIFT)
            }
        });
        let mut keep_head: *mut Node<T> = ptr::null_mut();
        let mut keep_tail: *mut Node<T> = ptr::null_mut();
        let mut cur = head;
        let (mut freed, mut kept) = (0u64, 0u64);
        while !cur.is_null() {
            // Safety: the detached chain is exclusively ours.
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            if unsafe { (*cur).stamp.load(Ordering::Relaxed) } < min_pin {
                // Safety: retired before every active reader pinned —
                // unreachable (module docs).
                drop(unsafe { Box::from_raw(cur) });
                freed += 1;
            } else {
                unsafe { (*cur).next.store(keep_head, Ordering::Relaxed) };
                if keep_head.is_null() {
                    keep_tail = cur;
                }
                keep_head = cur;
                kept += 1;
            }
            cur = next;
        }
        crate::obs::note_reclaim(freed, kept);
        if !keep_head.is_null() {
            // Safety: `keep_head..keep_tail` is an exclusively owned
            // chain; splice it back for a later attempt.
            unsafe { self.splice(keep_head, keep_tail) };
        }
    }

    /// Re-links an exclusively owned chain onto the retire stack.
    ///
    /// # Safety
    ///
    /// `head..tail` must be a well-formed chain this thread exclusively
    /// owns (obtained from the detach in [`try_reclaim`]).
    unsafe fn splice(&self, head: *mut Node<T>, tail: *mut Node<T>) {
        let mut current = self.retired.load(Ordering::Relaxed);
        loop {
            (*tail).next.store(current, Ordering::Relaxed);
            match self.retired.compare_exchange_weak(
                current,
                head,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => current = now,
            }
        }
    }
}

impl<T: Send> Drop for Pile<T> {
    fn drop(&mut self) {
        // `&mut self`: no guard can be alive, every retired node is ours.
        let head = *self.retired.get_mut();
        if !head.is_null() {
            unsafe { free_chain(head) };
        }
    }
}

impl<T: Send> Drop for ReadGuard<'_, T> {
    fn drop(&mut self) {
        self.pile.stripes[self.stripe]
            .0
            .fetch_sub(1, Ordering::SeqCst);
    }
}

/// Frees a detached retire chain.
///
/// # Safety
///
/// The chain must be exclusively owned by the caller and unreachable
/// from any slot or reader.
unsafe fn free_chain<T: Send>(mut head: *mut Node<T>) {
    while !head.is_null() {
        let node = Box::from_raw(head);
        head = node.next.load(Ordering::Relaxed);
    }
}

/// An atomic publication cell: a pointer to the current [`Node`], null
/// for ⊥.
///
/// A `Slot` must always be used with the [`Pile`] of the object that
/// owns it: loads require a guard on that pile, and stores retire the
/// displaced node into it. The modules building on this one keep the
/// pairing a private invariant of each object. All pointer operations
/// are `SeqCst` — the reclamation gate's soundness argument needs the
/// single total order (module docs), and on x86 a `SeqCst` load is a
/// plain load anyway.
#[derive(Debug)]
pub(crate) struct Slot<T: Send> {
    ptr: AtomicPtr<Node<T>>,
    /// The slot owns its current node (and therefore a `T`).
    _owns: PhantomData<Node<T>>,
}

impl<T: Send> Slot<T> {
    pub(crate) fn new() -> Self {
        Self {
            ptr: AtomicPtr::new(ptr::null_mut()),
            _owns: PhantomData,
        }
    }

    /// The raw current pointer; only for identity comparisons (the
    /// double collect). Stable for the lifetime of `guard`: nodes are
    /// never freed while a reader is inside the pile, so distinct
    /// pointers observed under one guard are distinct publications.
    pub(crate) fn load_raw(&self, _guard: &ReadGuard<'_, T>) -> *mut Node<T> {
        self.ptr.load(Ordering::SeqCst)
    }

    /// Dereferences a pointer previously returned by
    /// [`load_raw`](Slot::load_raw) under the same guard.
    pub(crate) fn deref_raw<'g>(raw: *mut Node<T>, _guard: &ReadGuard<'g, T>) -> Option<&'g T> {
        if raw.is_null() {
            None
        } else {
            // Safety: the guard keeps every node published before or
            // during it alive (reclamation gates on the reader count).
            Some(unsafe { &(*raw).value })
        }
    }

    /// Reads the current value under `guard`.
    pub(crate) fn load<'g>(&self, guard: &ReadGuard<'g, T>) -> Option<&'g T> {
        Self::deref_raw(self.load_raw(guard), guard)
    }

    /// Publishes `value` unconditionally (register semantics), retiring
    /// the displaced node onto `pile`. A single swap: wait-free.
    pub(crate) fn store(&self, value: T, pile: &Pile<T>) {
        let node = Node::boxed(value);
        let old = self.ptr.swap(node, Ordering::SeqCst);
        if !old.is_null() {
            pile.retire(old);
        }
    }

    /// Publishes `value` only while `keep(current)` says the current
    /// entry loses to it (max-register semantics): a compare-exchange
    /// loop that retires each displaced node. Returns `true` if the
    /// value was published.
    ///
    /// Lock-free: a failed CAS means another writer published, which is
    /// system-wide progress.
    pub(crate) fn publish_max(
        &self,
        value: T,
        pile: &Pile<T>,
        guard: &ReadGuard<'_, T>,
        mut keep: impl FnMut(&T) -> bool,
    ) -> bool {
        let mut pending = Some(value);
        let mut new: *mut Node<T> = ptr::null_mut();
        let mut current = self.load_raw(guard);
        loop {
            if let Some(cur) = Self::deref_raw(current, guard) {
                if keep(cur) {
                    // The current entry wins; free our unpublished node.
                    if !new.is_null() {
                        // Safety: never published, exclusively ours.
                        drop(unsafe { Box::from_raw(new) });
                    }
                    return false;
                }
            }
            if new.is_null() {
                new = Node::boxed(pending.take().expect("node allocated at most once"));
            }
            match self
                .ptr
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(old) => {
                    if !old.is_null() {
                        pile.retire(old);
                    }
                    return true;
                }
                Err(now) => {
                    crate::obs::note_cas_retry();
                    current = now;
                }
            }
        }
    }
}

impl<T: Send> Slot<T> {
    /// Publishes a value derived from the current entry (copy-on-write
    /// semantics): a compare-exchange loop that rebuilds the candidate
    /// from the freshest entry on every conflict, reusing the
    /// candidate's allocation across retries. The displaced node is
    /// retired onto `pile`.
    ///
    /// Lock-free: a failed CAS means another writer published, which is
    /// system-wide progress.
    pub(crate) fn publish_with(
        &self,
        pile: &Pile<T>,
        guard: &ReadGuard<'_, T>,
        mut make: impl FnMut(Option<&T>) -> T,
    ) {
        let mut current = self.load_raw(guard);
        let mut new: *mut Node<T> = ptr::null_mut();
        let mut attempts = 0u32;
        loop {
            let value = make(Self::deref_raw(current, guard));
            if new.is_null() {
                new = Node::boxed(value);
            } else {
                // Safety: never published yet, exclusively ours.
                unsafe { (*new).value = value };
            }
            match self
                .ptr
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(old) => {
                    if !old.is_null() {
                        pile.retire(old);
                    }
                    return;
                }
                Err(now) => {
                    crate::obs::note_republish_conflict();
                    current = now;
                    // Bounded backoff: under a write burst, each failed
                    // CAS costs a full `make` rebuild, so a short pause
                    // that lets the winner finish is much cheaper than
                    // immediately re-colliding.
                    for _ in 0..(1u32 << attempts.min(6)) {
                        std::hint::spin_loop();
                    }
                    attempts += 1;
                }
            }
        }
    }
}

impl<T: Clone + Send> Slot<T> {
    /// Reads and clones the current value in one guarded section.
    pub(crate) fn read_cloned(&self, pile: &Pile<T>) -> Option<T> {
        let guard = pile.enter();
        self.load(&guard).cloned()
    }
}

impl<T: Send> Drop for Slot<T> {
    fn drop(&mut self) {
        let current = *self.ptr.get_mut();
        if !current.is_null() {
            // Safety: `&mut self` — no reader can hold this node.
            drop(unsafe { Box::from_raw(current) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn store_and_load_round_trip() {
        let pile = Pile::new();
        let slot = Slot::new();
        let guard = pile.enter();
        assert_eq!(slot.load(&guard), None);
        drop(guard);
        slot.store(41u64, &pile);
        slot.store(42u64, &pile);
        assert_eq!(slot.read_cloned(&pile), Some(42));
    }

    #[test]
    fn publish_max_keeps_winner() {
        let pile = Pile::new();
        let slot: Slot<(u64, &str)> = Slot::new();
        let g = pile.enter();
        assert!(slot.publish_max((5, "five"), &pile, &g, |cur| cur.0 >= 5));
        assert!(!slot.publish_max((3, "three"), &pile, &g, |cur| cur.0 >= 3));
        assert!(slot.publish_max((9, "nine"), &pile, &g, |cur| cur.0 >= 9));
        assert_eq!(slot.load(&g), Some(&(9, "nine")));
    }

    #[test]
    fn guards_keep_displaced_nodes_alive() {
        let pile = Pile::new();
        let slot = Slot::new();
        slot.store(String::from("first"), &pile);
        let guard = pile.enter();
        let held = slot.load(&guard).unwrap();
        slot.store(String::from("second"), &pile);
        // `held` points into the retired node; the guard keeps it valid.
        assert_eq!(held, "first");
        assert_eq!(slot.load(&guard), Some(&String::from("second")));
        drop(guard);
        assert_eq!(slot.read_cloned(&pile), Some(String::from("second")));
    }

    #[test]
    fn drop_counts_are_exact_under_churn() {
        // Every publication's value must be dropped exactly once, no
        // matter how reclamation interleaves with readers.
        struct Counted(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        impl Clone for Counted {
            fn clone(&self) -> Self {
                Counted(Arc::clone(&self.0))
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let published = Arc::new(AtomicUsize::new(0));
        {
            let pile = Arc::new(Pile::new());
            let slot = Arc::new(Slot::new());
            let writers: Vec<_> = (0..4)
                .map(|_| {
                    let (pile, slot) = (Arc::clone(&pile), Arc::clone(&slot));
                    let (drops, published) = (Arc::clone(&drops), Arc::clone(&published));
                    std::thread::spawn(move || {
                        for _ in 0..500 {
                            slot.store(Counted(Arc::clone(&drops)), &pile);
                            published.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            let readers: Vec<_> = (0..3)
                .map(|_| {
                    let (pile, slot) = (Arc::clone(&pile), Arc::clone(&slot));
                    std::thread::spawn(move || {
                        for _ in 0..2000 {
                            let guard = pile.enter();
                            let _ = slot.load(&guard);
                        }
                    })
                })
                .collect();
            for h in writers.into_iter().chain(readers) {
                h.join().unwrap();
            }
            // Dropping the slot frees the current node; dropping the
            // pile frees whatever is still retired.
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            published.load(Ordering::SeqCst),
            "every published node dropped exactly once"
        );
    }

    #[test]
    fn concurrent_max_publication_is_monotone() {
        let pile = Arc::new(Pile::new());
        let slot: Arc<Slot<u64>> = Arc::new(Slot::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let (pile, slot) = (Arc::clone(&pile), Arc::clone(&slot));
                std::thread::spawn(move || {
                    for k in 0..300 {
                        let key = t * 300 + k;
                        let g = pile.enter();
                        slot.publish_max(key, &pile, &g, |cur| *cur >= key);
                    }
                })
            })
            .collect();
        let reader = {
            let (pile, slot) = (Arc::clone(&pile), Arc::clone(&slot));
            std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..2000 {
                    if let Some(v) = slot.read_cloned(&pile) {
                        assert!(v >= last, "max went backwards: {last} -> {v}");
                        last = v;
                    }
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(slot.read_cloned(&pile), Some(8 * 300 - 1));
    }
}

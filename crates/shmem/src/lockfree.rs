//! Lock-free publication cells with reader-gated reclamation, plus the
//! allocation-free inline cells the small-payload register paths use.
//!
//! Everything lock-free in `sift-shmem` (registers, max registers,
//! snapshot components, the snapshot's cached scan view) is built from
//! the types here:
//!
//! * [`Slot<T>`] — an atomic pointer to an immutable heap node holding a
//!   `T` (null encodes ⊥). Writers publish with a single
//!   [`swap`](Slot::store) or a [`compare_exchange`](Slot::publish_max)
//!   loop; readers dereference under a [`ReadGuard`].
//! * [`Pile<T>`] — the retire pile shared by the slots of one object:
//!   *striped* reader pins plus a Treiber stack of stamped retired
//!   nodes.
//! * [`SeqCell<T>`] and [`CombiningMax<T>`] — inline seqlock cells for
//!   payloads that pass [`inline_ok`]: no allocation, no retirement, no
//!   guards. See the "Inline cells" section below.
//!
//! # Reclamation protocol (interval stamps)
//!
//! A node that is swapped out of a slot is *retired* onto the pile, not
//! freed: a concurrent reader may still hold a reference into it. The
//! pile decides what is safe to free with retire-sequence **stamps**
//! rather than by waiting for global quiescence (which, under sustained
//! read traffic from many threads, simply never occurs):
//!
//! 1. every retired node is stamped with a ticket from the pile's
//!    monotone retire sequence — assigned *after* the `SeqCst` swap
//!    that unlinked the node from its slot;
//! 2. a guard, on entry, **pins** a value the sequence has already
//!    reached (a read-mostly *epoch* copy, refreshed at reclaim time)
//!    into its stripe: each stripe packs an occupancy count with the
//!    minimum pin of its current occupants;
//! 3. the reclaimer (every [`RECLAIM_INTERVAL`]-th retire, and `Drop`)
//!    detaches the whole retire chain, reads all stripes, takes the
//!    minimum pin over the *occupied* ones, frees exactly the nodes
//!    stamped strictly below that minimum, and splices the survivors
//!    back.
//!
//! Soundness: every pointer publication, detach, stripe RMW, stripe
//! read and sequence access is `SeqCst`, so they share one total order
//! `S`. Suppose a reader `R` holds a reference into node `N`. `R`'s
//! slot load returned `N`, so that load precedes `N`'s unlink swap in
//! `S` (a later load returns a newer publication); `R`'s pin read
//! precedes its enter-CAS, which precedes the load; and `N`'s stamp is
//! drawn from the sequence *after* the unlink. Monotonicity then gives
//! `pin(R) ≤ seq-at-pin-read ≤ stamp(N)` (the pinned epoch never
//! exceeds the sequence). The reclaimer reads `R`'s stripe after the
//! detach; if `R`'s enter-CAS precedes that read in `S`, the stripe's
//! packed minimum is `≤ pin(R) ≤ stamp(N)` and `N` survives. If instead
//! `R` enters *after* the stripe read, then `R`'s slot load follows the
//! read, follows the detach, follows every unlink of every node in the
//! detached chain — so `R` cannot acquire `N` at all. Either way no
//! freed node is reachable. (Stripes are shared by design: later
//! entrants only lower the packed minimum, exits never raise it, and it
//! resets to a fresh pin only on an empty-to-occupied transition.)
//!
//! The pins are striped across [`STRIPES`] cache-line-padded words,
//! indexed by a per-thread id: a guard enter/exit is an (almost always
//! uncontended) RMW on the thread's own line, while the reclaimer —
//! which runs rarely — pays to read all stripes.
//!
//! All operations are lock-free: no step ever blocks on another
//! thread, a stalled reader only delays *reclamation of the nodes
//! retired after it pinned* (memory is freed later, never unsafely
//! early), and a stalled writer delays nobody. Unreclaimed memory is
//! bounded by the retires during the longest in-flight guard plus the
//! reclaim interval — crucially, steady read traffic does *not* stall
//! reclamation, because each fresh guard pins a fresh sequence value
//! and the occupied minimum keeps advancing. Everything still
//! unreclaimed is freed in `Drop`, when `&mut self` proves no reader
//! can exist.

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Reader-gate stripes per pile (power of two).
const STRIPES: usize = 16;

/// Retires between opportunistic reclamation attempts.
const RECLAIM_INTERVAL: usize = 64;

/// Stripe word layout: low bits count the stripe's occupants, the rest
/// hold the minimum retire-sequence pin among them (meaningless while
/// the count is zero). 16 bits allow far more nested guards per stripe
/// than any realistic thread count; 48 stamp bits outlast any run.
const COUNT_MASK: u64 = (1 << STAMP_SHIFT) - 1;
const STAMP_SHIFT: u32 = 16;

/// One reader stripe (packed count + minimum pin), padded to its own
/// cache line pair so enter/exit RMWs from different threads never
/// false-share.
#[repr(align(128))]
#[derive(Debug)]
struct Stripe(AtomicU64);

/// The stripe this thread's guards use. Thread ids are handed out once
/// per thread from a global counter; with up to [`STRIPES`] live
/// threads every thread gets a private line.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
    }
    STRIPE.with(|s| *s)
}

/// An immutable published value plus the retire-chain link.
///
/// `value` is written once, before publication, and never mutated
/// afterwards; `next` is only touched while the node is exclusively
/// owned (before a retire push, or by the reclaimer after a detach).
pub(crate) struct Node<T: Send> {
    value: T,
    next: AtomicPtr<Node<T>>,
    /// Retire-sequence ticket, written at retirement. Atomic because
    /// readers may still hold `&Node` when the retirer writes it.
    stamp: AtomicU64,
}

impl<T: Send> Node<T> {
    fn boxed(value: T) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            value,
            next: AtomicPtr::new(ptr::null_mut()),
            stamp: AtomicU64::new(0),
        }))
    }
}

/// The reader gate and retire pile shared by one object's slots.
#[derive(Debug)]
pub(crate) struct Pile<T: Send> {
    stripes: [Stripe; STRIPES],
    /// A *stale* copy of [`seq`](Self::seq), refreshed only at reclaim
    /// time, that guards pin instead of the live sequence. Pinning an
    /// older value is always sound (it only keeps nodes longer), and it
    /// turns the reader's hottest shared load into a read-mostly hit:
    /// this line changes once per [`RECLAIM_INTERVAL`] retires, while
    /// `seq` changes on every one. Own cache line pair so writer
    /// traffic on the neighbouring fields never invalidates it.
    epoch: Stripe,
    /// The monotone retire sequence stamps dole out of.
    seq: AtomicU64,
    retired: AtomicPtr<Node<T>>,
    /// Retires since creation (approximate); paces reclamation.
    retire_count: AtomicUsize,
    /// The pile owns the retired nodes (and therefore their `T`s).
    _owns: PhantomData<Node<T>>,
}

/// Proof that a reader-count stripe of a [`Pile`] is elevated;
/// references obtained from [`Slot::load`] under this guard stay valid
/// until the guard drops.
#[derive(Debug)]
pub(crate) struct ReadGuard<'p, T: Send> {
    pile: &'p Pile<T>,
    stripe: usize,
}

impl<T: Send> Pile<T> {
    pub(crate) fn new() -> Self {
        Self {
            stripes: std::array::from_fn(|_| Stripe(AtomicU64::new(0))),
            epoch: Stripe(AtomicU64::new(0)),
            seq: AtomicU64::new(0),
            retired: AtomicPtr::new(ptr::null_mut()),
            retire_count: AtomicUsize::new(0),
            _owns: PhantomData,
        }
    }

    /// Enters a read-side critical section, pinning the current retire
    /// sequence into this thread's stripe: a load plus one (almost
    /// always uncontended) CAS on the thread's own line. See the module
    /// docs for the soundness argument.
    pub(crate) fn enter(&self) -> ReadGuard<'_, T> {
        let stripe = stripe_index();
        let pin = self.epoch.0.load(Ordering::SeqCst);
        // The extra sequence load exists only in `obs` builds; a stale
        // pin (epoch behind the live sequence) is sound but keeps
        // retired nodes alive up to one extra reclaim interval.
        #[cfg(feature = "obs")]
        crate::obs::note_guard_entry(pin < self.seq.load(Ordering::Relaxed));
        let word = &self.stripes[stripe].0;
        let mut old = word.load(Ordering::SeqCst);
        loop {
            let count = old & COUNT_MASK;
            let min_pin = if count == 0 {
                pin
            } else {
                pin.min(old >> STAMP_SHIFT)
            };
            let new = (count + 1) | (min_pin << STAMP_SHIFT);
            match word.compare_exchange_weak(old, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => break,
                Err(now) => old = now,
            }
        }
        ReadGuard { pile: self, stripe }
    }

    /// Retires `node` (already unreachable from every slot) and
    /// occasionally attempts reclamation.
    fn retire(&self, node: *mut Node<T>) {
        debug_assert!(!node.is_null());
        crate::obs::note_retire();
        let stamp = self.seq.fetch_add(1, Ordering::SeqCst);
        // Safety: unlinked and not yet pushed — no other writer touches
        // `stamp`; concurrent readers may hold `&Node`, hence atomic.
        unsafe { (*node).stamp.store(stamp, Ordering::Relaxed) };
        let mut head = self.retired.load(Ordering::Relaxed);
        loop {
            // Safety: until the compare_exchange below succeeds, `node`
            // is exclusively owned by this thread.
            unsafe { (*node).next.store(head, Ordering::Relaxed) };
            match self.retired.compare_exchange_weak(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(current) => head = current,
            }
        }
        // Reclaim in batches: reading all gate stripes touches many
        // lines, so doing it on every retire would defeat the striping.
        if self.retire_count.fetch_add(1, Ordering::Relaxed) % RECLAIM_INTERVAL
            == RECLAIM_INTERVAL - 1
        {
            self.try_reclaim();
        }
    }

    /// Detaches the retire chain, frees every node stamped before the
    /// minimum pin of the occupied stripes, and splices the survivors
    /// back. Lock-free and safe to call from any thread at any time.
    fn try_reclaim(&self) {
        // Advance the pinnable epoch (any value `seq` has already
        // reached is sound — see the `epoch` field docs).
        self.epoch
            .0
            .store(self.seq.load(Ordering::SeqCst), Ordering::SeqCst);
        let head = self.retired.swap(ptr::null_mut(), Ordering::SeqCst);
        if head.is_null() {
            return;
        }
        // Minimum pin among stripes that currently host a reader; ∞
        // when none does. Read *after* the detach (the module docs'
        // argument needs that order).
        let min_pin = self.stripes.iter().fold(u64::MAX, |min, s| {
            let word = s.0.load(Ordering::SeqCst);
            if word & COUNT_MASK == 0 {
                min
            } else {
                min.min(word >> STAMP_SHIFT)
            }
        });
        let mut keep_head: *mut Node<T> = ptr::null_mut();
        let mut keep_tail: *mut Node<T> = ptr::null_mut();
        let mut cur = head;
        let (mut freed, mut kept) = (0u64, 0u64);
        while !cur.is_null() {
            // Safety: the detached chain is exclusively ours.
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            if unsafe { (*cur).stamp.load(Ordering::Relaxed) } < min_pin {
                // Safety: retired before every active reader pinned —
                // unreachable (module docs).
                drop(unsafe { Box::from_raw(cur) });
                freed += 1;
            } else {
                unsafe { (*cur).next.store(keep_head, Ordering::Relaxed) };
                if keep_head.is_null() {
                    keep_tail = cur;
                }
                keep_head = cur;
                kept += 1;
            }
            cur = next;
        }
        crate::obs::note_reclaim(freed, kept);
        if !keep_head.is_null() {
            // Safety: `keep_head..keep_tail` is an exclusively owned
            // chain; splice it back for a later attempt.
            unsafe { self.splice(keep_head, keep_tail) };
        }
    }

    /// Re-links an exclusively owned chain onto the retire stack.
    ///
    /// # Safety
    ///
    /// `head..tail` must be a well-formed chain this thread exclusively
    /// owns (obtained from the detach in [`try_reclaim`]).
    unsafe fn splice(&self, head: *mut Node<T>, tail: *mut Node<T>) {
        let mut current = self.retired.load(Ordering::Relaxed);
        loop {
            (*tail).next.store(current, Ordering::Relaxed);
            match self.retired.compare_exchange_weak(
                current,
                head,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => current = now,
            }
        }
    }
}

impl<T: Send> Drop for Pile<T> {
    fn drop(&mut self) {
        // `&mut self`: no guard can be alive, every retired node is ours.
        let head = *self.retired.get_mut();
        if !head.is_null() {
            unsafe { free_chain(head) };
        }
    }
}

impl<T: Send> Drop for ReadGuard<'_, T> {
    fn drop(&mut self) {
        self.pile.stripes[self.stripe]
            .0
            .fetch_sub(1, Ordering::SeqCst);
    }
}

/// Frees a detached retire chain.
///
/// # Safety
///
/// The chain must be exclusively owned by the caller and unreachable
/// from any slot or reader.
unsafe fn free_chain<T: Send>(mut head: *mut Node<T>) {
    while !head.is_null() {
        let node = Box::from_raw(head);
        head = node.next.load(Ordering::Relaxed);
    }
}

/// An atomic publication cell: a pointer to the current [`Node`], null
/// for ⊥.
///
/// A `Slot` must always be used with the [`Pile`] of the object that
/// owns it: loads require a guard on that pile, and stores retire the
/// displaced node into it. The modules building on this one keep the
/// pairing a private invariant of each object. All pointer operations
/// are `SeqCst` — the reclamation gate's soundness argument needs the
/// single total order (module docs), and on x86 a `SeqCst` load is a
/// plain load anyway.
#[derive(Debug)]
pub(crate) struct Slot<T: Send> {
    ptr: AtomicPtr<Node<T>>,
    /// The slot owns its current node (and therefore a `T`).
    _owns: PhantomData<Node<T>>,
}

impl<T: Send> Slot<T> {
    pub(crate) fn new() -> Self {
        Self {
            ptr: AtomicPtr::new(ptr::null_mut()),
            _owns: PhantomData,
        }
    }

    /// The raw current pointer; only for identity comparisons (the
    /// double collect). Stable for the lifetime of `guard`: nodes are
    /// never freed while a reader is inside the pile, so distinct
    /// pointers observed under one guard are distinct publications.
    pub(crate) fn load_raw(&self, _guard: &ReadGuard<'_, T>) -> *mut Node<T> {
        self.ptr.load(Ordering::SeqCst)
    }

    /// Dereferences a pointer previously returned by
    /// [`load_raw`](Slot::load_raw) under the same guard.
    pub(crate) fn deref_raw<'g>(raw: *mut Node<T>, _guard: &ReadGuard<'g, T>) -> Option<&'g T> {
        if raw.is_null() {
            None
        } else {
            // Safety: the guard keeps every node published before or
            // during it alive (reclamation gates on the reader count).
            Some(unsafe { &(*raw).value })
        }
    }

    /// Reads the current value under `guard`.
    pub(crate) fn load<'g>(&self, guard: &ReadGuard<'g, T>) -> Option<&'g T> {
        Self::deref_raw(self.load_raw(guard), guard)
    }

    /// Publishes `value` unconditionally (register semantics), retiring
    /// the displaced node onto `pile`. A single swap: wait-free.
    pub(crate) fn store(&self, value: T, pile: &Pile<T>) {
        let node = Node::boxed(value);
        let old = self.ptr.swap(node, Ordering::SeqCst);
        if !old.is_null() {
            pile.retire(old);
        }
    }

    /// Publishes `value` only while `keep(current)` says the current
    /// entry loses to it (max-register semantics): a compare-exchange
    /// loop that retires each displaced node. Returns `true` if the
    /// value was published.
    ///
    /// Lock-free: a failed CAS means another writer published, which is
    /// system-wide progress.
    pub(crate) fn publish_max(
        &self,
        value: T,
        pile: &Pile<T>,
        guard: &ReadGuard<'_, T>,
        mut keep: impl FnMut(&T) -> bool,
    ) -> bool {
        let mut pending = Some(value);
        let mut new: *mut Node<T> = ptr::null_mut();
        let mut current = self.load_raw(guard);
        loop {
            if let Some(cur) = Self::deref_raw(current, guard) {
                if keep(cur) {
                    // The current entry wins; free our unpublished node.
                    if !new.is_null() {
                        // Safety: never published, exclusively ours.
                        drop(unsafe { Box::from_raw(new) });
                    }
                    return false;
                }
            }
            if new.is_null() {
                new = Node::boxed(pending.take().expect("node allocated at most once"));
            }
            match self
                .ptr
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(old) => {
                    if !old.is_null() {
                        pile.retire(old);
                    }
                    return true;
                }
                Err(now) => {
                    crate::obs::note_cas_retry();
                    current = now;
                }
            }
        }
    }
}

impl<T: Send> Slot<T> {
    /// Publishes a value derived from the current entry (copy-on-write
    /// semantics): a compare-exchange loop that rebuilds the candidate
    /// from the freshest entry on every conflict, reusing the
    /// candidate's allocation across retries. The displaced node is
    /// retired onto `pile`.
    ///
    /// Lock-free: a failed CAS means another writer published, which is
    /// system-wide progress.
    pub(crate) fn publish_with(
        &self,
        pile: &Pile<T>,
        guard: &ReadGuard<'_, T>,
        mut make: impl FnMut(Option<&T>) -> T,
    ) {
        let mut current = self.load_raw(guard);
        let mut new: *mut Node<T> = ptr::null_mut();
        let mut attempts = 0u32;
        loop {
            let value = make(Self::deref_raw(current, guard));
            if new.is_null() {
                new = Node::boxed(value);
            } else {
                // Safety: never published yet, exclusively ours.
                unsafe { (*new).value = value };
            }
            match self
                .ptr
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(old) => {
                    if !old.is_null() {
                        pile.retire(old);
                    }
                    return;
                }
                Err(now) => {
                    crate::obs::note_republish_conflict();
                    current = now;
                    // Bounded backoff: under a write burst, each failed
                    // CAS costs a full `make` rebuild, so a short pause
                    // that lets the winner finish is much cheaper than
                    // immediately re-colliding.
                    for _ in 0..(1u32 << attempts.min(6)) {
                        std::hint::spin_loop();
                    }
                    attempts += 1;
                }
            }
        }
    }
}

impl<T: Clone + Send> Slot<T> {
    /// Reads and clones the current value in one guarded section.
    pub(crate) fn read_cloned(&self, pile: &Pile<T>) -> Option<T> {
        let guard = pile.enter();
        self.load(&guard).cloned()
    }
}

impl<T: Send> Drop for Slot<T> {
    fn drop(&mut self) {
        let current = *self.ptr.get_mut();
        if !current.is_null() {
            // Safety: `&mut self` — no reader can hold this node.
            drop(unsafe { Box::from_raw(current) });
        }
    }
}

// ---------------------------------------------------------------------
// Inline cells: allocation-free fast paths for small payloads.
//
// The pointer-publication machinery above is the general case; a plain
// register holding a ≤16-byte trivially-destructible value does not
// need any of it. The cells below keep the payload *inline* in atomic
// words behind a seqlock-style sequence word: writes are a claim CAS
// plus plain stores, reads are pure loads (no RMW, so concurrent
// readers never bounce a cache line between cores), and there is no
// allocation, retirement or reclamation anywhere on the path.
//
// The issue text sketches these as a single `AtomicU128` CAS; stable
// Rust has no 128-bit atomic, and on x86-64 a 16-byte atomic *load*
// would compile to `lock cmpxchg16b` — an RMW that makes every reader a
// writer of the cache line. The seqlock form is both portable and
// strictly cheaper for the 63/64-read workloads the protocols run, at
// the cost of writers serializing on the claim word (readers stay
// non-blocking: a read only retries while a writer is mid-publication).
// DESIGN.md ("Inline seqlock registers") carries the full argument.
// ---------------------------------------------------------------------

use std::sync::atomic::fence;

/// Words of inline payload a [`SeqCell`]/[`CombiningMax`] holds.
pub(crate) const INLINE_WORDS: usize = 2;

/// Whether `T` may travel through the inline cells: it must fit the
/// inline words and be trivially destructible (the cells duplicate the
/// value bitwise on every read and never run `Drop`, which is only
/// sound when there is no `Drop`).
pub(crate) const fn inline_ok<T>() -> bool {
    std::mem::size_of::<T>() <= INLINE_WORDS * 8 && !std::mem::needs_drop::<T>()
}

/// Bounded exponential spin, then yield. On oversubscribed hosts (more
/// threads than cores — the CI containers run the whole contention
/// bench on one core) the conflicting writer may not even be running,
/// so burning the rest of the timeslice in `spin_loop` is the worst
/// possible wait; yielding hands the core to the thread we are waiting
/// for.
fn backoff(spins: &mut u32) {
    if *spins < 6 {
        for _ in 0..(1u32 << *spins) {
            std::hint::spin_loop();
        }
        *spins += 1;
    } else {
        std::thread::yield_now();
    }
}

/// Copies `value`'s object representation into zero-initialized words.
///
/// Any padding bytes of `T` pass through as whatever bits the zeroed
/// buffer keeps for them — the convention of production seqlocks
/// (`ptr::copy_nonoverlapping` is documented as an untyped byte copy):
/// the bits are never reinterpreted except by [`decode`], which only
/// promises a valid `T` because the words hold a real `T`'s bytes.
fn encode<T>(value: &T) -> [u64; INLINE_WORDS] {
    debug_assert!(inline_ok::<T>());
    let mut words = [0u64; INLINE_WORDS];
    // Safety: `size_of::<T>() <= size_of_val(&words)` is checked by
    // `inline_ok` at cell construction; both regions are plain memory.
    unsafe {
        ptr::copy_nonoverlapping(
            (value as *const T).cast::<u8>(),
            words.as_mut_ptr().cast::<u8>(),
            std::mem::size_of::<T>(),
        );
    }
    words
}

/// Rebuilds a `T` from words produced by [`encode`].
///
/// # Safety
///
/// `words` must hold the image of exactly one complete [`encode`] of a
/// `T` (the seqlock validation below is what establishes this: the
/// sequence word was stable across the word loads).
unsafe fn decode<T>(words: [u64; INLINE_WORDS]) -> T {
    debug_assert!(inline_ok::<T>());
    unsafe { ptr::read_unaligned(words.as_ptr().cast::<T>()) }
}

/// An allocation-free register cell for payloads passing [`inline_ok`].
///
/// Layout: a sequence word plus [`INLINE_WORDS`] payload words, padded
/// to a cache-line pair. Sequence values: `0` = ⊥ (never written),
/// *odd* = a writer owns the cell, *even ≥ 2* = the payload words hold
/// a stable [`encode`] image.
///
/// The memory-ordering discipline is the classic seqlock (the same one
/// `crossbeam`'s `AtomicCell` fallback uses): a writer claims with an
/// `Acquire` CAS to odd, orders its payload stores behind the claim
/// with a `Release` fence, and publishes with a `Release` store to
/// even; a reader loads the sequence with `Acquire`, loads the payload
/// words `Relaxed`, then re-validates the sequence behind an `Acquire`
/// fence — the fence pair guarantees that if the reader saw any of a
/// writer's payload stores, the validation load sees that writer's
/// claim and the read retries.
///
/// Progress: reads never block writers and perform no RMW; a read only
/// retries while a writer is mid-publication, and writers serialize on
/// the claim word. Writes linearize at the `Release` publish store,
/// reads at their first sequence load of the validated attempt.
#[repr(align(128))]
#[derive(Debug)]
pub(crate) struct SeqCell<T> {
    seq: AtomicU64,
    words: [AtomicU64; INLINE_WORDS],
    /// Torn-publication mode: the validated image this write displaced
    /// (the committed payload at the sequence the writer claimed from).
    #[cfg(feature = "torn-publication")]
    prev: [AtomicU64; INLINE_WORDS],
    /// Torn-publication mode: which window `prev` belongs to. During an
    /// odd window `s + 1` it holds `s` until the new payload words are
    /// fully stored, then `s + 1` — so it doubles as the *committed*
    /// marker that tells readers the new image is safe to decode.
    #[cfg(feature = "torn-publication")]
    prev_seq: AtomicU64,
    /// Torn-publication mode: parity stream deciding whether an
    /// in-window reader observes the new or the old image.
    #[cfg(feature = "torn-publication")]
    torn_coin: AtomicU64,
    _marker: PhantomData<T>,
}

impl<T: Send> SeqCell<T> {
    /// Creates a cell holding ⊥. Panics if `T` fails [`inline_ok`].
    pub(crate) fn new() -> Self {
        assert!(inline_ok::<T>(), "SeqCell payload must pass inline_ok");
        Self {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
            #[cfg(feature = "torn-publication")]
            prev: std::array::from_fn(|_| AtomicU64::new(0)),
            #[cfg(feature = "torn-publication")]
            prev_seq: AtomicU64::new(0),
            #[cfg(feature = "torn-publication")]
            torn_coin: AtomicU64::new(0),
            _marker: PhantomData,
        }
    }

    /// Writes `value`: claim (CAS to odd), store words, publish (store
    /// to even).
    #[cfg(not(feature = "torn-publication"))]
    pub(crate) fn write(&self, value: T) {
        let words = encode(&value);
        let mut spins = 0u32;
        let mut cur = self.seq.load(Ordering::Relaxed);
        loop {
            if cur & 1 == 0 {
                match self.seq.compare_exchange_weak(
                    cur,
                    cur + 1,
                    Ordering::Acquire,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(now) => {
                        crate::obs::note_inline_write_retry();
                        cur = now;
                        continue;
                    }
                }
            }
            crate::obs::note_inline_write_retry();
            backoff(&mut spins);
            cur = self.seq.load(Ordering::Relaxed);
        }
        fence(Ordering::Release);
        for (w, v) in self.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        self.seq.store(cur + 2, Ordering::Release);
        crate::obs::note_inline_register_write();
    }

    /// Writes `value` under torn-publication semantics: the full write
    /// is the split-phase protocol run to completion, so the cell's
    /// committed states are identical to the plain seqlock's.
    #[cfg(feature = "torn-publication")]
    pub(crate) fn write(&self, value: T) {
        let claimed = self.begin_torn_write(value);
        self.finish_torn_write(claimed);
    }

    /// Claims the cell and stores the new payload, but does **not**
    /// publish: the sequence is left odd, so concurrent readers sit in
    /// the torn window until [`finish_torn_write`](Self::finish_torn_write)
    /// runs. Returns the even sequence the write claimed from.
    ///
    /// Protocol (window `s + 1`, claimed from even `s`):
    ///
    /// 1. take a *validated* snapshot of the committed words at `s`
    ///    (skipped when `s == 0`: the displaced value is ⊥);
    /// 2. CAS `s → s + 1`. The sequence is monotone, so success proves
    ///    it never moved since the snapshot validated — the snapshot
    ///    *is* the image this write displaces;
    /// 3. store the snapshot into `prev`, then `prev_seq := s`
    ///    (`Release`): readers may now serve the old value;
    /// 4. store the new payload words, then `prev_seq := s + 1`
    ///    (`Release`): the committed marker — readers may now choose
    ///    either image.
    #[cfg(feature = "torn-publication")]
    pub(crate) fn begin_torn_write(&self, value: T) -> u64 {
        let words = encode(&value);
        let mut spins = 0u32;
        let (cur, displaced) = loop {
            let s = self.seq.load(Ordering::Acquire);
            if s & 1 == 0 {
                let snapshot = if s == 0 {
                    None
                } else {
                    let image: [u64; INLINE_WORDS] =
                        std::array::from_fn(|i| self.words[i].load(Ordering::Relaxed));
                    fence(Ordering::Acquire);
                    if self.seq.load(Ordering::Relaxed) != s {
                        crate::obs::note_inline_write_retry();
                        backoff(&mut spins);
                        continue;
                    }
                    Some(image)
                };
                match self
                    .seq
                    .compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                {
                    Ok(_) => break (s, snapshot),
                    Err(_) => {
                        crate::obs::note_inline_write_retry();
                        backoff(&mut spins);
                        continue;
                    }
                }
            }
            crate::obs::note_inline_write_retry();
            backoff(&mut spins);
        };
        if let Some(image) = displaced {
            for (w, v) in self.prev.iter().zip(image) {
                w.store(v, Ordering::Relaxed);
            }
        }
        self.prev_seq.store(cur, Ordering::Release);
        fence(Ordering::Release);
        for (w, v) in self.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        self.prev_seq.store(cur + 1, Ordering::Release);
        cur
    }

    /// Publishes a write begun by [`begin_torn_write`](Self::begin_torn_write):
    /// stores the even sequence, closing the torn window.
    #[cfg(feature = "torn-publication")]
    pub(crate) fn finish_torn_write(&self, claimed: u64) {
        self.seq.store(claimed + 2, Ordering::Release);
        crate::obs::note_inline_register_write();
    }

    /// One attempt at serving a read that landed in the odd window
    /// `s1`. `Some(...)` is a successfully validated answer; `None`
    /// means the window state was mid-transition and the caller should
    /// retry.
    ///
    /// The window has two reader-visible phases, distinguished by
    /// `prev_seq`:
    ///
    /// * `prev_seq == s1 - 1` — the old image is installed in `prev`
    ///   but the new words are not yet committed: the read must resolve
    ///   to the *old* value (⊥ when `s1 == 1`).
    /// * `prev_seq == s1` — both images are complete and stable: the
    ///   read draws a parity coin and resolves to either. This is the
    ///   sub-window where genuine new/old inversions (the regular-
    ///   register behaviour Wing–Gong atomic checking rejects) arise.
    ///
    /// Any other `prev_seq` value means the writer has not reached step
    /// 3 yet, or the world moved on — retry. Both decode paths
    /// re-validate `seq` *and* `prev_seq` behind an `Acquire` fence, so
    /// a stable pair proves the loaded words are one complete `encode`
    /// image (`prev` is only mutated before `prev_seq := s1 - 1`, the
    /// new words only before `prev_seq := s1`, and no later writer can
    /// touch either without first moving `seq`).
    #[cfg(feature = "torn-publication")]
    fn read_torn(&self, s1: u64) -> Option<Option<T>> {
        debug_assert!(s1 & 1 == 1);
        let ps = self.prev_seq.load(Ordering::Acquire);
        if ps != s1 && ps != s1 - 1 {
            return None;
        }
        let take_new = ps == s1 && self.torn_coin.fetch_add(1, Ordering::Relaxed) & 1 == 0;
        if take_new {
            let words = std::array::from_fn(|i| self.words[i].load(Ordering::Relaxed));
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 && self.prev_seq.load(Ordering::Relaxed) == ps
            {
                // Safety: `prev_seq == s1` was stable across the word
                // loads, so the new-image words are one complete
                // `encode` (see above).
                return Some(Some(unsafe { decode(words) }));
            }
            return None;
        }
        if s1 == 1 {
            // First-ever write in flight: the displaced value is ⊥.
            return Some(None);
        }
        let words = std::array::from_fn(|i| self.prev[i].load(Ordering::Relaxed));
        fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) == s1 && self.prev_seq.load(Ordering::Relaxed) == ps {
            // Safety: `seq`/`prev_seq` were stable across the loads, so
            // `prev` holds the writer's validated snapshot of the
            // committed image at `s1 - 1` (see above).
            return Some(Some(unsafe { decode(words) }));
        }
        None
    }

    /// Reads the current value (`None` is ⊥): pure loads, validated by
    /// the sequence word.
    pub(crate) fn read(&self) -> Option<T> {
        let mut spins = 0u32;
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 == 0 {
                return None;
            }
            if s1 & 1 == 0 {
                let words = std::array::from_fn(|i| self.words[i].load(Ordering::Relaxed));
                fence(Ordering::Acquire);
                if self.seq.load(Ordering::Relaxed) == s1 {
                    // Safety: the sequence was stable and even across
                    // the word loads, so `words` is one complete
                    // `encode` image (see the type docs).
                    return Some(unsafe { decode(words) });
                }
            } else {
                // Torn-publication mode: a read that lands in a
                // writer's odd window may resolve to the old *or* the
                // new image instead of retrying — the injected
                // regular-register (non-atomic) behaviour.
                #[cfg(feature = "torn-publication")]
                if let Some(resolved) = self.read_torn(s1) {
                    return resolved;
                }
            }
            crate::obs::note_inline_read_retry();
            backoff(&mut spins);
        }
    }
}

/// One combining cell: a monotone `claim`/`done` stamp pair plus inline
/// payload words, padded to a cache-line pair.
///
/// Stamps hold `key + 1` (`0` is ⊥). Invariants: stamps only grow;
/// `done ≤ claim` in every stable state; `claim == done` exactly when
/// the payload words hold a complete [`encode`] image for key
/// `done - 1`. A writer moves `claim` above `done` with a CAS (taking
/// exclusive ownership of the words), stores the payload, then stores
/// `done` and finally `claim` back to equality. The `claim` word doubles
/// as the seqlock sequence: it changes on every ownership transfer, so
/// an unchanged `claim` across a reader's word loads validates them.
#[repr(align(128))]
#[derive(Debug)]
struct PairCell {
    claim: AtomicU64,
    done: AtomicU64,
    words: [AtomicU64; INLINE_WORDS],
}

impl PairCell {
    fn new() -> Self {
        Self {
            claim: AtomicU64::new(0),
            done: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// One optimistic validated read. `Ok(None)` = ⊥, `Ok(Some((stamp,
    /// words)))` = a stable image, `Err(Unstable)` = a writer was
    /// mid-flight.
    fn try_read(&self) -> Result<Option<(u64, [u64; INLINE_WORDS])>, Unstable> {
        let c1 = self.claim.load(Ordering::Acquire);
        let d1 = self.done.load(Ordering::Acquire);
        if d1 == 0 {
            // No write has completed at the `done` load: a ⊥ read
            // linearizes there even if a first write is in flight.
            return Ok(None);
        }
        if c1 != d1 {
            return Err(Unstable);
        }
        let words = std::array::from_fn(|i| self.words[i].load(Ordering::Relaxed));
        fence(Ordering::Acquire);
        if self.claim.load(Ordering::Relaxed) == c1 {
            Ok(Some((d1, words)))
        } else {
            Err(Unstable)
        }
    }

    /// One non-blocking attempt to publish `(tag, words)` into this
    /// cell: succeeds only if the cell is stable and strictly below
    /// `tag`. Used for the announce slots — a failed attempt is fine,
    /// the writer's own combining loop still covers its value.
    fn try_announce(&self, tag: u64, words: [u64; INLINE_WORDS]) -> bool {
        let c = self.claim.load(Ordering::Relaxed);
        let d = self.done.load(Ordering::Relaxed);
        if c != d || c >= tag {
            return false;
        }
        if self
            .claim
            .compare_exchange(c, tag, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        fence(Ordering::Release);
        for (w, v) in self.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        self.done.store(tag, Ordering::Release);
        true
    }
}

/// Marker for a [`PairCell::try_read`] that raced a writer.
#[derive(Debug)]
struct Unstable;

/// An allocation-free combining max register for payloads passing
/// [`inline_ok`].
///
/// The authoritative maximum lives in one [`PairCell`] (`root`);
/// concurrent writers additionally publish into per-thread announce
/// cells (indexed by [`stripe_index`], like the pile's reader stripes).
/// A write first checks `root.done` — if the global maximum already
/// covers its key it returns immediately with **zero RMWs**. Otherwise
/// it announces, then competes for the root claim; the single winner
/// (the *combiner*) scans every stable announce cell and installs the
/// batch maximum with one store sequence, so `w` concurrent writes
/// collapse into `O(1)` root CAS traffic and the losers return as soon
/// as they observe `done` at or above their key.
///
/// Correctness sketch (the full argument is in DESIGN.md): a losing
/// writer only returns when it *observes* `root.done ≥ key + 1`, and
/// `done` is only advanced by a combiner that either scanned the
/// loser's announced value or installed a larger key — either way the
/// loser's write is covered by a linearizable order that places it
/// (as a dropped, dominated write) after the install. Keys are strictly
/// monotone along the root's modification order, so the stamp words
/// never ABA.
#[derive(Debug)]
pub(crate) struct CombiningMax<T> {
    root: PairCell,
    announce: [PairCell; STRIPES],
    _marker: PhantomData<T>,
}

impl<T: Send> CombiningMax<T> {
    /// Creates an empty register. Panics if `T` fails [`inline_ok`].
    pub(crate) fn new() -> Self {
        assert!(inline_ok::<T>(), "CombiningMax payload must pass inline_ok");
        Self {
            root: PairCell::new(),
            announce: std::array::from_fn(|_| PairCell::new()),
            _marker: PhantomData,
        }
    }

    /// Writes `(key, value)`, kept only if `key` exceeds the current
    /// maximum (ties keep the incumbent). `key` must be below
    /// `u64::MAX` (the stamp encoding reserves it).
    pub(crate) fn write(&self, key: u64, value: T) {
        let tag = key
            .checked_add(1)
            .expect("max-register keys must be below u64::MAX");
        // Dominated fast path: most writes under contention lose to the
        // running maximum and finish with this single shared load.
        if self.root.done.load(Ordering::Acquire) >= tag {
            crate::obs::note_combine_covered();
            return;
        }
        let words = encode(&value);
        // Publish into this thread's announce cell so a concurrent
        // combiner can carry this value; failure is harmless (the loop
        // below still covers it).
        self.announce[stripe_index()].try_announce(tag, words);
        let mut spins = 0u32;
        loop {
            let d = self.root.done.load(Ordering::Acquire);
            if d >= tag {
                crate::obs::note_combine_covered();
                return;
            }
            let c = self.root.claim.load(Ordering::Relaxed);
            if c == d {
                match self
                    .root
                    .claim
                    .compare_exchange(c, tag, Ordering::Acquire, Ordering::Relaxed)
                {
                    Ok(_) => {
                        self.install(tag, words, d);
                        return;
                    }
                    Err(_) => {
                        crate::obs::note_cas_retry();
                        continue;
                    }
                }
            }
            backoff(&mut spins);
        }
    }

    /// Combiner body: owns the root words (claim is above done). Scans
    /// the announce cells, installs the batch maximum, and restores
    /// `claim == done` at the new stamp.
    fn install(&self, own_tag: u64, own_words: [u64; INLINE_WORDS], prev_done: u64) {
        let (mut best_tag, mut best_words) = (own_tag, own_words);
        let mut batch = 1u64;
        for cell in &self.announce {
            if let Ok(Some((tag, words))) = cell.try_read() {
                if tag > prev_done && tag != own_tag {
                    batch += 1;
                }
                if tag > best_tag {
                    best_tag = tag;
                    best_words = words;
                }
            }
        }
        fence(Ordering::Release);
        for (w, v) in self.root.words.iter().zip(best_words) {
            w.store(v, Ordering::Relaxed);
        }
        self.root.done.store(best_tag, Ordering::Release);
        self.root.claim.store(best_tag, Ordering::Release);
        crate::obs::note_combine_install(batch);
    }

    /// Reads the current maximum entry: pure loads, validated on the
    /// root claim word.
    pub(crate) fn read(&self) -> Option<(u64, T)> {
        let mut spins = 0u32;
        loop {
            match self.root.try_read() {
                Ok(None) => return None,
                Ok(Some((stamp, words))) => {
                    // Safety: claim was stable across the word loads,
                    // so `words` is the complete image for `stamp`.
                    return Some((stamp - 1, unsafe { decode(words) }));
                }
                Err(Unstable) => {
                    crate::obs::note_inline_read_retry();
                    backoff(&mut spins);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn store_and_load_round_trip() {
        let pile = Pile::new();
        let slot = Slot::new();
        let guard = pile.enter();
        assert_eq!(slot.load(&guard), None);
        drop(guard);
        slot.store(41u64, &pile);
        slot.store(42u64, &pile);
        assert_eq!(slot.read_cloned(&pile), Some(42));
    }

    #[test]
    fn publish_max_keeps_winner() {
        let pile = Pile::new();
        let slot: Slot<(u64, &str)> = Slot::new();
        let g = pile.enter();
        assert!(slot.publish_max((5, "five"), &pile, &g, |cur| cur.0 >= 5));
        assert!(!slot.publish_max((3, "three"), &pile, &g, |cur| cur.0 >= 3));
        assert!(slot.publish_max((9, "nine"), &pile, &g, |cur| cur.0 >= 9));
        assert_eq!(slot.load(&g), Some(&(9, "nine")));
    }

    #[test]
    fn guards_keep_displaced_nodes_alive() {
        let pile = Pile::new();
        let slot = Slot::new();
        slot.store(String::from("first"), &pile);
        let guard = pile.enter();
        let held = slot.load(&guard).unwrap();
        slot.store(String::from("second"), &pile);
        // `held` points into the retired node; the guard keeps it valid.
        assert_eq!(held, "first");
        assert_eq!(slot.load(&guard), Some(&String::from("second")));
        drop(guard);
        assert_eq!(slot.read_cloned(&pile), Some(String::from("second")));
    }

    #[test]
    fn drop_counts_are_exact_under_churn() {
        // Every publication's value must be dropped exactly once, no
        // matter how reclamation interleaves with readers.
        struct Counted(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        impl Clone for Counted {
            fn clone(&self) -> Self {
                Counted(Arc::clone(&self.0))
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let published = Arc::new(AtomicUsize::new(0));
        {
            let pile = Arc::new(Pile::new());
            let slot = Arc::new(Slot::new());
            let writers: Vec<_> = (0..4)
                .map(|_| {
                    let (pile, slot) = (Arc::clone(&pile), Arc::clone(&slot));
                    let (drops, published) = (Arc::clone(&drops), Arc::clone(&published));
                    std::thread::spawn(move || {
                        for _ in 0..500 {
                            slot.store(Counted(Arc::clone(&drops)), &pile);
                            published.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            let readers: Vec<_> = (0..3)
                .map(|_| {
                    let (pile, slot) = (Arc::clone(&pile), Arc::clone(&slot));
                    std::thread::spawn(move || {
                        for _ in 0..2000 {
                            let guard = pile.enter();
                            let _ = slot.load(&guard);
                        }
                    })
                })
                .collect();
            for h in writers.into_iter().chain(readers) {
                h.join().unwrap();
            }
            // Dropping the slot frees the current node; dropping the
            // pile frees whatever is still retired.
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            published.load(Ordering::SeqCst),
            "every published node dropped exactly once"
        );
    }

    #[test]
    fn concurrent_max_publication_is_monotone() {
        let pile = Arc::new(Pile::new());
        let slot: Arc<Slot<u64>> = Arc::new(Slot::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let (pile, slot) = (Arc::clone(&pile), Arc::clone(&slot));
                std::thread::spawn(move || {
                    for k in 0..300 {
                        let key = t * 300 + k;
                        let g = pile.enter();
                        slot.publish_max(key, &pile, &g, |cur| *cur >= key);
                    }
                })
            })
            .collect();
        let reader = {
            let (pile, slot) = (Arc::clone(&pile), Arc::clone(&slot));
            std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..2000 {
                    if let Some(v) = slot.read_cloned(&pile) {
                        assert!(v >= last, "max went backwards: {last} -> {v}");
                        last = v;
                    }
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(slot.read_cloned(&pile), Some(8 * 300 - 1));
    }

    #[test]
    fn inline_ok_gates_on_size_and_drop() {
        assert!(inline_ok::<u64>());
        assert!(inline_ok::<(u64, u64)>());
        assert!(inline_ok::<(u32, char)>());
        assert!(inline_ok::<[u8; 16]>());
        assert!(!inline_ok::<[u8; 17]>(), "too large");
        assert!(!inline_ok::<String>(), "needs drop");
        assert!(!inline_ok::<(u64, u64, u64)>(), "too large");
    }

    #[test]
    fn seq_cell_round_trips_all_inline_shapes() {
        let c: SeqCell<u64> = SeqCell::new();
        assert_eq!(c.read(), None);
        c.write(0);
        assert_eq!(c.read(), Some(0), "0 must be distinguishable from ⊥");
        c.write(u64::MAX);
        assert_eq!(c.read(), Some(u64::MAX));

        let p: SeqCell<(u32, char)> = SeqCell::new();
        p.write((7, 'x'));
        p.write((9, 'y'));
        assert_eq!(p.read(), Some((9, 'y')));

        let b: SeqCell<[u8; 16]> = SeqCell::new();
        b.write([0xAB; 16]);
        assert_eq!(b.read(), Some([0xAB; 16]));
    }

    #[test]
    fn seq_cell_concurrent_reads_never_tear() {
        let c: Arc<SeqCell<(u64, u64)>> = Arc::new(SeqCell::new());
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for k in 0..2000 {
                        c.write((k, k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ t));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..4000 {
                        if let Some((k, tagged)) = c.read() {
                            let t = tagged ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                            assert!(t < 4, "torn read: ({k}, {tagged:#x})");
                        }
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        let (k, _) = c.read().expect("someone wrote");
        assert_eq!(k, 1999, "final value is some writer's last write");
    }

    #[test]
    fn combining_max_keeps_maximum_and_first_on_tie() {
        let m: CombiningMax<u64> = CombiningMax::new();
        assert_eq!(m.read(), None);
        m.write(5, 50);
        m.write(3, 30);
        assert_eq!(m.read(), Some((5, 50)));
        m.write(7, 70);
        m.write(7, 71);
        assert_eq!(m.read(), Some((7, 70)), "ties keep the first value");
        m.write(0, 1);
        assert_eq!(m.read(), Some((7, 70)));
    }

    #[test]
    #[should_panic(expected = "below u64::MAX")]
    fn combining_max_rejects_reserved_key() {
        let m: CombiningMax<u64> = CombiningMax::new();
        m.write(u64::MAX, 0);
    }

    #[test]
    fn combining_max_concurrent_writes_keep_global_maximum() {
        let m: Arc<CombiningMax<(u32, u32)>> = Arc::new(CombiningMax::new());
        let writers: Vec<_> = (0..8u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for k in 0..300 {
                        m.write(t * 300 + k, (t as u32, k as u32));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..2000 {
                        if let Some((key, (t, k))) = m.read() {
                            assert_eq!(
                                key,
                                u64::from(t) * 300 + u64::from(k),
                                "entry is self-consistent (no torn key/value pair)"
                            );
                            assert!(key >= last, "max went backwards: {last} -> {key}");
                            last = key;
                        }
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        assert_eq!(m.read(), Some((7 * 300 + 299, (7, 299))));
    }
}

//! Thin wrappers over [`std::sync`] locks with a guard-returning API.
//!
//! The substrate never hands lock guards across unwind boundaries, so a
//! poisoned lock can only follow a panic that is already propagating;
//! these wrappers recover the guard instead of double-panicking. Using
//! std keeps the workspace free of external dependencies.

/// A mutual-exclusion lock; [`lock`](Mutex::lock) returns the guard
/// directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the lock and returns its contents, recovering from
    /// poisoning.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock; [`read`](RwLock::read) and
/// [`write`](RwLock::write) return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}

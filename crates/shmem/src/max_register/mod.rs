//! Max registers for real threads.
//!
//! * [`LockFreeMaxRegister`] — a combining announce array for ≤16-byte
//!   trivially-destructible values (one winner installs a whole batch
//!   of concurrent writes; dominated writes finish with a single shared
//!   load), falling back to a compare-exchange loop on the monotone key
//!   for larger values; what
//!   [`AtomicMemory`](crate::memory::AtomicMemory) uses by default.
//! * [`LockMaxRegister`] — a mutex-guarded compare-and-keep cell; the
//!   direct analogue of the simulator's object, kept as the reference
//!   implementation (the `coarse-substrate` feature switches the
//!   runtime back to it for differential testing).
//! * [`TreeMaxRegister`] — the Aspnes–Attiya–Censor-Hillel bounded max
//!   register: a binary trie of atomic switch bits over the key space,
//!   with values parked at the leaves. Reads and writes touch
//!   `O(log key_space)` switches, demonstrating that the max registers
//!   assumed by the paper's footnote 1 are cheaply constructible from
//!   plain shared bits.

mod lock;
mod lockfree;
mod tree;

pub use lock::LockMaxRegister;
pub use lockfree::LockFreeMaxRegister;
pub use tree::TreeMaxRegister;

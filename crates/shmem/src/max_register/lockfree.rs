//! Lock-free max register: a combining announce array for small
//! payloads, a compare-exchange loop on a monotone key for the rest.

use crate::lockfree::{inline_ok, CombiningMax, Pile, Slot};

use sift_sim::Value;

/// A lock-free linearizable max register with a combining fast path.
///
/// The representation is chosen once, at construction, from the value
/// type (the branch is const-foldable, so each monomorphization
/// compiles to a single path):
///
/// * **Combining** — values that fit 16 bytes and have no destructor
///   use an allocation-free combining cell (`CombiningMax` in the
///   `lockfree` module): the authoritative maximum lives inline behind
///   a monotone claim/done stamp pair, concurrent writers publish into
///   per-thread cache-padded announce cells, and a single claim winner
///   installs the batch maximum — so `w` concurrent writes collapse
///   into `O(1)` amortized CAS traffic on the hot word, and a dominated
///   write finishes with one shared load and **zero RMWs**. Reads are
///   pure loads validated on the stamp.
/// * **Published** — larger or `Drop`-carrying values keep the original
///   path: the maximum lives in one publication slot, `write` runs a
///   compare-exchange loop that re-reads and re-decides on every
///   conflict, and displaced nodes go through interval-stamp
///   reclamation.
///
/// Both paths keep the same semantics: the published key sequence is
/// strictly increasing, ties keep the first value (matching the
/// simulator's [`MaxRegister`](sift_sim::max_register::MaxRegister)),
/// and a dropped write linearizes at the load that observed a key at
/// least as large. DESIGN.md ("Combining max register") carries the
/// correctness sketch — in particular why a losing combiner's value is
/// always covered by the winner's install.
///
/// Keys must stay below `u64::MAX` (the combining stamp encoding
/// reserves it); both paths enforce this.
///
/// # Examples
///
/// ```
/// use sift_shmem::max_register::LockFreeMaxRegister;
/// let m = LockFreeMaxRegister::new();
/// m.write(2, 10u64);
/// m.write(9, 90);
/// m.write(4, 40);
/// assert_eq!(m.read(), Some((9, 90)));
/// ```
#[derive(Debug)]
pub struct LockFreeMaxRegister<V: Value> {
    repr: MaxRepr<V>,
}

/// The two max-register representations, both boxed: the combining
/// cell carries a cache-padded announce array (~2 KiB) and the
/// published form a dormant `Pile` of the same order, so the register
/// itself stays pointer-sized either way.
#[derive(Debug)]
enum MaxRepr<V: Value> {
    Combining(Box<CombiningMax<V>>),
    Published(Box<PublishedMax<V>>),
}

#[derive(Debug)]
struct PublishedMax<V: Value> {
    pile: Pile<(u64, V)>,
    slot: Slot<(u64, V)>,
}

impl<V: Value> LockFreeMaxRegister<V> {
    /// Creates an empty max register.
    pub fn new() -> Self {
        let repr = if inline_ok::<V>() {
            MaxRepr::Combining(Box::new(CombiningMax::new()))
        } else {
            MaxRepr::Published(Box::new(PublishedMax {
                pile: Pile::new(),
                slot: Slot::new(),
            }))
        };
        Self { repr }
    }

    /// Whether this register uses the inline combining path
    /// (diagnostic; decided by the value type at construction).
    pub fn is_combining(&self) -> bool {
        matches!(self.repr, MaxRepr::Combining(_))
    }

    /// Writes `(key, value)`, kept only if `key` exceeds the current
    /// maximum. Panics if `key == u64::MAX` (reserved by the stamp
    /// encoding).
    pub fn write(&self, key: u64, value: V) {
        assert!(key < u64::MAX, "max-register keys must be below u64::MAX");
        match &self.repr {
            MaxRepr::Combining(cell) => cell.write(key, value),
            MaxRepr::Published(p) => {
                let guard = p.pile.enter();
                p.slot
                    .publish_max((key, value), &p.pile, &guard, |current| current.0 >= key);
            }
        }
    }

    /// Reads the current maximum entry.
    pub fn read(&self) -> Option<(u64, V)> {
        match &self.repr {
            MaxRepr::Combining(cell) => cell.read(),
            MaxRepr::Published(p) => p.slot.read_cloned(&p.pile),
        }
    }
}

impl<V: Value> Default for LockFreeMaxRegister<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn keeps_maximum_and_first_on_tie() {
        let m = LockFreeMaxRegister::new();
        assert_eq!(m.read(), None);
        m.write(5, 'a');
        m.write(3, 'b');
        m.write(7, 'c');
        m.write(7, 'd');
        assert_eq!(m.read(), Some((7, 'c')));
    }

    #[test]
    fn representation_follows_value_type() {
        assert!(LockFreeMaxRegister::<u64>::new().is_combining());
        assert!(LockFreeMaxRegister::<(u32, u32)>::new().is_combining());
        assert!(!LockFreeMaxRegister::<String>::new().is_combining());
        assert!(!LockFreeMaxRegister::<[u64; 3]>::new().is_combining());
    }

    #[test]
    fn published_path_keeps_maximum_and_first_on_tie() {
        let m: LockFreeMaxRegister<String> = LockFreeMaxRegister::new();
        assert_eq!(m.read(), None);
        m.write(5, "a".into());
        m.write(3, "b".into());
        m.write(7, "c".into());
        m.write(7, "d".into());
        assert_eq!(m.read(), Some((7, "c".to_string())));
    }

    #[test]
    #[should_panic(expected = "below u64::MAX")]
    fn reserved_key_is_rejected_on_every_path() {
        let m: LockFreeMaxRegister<String> = LockFreeMaxRegister::new();
        m.write(u64::MAX, "x".into());
    }

    #[test]
    fn concurrent_writes_keep_global_maximum_and_reads_are_monotone() {
        let m = Arc::new(LockFreeMaxRegister::new());
        let writers: Vec<_> = (0..8u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for k in 0..300 {
                        m.write(t * 300 + k, (t, k));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..2000 {
                        if let Some((key, (t, k))) = m.read() {
                            assert_eq!(key, t * 300 + k, "entry is self-consistent");
                            assert!(key >= last, "max went backwards: {last} -> {key}");
                            last = key;
                        }
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        assert_eq!(m.read(), Some((7 * 300 + 299, (7, 299))));
    }

    #[test]
    fn concurrent_writes_on_published_path_keep_global_maximum() {
        // Oversized payloads force the pointer-publication path.
        let m: Arc<LockFreeMaxRegister<[u64; 3]>> = Arc::new(LockFreeMaxRegister::new());
        assert!(!m.is_combining());
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for k in 0..200 {
                        let key = t * 200 + k;
                        m.write(key, [t, k, key]);
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        assert_eq!(m.read(), Some((3 * 200 + 199, [3, 199, 799])));
    }
}

//! Lock-free max register: a compare-exchange loop on a monotone key.

use crate::lockfree::{Pile, Slot};

use sift_sim::Value;

/// A lock-free linearizable max register.
///
/// The current maximum lives in one publication slot. `write(key,
/// value)` loads the current entry and, only if `key` strictly exceeds
/// its key, tries to compare-exchange a new node in; a failed exchange
/// re-reads and re-decides, so the published key sequence is strictly
/// increasing along the slot's modification order (ties keep the first
/// value, matching the simulator's
/// [`MaxRegister`](sift_sim::max_register::MaxRegister)). `read` is a
/// single guarded pointer load.
///
/// Linearization points: a kept write at its successful
/// compare-exchange, a dropped write at the load that observed a key at
/// least as large, a read at its pointer load. Writes are lock-free (a
/// failed exchange means another write was published), reads are
/// wait-free.
///
/// # Examples
///
/// ```
/// use sift_shmem::max_register::LockFreeMaxRegister;
/// let m = LockFreeMaxRegister::new();
/// m.write(2, "low");
/// m.write(9, "high");
/// m.write(4, "dominated");
/// assert_eq!(m.read(), Some((9, "high")));
/// ```
#[derive(Debug)]
pub struct LockFreeMaxRegister<V: Value> {
    pile: Pile<(u64, V)>,
    slot: Slot<(u64, V)>,
}

impl<V: Value> LockFreeMaxRegister<V> {
    /// Creates an empty max register.
    pub fn new() -> Self {
        Self {
            pile: Pile::new(),
            slot: Slot::new(),
        }
    }

    /// Writes `(key, value)`, kept only if `key` exceeds the current
    /// maximum.
    pub fn write(&self, key: u64, value: V) {
        let guard = self.pile.enter();
        self.slot
            .publish_max((key, value), &self.pile, &guard, |current| current.0 >= key);
    }

    /// Reads the current maximum entry.
    pub fn read(&self) -> Option<(u64, V)> {
        self.slot.read_cloned(&self.pile)
    }
}

impl<V: Value> Default for LockFreeMaxRegister<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn keeps_maximum_and_first_on_tie() {
        let m = LockFreeMaxRegister::new();
        assert_eq!(m.read(), None);
        m.write(5, 'a');
        m.write(3, 'b');
        m.write(7, 'c');
        m.write(7, 'd');
        assert_eq!(m.read(), Some((7, 'c')));
    }

    #[test]
    fn concurrent_writes_keep_global_maximum_and_reads_are_monotone() {
        let m = Arc::new(LockFreeMaxRegister::new());
        let writers: Vec<_> = (0..8u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for k in 0..300 {
                        m.write(t * 300 + k, (t, k));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..2000 {
                        if let Some((key, (t, k))) = m.read() {
                            assert_eq!(key, t * 300 + k, "entry is self-consistent");
                            assert!(key >= last, "max went backwards: {last} -> {key}");
                            last = key;
                        }
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        assert_eq!(m.read(), Some((7 * 300 + 299, (7, 299))));
    }
}

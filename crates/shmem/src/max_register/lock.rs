//! Mutex-based max register.

use crate::sync::Mutex;

use sift_sim::Value;

/// A linearizable max register guarded by a mutex.
///
/// `write(key, value)` keeps the entry only if `key` strictly exceeds
/// the current maximum (ties keep the first value, matching the
/// simulator's [`MaxRegister`](sift_sim::max_register::MaxRegister)).
///
/// # Examples
///
/// ```
/// use sift_shmem::max_register::LockMaxRegister;
/// let m = LockMaxRegister::new();
/// m.write(2, "low");
/// m.write(9, "high");
/// assert_eq!(m.read(), Some((9, "high")));
/// ```
#[derive(Debug, Default)]
pub struct LockMaxRegister<V> {
    entry: Mutex<Option<(u64, V)>>,
}

impl<V: Value> LockMaxRegister<V> {
    /// Creates an empty max register.
    pub fn new() -> Self {
        Self {
            entry: Mutex::new(None),
        }
    }

    /// Writes `(key, value)`, kept only if `key` exceeds the current
    /// maximum.
    pub fn write(&self, key: u64, value: V) {
        let mut guard = self.entry.lock();
        match &*guard {
            Some((current, _)) if *current >= key => {}
            _ => *guard = Some((key, value)),
        }
    }

    /// Reads the current maximum entry.
    pub fn read(&self) -> Option<(u64, V)> {
        self.entry.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn keeps_maximum() {
        let m = LockMaxRegister::new();
        m.write(5, 'a');
        m.write(3, 'b');
        m.write(7, 'c');
        assert_eq!(m.read(), Some((7, 'c')));
    }

    #[test]
    fn empty_reads_none() {
        let m: LockMaxRegister<u8> = LockMaxRegister::new();
        assert_eq!(m.read(), None);
    }

    #[test]
    fn concurrent_writes_keep_global_maximum() {
        let m = Arc::new(LockMaxRegister::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for k in 0..200 {
                        m.write(t * 200 + k, (t, k));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (key, _) = m.read().unwrap();
        assert_eq!(key, 7 * 200 + 199);
    }
}

//! Bounded max register as a binary trie of switch bits
//! (after Aspnes, Attiya, Censor-Hillel, "Polylogarithmic concurrent
//! data structures from monotone circuits").
//!
//! Keys are `bits`-bit integers. Internal nodes hold a one-shot boolean
//! *switch* meaning "some key with a 1 at this position (given the
//! prefix so far) has been completely written below". A write parks its
//! value at the leaf first, then walks its key MSB-first: on a 1-bit it
//! recurses right and only then sets the switch; on a 0-bit it aborts if
//! the switch is already set (a larger key exists, so this write can
//! never be the maximum). A read simply follows switches: right if set,
//! left otherwise. Switches only ever turn on, so reads are monotone,
//! and a set switch implies a completed path to a parked leaf below —
//! which is why writers set switches bottom-up.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::sync::Mutex;

use sift_sim::Value;

/// A bounded max register over keys `0..2^bits`.
///
/// Reads and writes touch `O(bits)` switches. Storage is a complete
/// implicit tree (`2^bits` leaves), so keep `bits` modest (≤ 24).
///
/// # Examples
///
/// ```
/// use sift_shmem::max_register::TreeMaxRegister;
/// let m: TreeMaxRegister<&str> = TreeMaxRegister::new(4);
/// m.write(3, "three");
/// m.write(12, "twelve");
/// m.write(7, "seven");
/// assert_eq!(m.read(), Some((12, "twelve")));
/// ```
#[derive(Debug)]
pub struct TreeMaxRegister<V> {
    bits: u32,
    /// Implicit heap-ordered internal nodes: root at 1, children of `i`
    /// at `2i` and `2i+1`. `switches[i]` is node `i`'s bit.
    switches: Vec<AtomicBool>,
    leaves: Vec<Mutex<Option<V>>>,
}

impl<V: Value> TreeMaxRegister<V> {
    /// Creates a max register over keys `0..2^bits`.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 24`.
    pub fn new(bits: u32) -> Self {
        assert!((1..=24).contains(&bits), "bits must be in 1..=24");
        let leaves = 1usize << bits;
        Self {
            bits,
            switches: (0..leaves).map(|_| AtomicBool::new(false)).collect(),
            leaves: (0..leaves).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// The key-space size `2^bits`.
    pub fn key_space(&self) -> u64 {
        1u64 << self.bits
    }

    /// Writes `(key, value)`.
    ///
    /// # Panics
    ///
    /// Panics if `key >= 2^bits`.
    pub fn write(&self, key: u64, value: V) {
        assert!(key < self.key_space(), "key {key} out of range");
        {
            // Park the value before any switch becomes visible; first
            // writer of a key wins (the tie rule of the model object).
            let mut leaf = self.leaves[key as usize].lock();
            if leaf.is_none() {
                *leaf = Some(value);
            }
        }
        self.write_path(key, 1, self.bits);
    }

    /// Recursive walk: `node` is the implicit index, `remaining` the
    /// number of key bits below it.
    fn write_path(&self, key: u64, node: usize, remaining: u32) {
        if remaining == 0 {
            return;
        }
        let bit = (key >> (remaining - 1)) & 1;
        if bit == 1 {
            self.write_path(key, 2 * node + 1, remaining - 1);
            // Set the switch only after the subtree write completed, so
            // readers never follow a dangling path.
            self.switches[node].store(true, Ordering::SeqCst);
        } else if !self.switches[node].load(Ordering::SeqCst) {
            self.write_path(key, 2 * node, remaining - 1);
        }
        // A set switch on a 0-bit means a larger key is present: this
        // write can never be the maximum, so it stops.
    }

    /// Reads the current maximum entry.
    pub fn read(&self) -> Option<(u64, V)> {
        let mut node = 1usize;
        let mut key = 0u64;
        for _ in 0..self.bits {
            let bit = self.switches[node].load(Ordering::SeqCst);
            key = (key << 1) | u64::from(bit);
            node = 2 * node + usize::from(bit);
        }
        self.leaves[key as usize].lock().clone().map(|v| (key, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_reads_none() {
        let m: TreeMaxRegister<u8> = TreeMaxRegister::new(3);
        assert_eq!(m.read(), None);
    }

    #[test]
    fn sequential_max_semantics_match_reference() {
        use sift_sim::rng::Xoshiro256StarStar;
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let m: TreeMaxRegister<u64> = TreeMaxRegister::new(8);
        let mut reference: Option<u64> = None;
        for _ in 0..500 {
            let k = rng.range_u64(256);
            m.write(k, k * 10);
            reference = Some(reference.map_or(k, |r| r.max(k)));
            let (key, value) = m.read().unwrap();
            assert_eq!(Some(key), reference);
            assert_eq!(value, key * 10);
        }
    }

    #[test]
    fn zero_key_is_readable() {
        let m: TreeMaxRegister<&str> = TreeMaxRegister::new(2);
        m.write(0, "zero");
        assert_eq!(m.read(), Some((0, "zero")));
    }

    #[test]
    fn ties_keep_first_value() {
        let m: TreeMaxRegister<&str> = TreeMaxRegister::new(2);
        m.write(2, "first");
        m.write(2, "second");
        assert_eq!(m.read(), Some((2, "first")));
    }

    #[test]
    fn dominated_writes_are_absorbed() {
        let m: TreeMaxRegister<u32> = TreeMaxRegister::new(4);
        m.write(15, 1);
        m.write(3, 2);
        m.write(8, 3);
        assert_eq!(m.read(), Some((15, 1)));
    }

    #[test]
    fn concurrent_writers_yield_global_maximum_and_monotone_reads() {
        let m = Arc::new(TreeMaxRegister::<u64>::new(12));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut rng = sift_sim::rng::Xoshiro256StarStar::seed_from_u64(t);
                    for _ in 0..500 {
                        let k = rng.range_u64(1 << 12);
                        m.write(k, k);
                    }
                })
            })
            .collect();
        let reader = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..2000 {
                    if let Some((k, v)) = m.read() {
                        assert_eq!(k, v, "value corresponds to its key");
                        assert!(k >= last, "reads must be monotone: {last} -> {k}");
                        last = k;
                    }
                }
            })
        };
        for h in writers {
            h.join().unwrap();
        }
        reader.join().unwrap();
        // After all writes completed, the read is the true maximum of
        // everything written; it is at least the max any single writer
        // saw. Re-derive the overall max:
        let mut expect = 0u64;
        for t in 0..4u64 {
            let mut rng = sift_sim::rng::Xoshiro256StarStar::seed_from_u64(t);
            for _ in 0..500 {
                expect = expect.max(rng.range_u64(1 << 12));
            }
        }
        assert_eq!(m.read().unwrap().0, expect);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_key_panics() {
        let m: TreeMaxRegister<u8> = TreeMaxRegister::new(2);
        m.write(4, 0);
    }
}

//! Proof the inline register paths are actually taken: under a pure
//! small-payload register workload the substrate counters must show
//! inline activity and **zero** Pile machinery (no retires, no
//! reclamation, no reader-guard entries, no slot CAS retries).
//!
//! Only meaningful with the `obs` feature (the hooks are no-op stubs
//! otherwise), and deliberately a **single** test function: the
//! substrate counters are process-global, and the phases below reset
//! and re-read them sequentially — a sibling test running concurrently
//! in this binary would race the counters. Keeping this file to one
//! test is what makes the exact-equality assertions sound.

#![cfg(feature = "obs")]

use sift_shmem::max_register::LockFreeMaxRegister;
use sift_shmem::obs;
use sift_shmem::register::LockFreeRegister;

const WRITES: u64 = 256;

#[test]
fn inline_paths_bypass_pile_machinery() {
    // Phase 1: pure register workload over an inline payload. Every
    // write goes through the seqlock cell; nothing touches a pile.
    obs::reset();
    let r: LockFreeRegister<(u64, u64)> = LockFreeRegister::new();
    assert!(r.is_inline());
    for k in 0..WRITES {
        r.write((k, k * 2));
        assert_eq!(r.read(), Some((k, k * 2)));
    }
    let snap = obs::snapshot();
    assert_eq!(snap.inline_register_writes, WRITES, "fast path taken");
    assert_eq!(snap.retired_nodes, 0, "no node retirement");
    assert_eq!(snap.reclaimed_nodes, 0, "no reclamation");
    assert_eq!(snap.reclaim_passes, 0, "no reclamation passes");
    assert_eq!(snap.guard_entries, 0, "no reader guards");
    assert_eq!(snap.slot_cas_retries, 0, "no slot CAS traffic");
    assert_eq!(snap.retire_pile_hwm, 0, "piles never occupied");

    // Phase 2: combining max register over an inline payload. Every
    // write either installs (claim winner) or returns covered; the
    // two must account for all of them, again with zero pile traffic.
    obs::reset();
    let m: LockFreeMaxRegister<u64> = LockFreeMaxRegister::new();
    assert!(m.is_combining());
    for k in 0..WRITES {
        m.write(k, k);
    }
    for k in 0..WRITES {
        m.write(k, k); // dominated: the fast covered path
    }
    assert_eq!(m.read(), Some((WRITES - 1, WRITES - 1)));
    let snap = obs::snapshot();
    assert_eq!(
        snap.combine_installs + snap.combine_covered,
        2 * WRITES,
        "every write installed or was covered"
    );
    assert!(snap.combine_covered >= WRITES, "repeats are all dominated");
    assert_eq!(snap.combine_batch.count(), snap.combine_installs);
    assert_eq!(snap.retired_nodes, 0, "no node retirement");
    assert_eq!(snap.guard_entries, 0, "no reader guards");

    // Phase 3 (control): an oversized payload must still go through
    // pointer publication — retires happen, inline counters stay zero.
    obs::reset();
    let big: LockFreeRegister<String> = LockFreeRegister::new();
    assert!(!big.is_inline());
    for k in 0..WRITES {
        big.write(k.to_string());
    }
    let snap = obs::snapshot();
    assert!(snap.retired_nodes > 0, "published path retires nodes");
    assert_eq!(snap.inline_register_writes, 0);
}

//! Golden test for the Chrome-trace (Perfetto) exporter: a fixed run
//! must export byte-identically to the committed fixture, and the
//! fixture must pass the structural schema check.
//!
//! To regenerate the fixture after an intentional format change, run
//! this test and copy the "actual" output it prints into
//! `tests/fixtures/perfetto_golden.json`.

use sift_sim::obs::{check_trace_shape, perfetto_from_ring, perfetto_trace_json};
use sift_sim::schedule::FixedSchedule;
use sift_sim::{Engine, LayoutBuilder, MaxRegisterId, Op, OpResult, Process, RegisterId, Step};

const GOLDEN: &str = include_str!("fixtures/perfetto_golden.json");

/// Writes its input to a register, bids into a max register, reads the
/// winner back: exercises four distinct op kinds deterministically.
struct Bidder {
    reg: RegisterId,
    max: MaxRegisterId,
    input: u64,
    phase: u8,
}

impl Process for Bidder {
    type Value = u64;
    type Output = u64;

    fn step(&mut self, prev: Option<OpResult<u64>>) -> Step<u64, u64> {
        self.phase += 1;
        match self.phase {
            1 => Step::Issue(Op::RegisterWrite(self.reg, self.input)),
            2 => Step::Issue(Op::MaxWrite(self.max, self.input, self.input)),
            3 => Step::Issue(Op::MaxRead(self.max)),
            _ => Step::Done(prev.unwrap().expect_max().map_or(0, |(k, _)| k)),
        }
    }
}

fn fixed_run_trace() -> String {
    let mut b = LayoutBuilder::new();
    let reg = b.register();
    let max = b.max_register();
    let layout = b.build();
    let procs = (0..2)
        .map(|i| Bidder {
            reg,
            max,
            input: 10 + i,
            phase: 0,
        })
        .collect();
    let mut engine = Engine::new(&layout, procs);
    engine.enable_trace_ring(16);
    let report = engine.run(FixedSchedule::from_indices([0, 1, 0, 1, 0, 1]));
    assert_eq!(report.outputs, vec![Some(11), Some(11)]);
    let ring = report.ring.expect("ring enabled");
    // Both personae survive round 0; the bid 11 alone survives round 1.
    perfetto_from_ring(&ring, 2, &[(0, 2), (1, 1)])
}

#[test]
fn export_matches_committed_fixture() {
    let actual = fixed_run_trace();
    assert_eq!(
        actual, GOLDEN,
        "exporter output diverged from fixture.\n--- actual ---\n{actual}"
    );
}

#[test]
fn fixture_passes_schema_check() {
    // 1 process_name + 2 thread_name + 6 ops + 2 counter samples.
    assert_eq!(check_trace_shape(GOLDEN), Ok(11));
}

#[test]
fn export_is_stable_across_repeated_runs() {
    assert_eq!(fixed_run_trace(), fixed_run_trace());
}

#[test]
fn empty_export_passes_schema_check() {
    let json = perfetto_trace_json([].iter(), 0, &[]);
    assert!(check_trace_shape(&json).is_ok());
}

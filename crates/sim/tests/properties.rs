// Needs the external `proptest` crate: compiled only with `--features proptest-tests`.
#![cfg(feature = "proptest-tests")]
//! Property-based tests of the simulator itself: schedules, memory
//! objects, and engine accounting invariants.

use proptest::prelude::*;

use sift_sim::schedule::{
    BlockRotation, CrashSubset, RandomInterleave, RepeatingSchedule, RoundRobin, Schedule,
    ScheduleKind, Stutter,
};
use sift_sim::{Engine, LayoutBuilder, Memory, Op, OpResult, Process, ProcessId, RegisterId, Step};

/// A process that performs `k` writes of its id and then reads back.
#[derive(Debug)]
struct Chatter {
    reg: RegisterId,
    id: u64,
    writes_left: u32,
}

impl Process for Chatter {
    type Value = u64;
    type Output = Option<u64>;

    fn step(&mut self, prev: Option<OpResult<u64>>) -> Step<u64, Option<u64>> {
        if self.writes_left > 0 {
            self.writes_left -= 1;
            Step::Issue(Op::RegisterWrite(self.reg, self.id))
        } else if prev
            .as_ref()
            .is_some_and(|r| matches!(r, OpResult::RegisterValue(_)))
        {
            Step::Done(prev.unwrap().expect_register())
        } else {
            Step::Issue(Op::RegisterRead(self.reg))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every schedule family produces ids in range and covers every
    /// process within a bounded horizon.
    #[test]
    fn schedules_are_in_range_and_fair(
        n in 1usize..20,
        seed in 0u64..10_000,
    ) {
        for kind in ScheduleKind::all() {
            let mut s = kind.build(n, seed);
            let mut seen = vec![false; n];
            // Block-sequential only advances via on_done; mark its first
            // pid and simulate completion to traverse everyone.
            for _ in 0..(4 * n * n + 16) {
                match s.next_pid() {
                    None => break,
                    Some(pid) => {
                        prop_assert!(pid.index() < n, "{} out of range", pid);
                        if !seen[pid.index()] {
                            seen[pid.index()] = true;
                            s.on_done(pid); // treat first visit as completion
                        }
                    }
                }
            }
            prop_assert!(
                seen.iter().all(|&x| x),
                "{} did not cover all {} processes",
                kind.name(),
                n
            );
        }
    }

    /// The engine charges exactly the operations executed: the sum of
    /// per-process steps equals the total, and memory op counts agree.
    #[test]
    fn engine_accounting_is_conserved(
        n in 1usize..12,
        writes in 0u32..5,
        seed in 0u64..10_000,
    ) {
        let mut b = LayoutBuilder::new();
        let reg = b.register();
        let layout = b.build();
        let procs: Vec<Chatter> = (0..n)
            .map(|i| Chatter { reg, id: i as u64, writes_left: writes })
            .collect();
        let report = Engine::new(&layout, procs).run(RandomInterleave::new(n, seed));
        let per_sum: u64 = report.metrics.per_process_steps.iter().sum();
        prop_assert_eq!(per_sum, report.metrics.total_steps);
        prop_assert_eq!(report.metrics.total_ops, report.memory.ops_executed());
        // Each process did `writes` writes + 1 read.
        prop_assert_eq!(report.metrics.total_ops, (writes as u64 + 1) * n as u64);
        prop_assert!(report.all_decided());
    }

    /// Register semantics: the final read of a solo suffix returns the
    /// last value written before it.
    #[test]
    fn register_is_last_write_wins(
        values in prop::collection::vec(0u64..100, 1..20),
    ) {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let mut mem: Memory<u64> = Memory::new(&b.build());
        for &v in &values {
            mem.execute(Op::RegisterWrite(r, v)).expect_ack();
        }
        prop_assert_eq!(
            mem.execute(Op::RegisterRead(r)).expect_register(),
            values.last().copied()
        );
    }

    /// Snapshot scans are monotone: a later scan's view dominates an
    /// earlier one component-wise (components written once).
    #[test]
    fn snapshot_views_nest(
        updates in prop::collection::vec((0usize..6, 0u64..100), 1..20),
    ) {
        let mut b = LayoutBuilder::new();
        let s = b.snapshot(6);
        let mut mem: Memory<u64> = Memory::new(&b.build());
        let mut previous: Option<Vec<Option<u64>>> = None;
        for &(component, value) in &updates {
            mem.execute(Op::SnapshotUpdate(s, component, value)).expect_ack();
            let view = mem.execute(Op::SnapshotScan(s)).expect_view();
            let current: Vec<Option<u64>> = view.to_vec();
            if let Some(prev) = &previous {
                for (a, b) in prev.iter().zip(&current) {
                    if a.is_some() {
                        prop_assert!(b.is_some(), "component lost a value");
                    }
                }
            }
            previous = Some(current);
        }
    }

    /// Max register reads are monotone in the key, under any write
    /// sequence.
    #[test]
    fn max_register_is_monotone(
        keys in prop::collection::vec(0u64..1000, 1..30),
    ) {
        let mut b = LayoutBuilder::new();
        let m = b.max_register();
        let mut mem: Memory<u64> = Memory::new(&b.build());
        let mut last = 0u64;
        for &k in &keys {
            mem.execute(Op::MaxWrite(m, k, k)).expect_ack();
            let (key, value) = mem
                .execute(Op::MaxRead(m))
                .expect_max()
                .expect("written at least once");
            prop_assert_eq!(key, value);
            prop_assert!(key >= last);
            last = key;
        }
        prop_assert_eq!(last, *keys.iter().max().unwrap());
    }

    /// Crash subsets never schedule crashed processes and preserve the
    /// support arithmetic.
    #[test]
    fn crash_subset_filters_support(
        n in 2usize..20,
        fraction in 0.0f64..0.99,
        seed in 0u64..10_000,
    ) {
        let mut s = CrashSubset::random(RoundRobin::new(n), n, fraction, seed);
        let crashed: Vec<ProcessId> = s.crashed().collect();
        prop_assert!(crashed.len() < n, "someone must survive");
        prop_assert_eq!(s.support().len(), n - crashed.len());
        for _ in 0..100 {
            let pid = s.next_pid().unwrap();
            prop_assert!(!crashed.contains(&pid));
        }
    }

    /// Deterministic replay: equal seeds give equal schedule prefixes.
    #[test]
    fn schedules_replay_deterministically(
        n in 1usize..16,
        seed in 0u64..10_000,
        prefix in 1usize..200,
    ) {
        for kind in ScheduleKind::all() {
            let mut a = kind.build(n, seed);
            let mut b = kind.build(n, seed);
            for _ in 0..prefix {
                prop_assert_eq!(a.next_pid(), b.next_pid());
            }
        }
    }

    /// Stutter starves exactly one process at the configured period.
    #[test]
    fn stutter_period_is_exact(
        n in 2usize..10,
        slow in 0usize..10,
        period in 2u64..20,
    ) {
        let slow = ProcessId(slow % n);
        let mut s = Stutter::new(n, slow, period);
        for i in 1..=(period * 10) {
            let pid = s.next_pid().unwrap();
            prop_assert_eq!(pid == slow, i % period == 0, "slot {}", i);
        }
    }

    /// Block rotation covers all processes exactly once per pass.
    #[test]
    fn block_rotation_passes_are_permutations(
        n in 1usize..12,
        block in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let mut s = BlockRotation::new(n, block, seed);
        for _pass in 0..3 {
            let mut counts = vec![0usize; n];
            for _ in 0..(n * block) {
                counts[s.next_pid().unwrap().index()] += 1;
            }
            prop_assert!(counts.iter().all(|&c| c == block), "{:?}", counts);
        }
    }

    /// Repeating schedules have the support of their pattern.
    #[test]
    fn repeating_support_is_pattern_set(
        pattern in prop::collection::vec(0usize..8, 1..12),
    ) {
        let s = RepeatingSchedule::from_indices(pattern.clone());
        let mut expect: Vec<usize> = pattern;
        expect.sort_unstable();
        expect.dedup();
        let support: Vec<usize> = s.support().iter().map(|p| p.index()).collect();
        prop_assert_eq!(support, expect);
    }
}

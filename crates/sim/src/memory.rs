//! The simulated shared memory: an arena of registers, snapshot objects,
//! and max registers, executing one [`Op`] atomically per call.

use crate::ids::{MaxRegisterId, RegisterId, SnapshotId};
use crate::layout::Layout;
use crate::max_register::MaxRegister;
use crate::op::{Op, OpResult};
use crate::paged::Paged;
use crate::register::Register;
use crate::rng::Xoshiro256StarStar;
use crate::snapshot::SnapshotObject;
use crate::value::Value;

/// How steps are charged for snapshot operations.
///
/// The paper's §2 assumes the *unit-cost snapshot model*: a scan costs one
/// step. To quantify what the algorithms would cost over plain registers,
/// [`CostModel::RegisterImplemented`] charges each snapshot operation the
/// `O(n)` steps of a register-based snapshot implementation instead.
/// Register and max-register operations cost 1 in both models (max
/// registers can be made polylogarithmic from registers, which
/// `sift-shmem` demonstrates; here they stay unit-cost as in footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// Every operation costs one step (the paper's accounting).
    #[default]
    UnitCost,
    /// Snapshot scans and updates cost `n` steps (`n` = component count),
    /// modelling a linear-time register-based snapshot.
    RegisterImplemented,
}

/// How a *regular* register resolves a read that overlaps a write.
///
/// A regular register (Lamport; Hadzilacos–Hu–Toueg, arXiv 2006.06771)
/// guarantees only that a read returns the value of some write
/// concurrent with it or of the last write preceding it — weaker than
/// atomicity, which additionally forbids new/old inversions. The
/// resolution picks, deterministically from the schedule state, which
/// of the legal values each overlapping read observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Every overlapping read resolves to the newest value — observably
    /// identical to the atomic substrate (the differential anchor).
    AlwaysNew,
    /// Every overlapping read resolves to the stalest legal value (the
    /// displaced value, or ⊥ if no write preceded the read's start) —
    /// the adversarially worst regular register.
    AlwaysOld,
    /// Each overlapping read flips a coin from a dedicated seeded
    /// stream, independent of process and schedule randomness.
    Coin(u64),
}

/// Which semantics simulated registers follow.
///
/// [`RegisterSemantics::Atomic`] is the paper's model and the default;
/// [`RegisterSemantics::Regular`] weakens reads that overlap writes as
/// selected by the [`Resolution`]. Only plain registers weaken —
/// snapshots and max registers keep their atomic semantics (they model
/// higher-level objects with their own implementations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegisterSemantics {
    /// Linearizable registers (the default).
    #[default]
    Atomic,
    /// Regular registers with the given overlap resolution.
    Regular(Resolution),
}

/// Simulated shared memory.
///
/// # Examples
///
/// ```
/// use sift_sim::layout::LayoutBuilder;
/// use sift_sim::memory::Memory;
/// use sift_sim::op::Op;
///
/// let mut b = LayoutBuilder::new();
/// let r = b.register();
/// let mut mem: Memory<u32> = Memory::new(&b.build());
/// mem.execute(Op::RegisterWrite(r, 7)).expect_ack();
/// assert_eq!(mem.execute(Op::RegisterRead(r)).expect_register(), Some(7));
/// ```
/// Registers and max registers are stored in [`Paged`] arrays: a layout
/// may declare O(n) slots (one per process, one per round, …) but the
/// backing storage materializes per page on first access, so a run that
/// touches 100 processes of a million-slot layout allocates ~kilobytes,
/// not O(n). Snapshot objects are cheap per declared object (their
/// component vectors are already lazy) and stay in a plain `Vec`.
#[derive(Debug, Clone)]
pub struct Memory<V> {
    registers: Paged<Register<V>>,
    snapshots: Vec<SnapshotObject<V>>,
    max_registers: Paged<MaxRegister<V>>,
    cost_model: CostModel,
    semantics: RegisterSemantics,
    /// The [`Resolution::Coin`] stream; `None` under every other
    /// semantics. Kept in the memory so cloning a memory clones the
    /// stream position (replays stay bit-identical).
    coin: Option<Xoshiro256StarStar>,
    ops_executed: u64,
}

impl<V: Value> Memory<V> {
    /// Instantiates memory for `layout` with the unit-cost model.
    pub fn new(layout: &Layout) -> Self {
        Self::with_cost_model(layout, CostModel::UnitCost)
    }

    /// Instantiates memory for `layout` with an explicit cost model.
    ///
    /// Construction is O(#snapshot objects + declared slots / page
    /// size): no register storage is allocated until an operation
    /// touches it.
    pub fn with_cost_model(layout: &Layout, cost_model: CostModel) -> Self {
        Self {
            registers: Paged::new(layout.register_count()),
            snapshots: layout
                .snapshot_components()
                .iter()
                .map(|&c| SnapshotObject::new(c))
                .collect(),
            max_registers: Paged::new(layout.max_register_count()),
            cost_model,
            semantics: RegisterSemantics::Atomic,
            coin: None,
            ops_executed: 0,
        }
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    /// The register semantics in effect.
    pub fn semantics(&self) -> RegisterSemantics {
        self.semantics
    }

    /// Switches the register semantics. Effective for subsequent
    /// [`Memory::execute_for`] calls; [`Memory::execute`] always applies
    /// atomic semantics (a plain execute carries no reader epoch, so
    /// every read trivially follows all writes).
    pub fn set_semantics(&mut self, semantics: RegisterSemantics) {
        self.coin = match semantics {
            RegisterSemantics::Regular(Resolution::Coin(seed)) => {
                Some(Xoshiro256StarStar::seed_from_u64(seed))
            }
            _ => None,
        };
        self.semantics = semantics;
    }

    /// Executes one operation atomically and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range for the layout this memory was
    /// built from, or if a snapshot component index is out of range. Both
    /// indicate protocol construction bugs.
    pub fn execute(&mut self, op: Op<V>) -> OpResult<V> {
        // An epoch after every write makes each read trivially
        // non-overlapping, so this is atomic under every semantics.
        self.execute_for(op, u64::MAX)
    }

    /// Executes one operation on behalf of a process whose *previous*
    /// scheduled step completed at global op-clock time `epoch` (0 for
    /// a process taking its first step).
    ///
    /// Under [`RegisterSemantics::Atomic`] this behaves exactly like
    /// [`Memory::execute`]. Under [`RegisterSemantics::Regular`], a
    /// register read overlapping a write — one executed after `epoch`,
    /// i.e. while the reading process was between scheduled steps —
    /// resolves old or new per the configured [`Resolution`]. Writes
    /// and all snapshot/max-register operations are unaffected.
    ///
    /// # Panics
    ///
    /// As [`Memory::execute`].
    pub fn execute_for(&mut self, op: Op<V>, epoch: u64) -> OpResult<V> {
        self.ops_executed += 1;
        let now = self.ops_executed;
        match op {
            Op::RegisterRead(id) => {
                let stale = match self.semantics {
                    RegisterSemantics::Atomic
                    | RegisterSemantics::Regular(Resolution::AlwaysNew) => false,
                    RegisterSemantics::Regular(Resolution::AlwaysOld) => true,
                    RegisterSemantics::Regular(Resolution::Coin(_)) => {
                        // Consume a coin only on genuinely overlapping
                        // reads, so uncontended prefixes stay identical
                        // across resolutions.
                        self.registers
                            .get(id.index())
                            .is_some_and(|r| r.written_since(epoch))
                            && self
                                .coin
                                .as_mut()
                                .expect("Coin semantics always carries a stream")
                                .coin()
                    }
                };
                let reg = self.register_mut(id);
                let value = if stale {
                    reg.read_stale(epoch).cloned()
                } else {
                    reg.read().cloned()
                };
                OpResult::RegisterValue(value)
            }
            Op::RegisterWrite(id, v) => {
                self.register_mut(id).write_at(v, now);
                OpResult::Ack
            }
            Op::SnapshotUpdate(id, component, v) => {
                self.snapshot_mut(id).update(component, v);
                OpResult::Ack
            }
            Op::SnapshotScan(id) => OpResult::SnapshotView(self.snapshot_mut(id).scan()),
            Op::MaxRead(id) => OpResult::MaxValue(
                self.max_register_mut(id)
                    .read()
                    .map(|(k, v)| (k, v.clone())),
            ),
            Op::MaxWrite(id, key, v) => {
                self.max_register_mut(id).write(key, v);
                OpResult::Ack
            }
        }
    }

    /// Step cost of `op` under the configured cost model.
    pub fn cost(&self, op: &Op<V>) -> u64 {
        match (self.cost_model, op) {
            (CostModel::RegisterImplemented, Op::SnapshotScan(id))
            | (CostModel::RegisterImplemented, Op::SnapshotUpdate(id, _, _)) => {
                self.snapshots[id.index()].len().max(1) as u64
            }
            _ => 1,
        }
    }

    /// Total operations executed so far.
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Read-only access to a register, for probes and assertions.
    /// Registers never operated on read as ⊥ without materializing.
    pub fn peek_register(&self, id: RegisterId) -> Option<&V> {
        self.registers.get(id.index()).and_then(Register::peek)
    }

    /// Read-only access to a max register, for probes and assertions.
    pub fn peek_max_register(&self, id: MaxRegisterId) -> Option<(u64, &V)> {
        self.max_registers
            .get(id.index())
            .and_then(MaxRegister::peek)
    }

    /// Register slots whose backing page has been materialized — an
    /// allocation probe for the lazy-memory guarantee (untouched slots
    /// cost nothing beyond the page table).
    pub fn materialized_registers(&self) -> usize {
        self.registers.materialized()
    }

    /// Max-register slots whose backing page has been materialized.
    pub fn materialized_max_registers(&self) -> usize {
        self.max_registers.materialized()
    }

    fn register_mut(&mut self, id: RegisterId) -> &mut Register<V> {
        self.registers.get_mut(id.index())
    }

    fn snapshot_mut(&mut self, id: SnapshotId) -> &mut SnapshotObject<V> {
        &mut self.snapshots[id.index()]
    }

    fn max_register_mut(&mut self, id: MaxRegisterId) -> &mut MaxRegister<V> {
        self.max_registers.get_mut(id.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutBuilder;

    fn small_memory() -> (Memory<u32>, RegisterId, SnapshotId, MaxRegisterId) {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let s = b.snapshot(3);
        let m = b.max_register();
        (Memory::new(&b.build()), r, s, m)
    }

    #[test]
    fn register_round_trip() {
        let (mut mem, r, _, _) = small_memory();
        assert_eq!(mem.execute(Op::RegisterRead(r)).expect_register(), None);
        mem.execute(Op::RegisterWrite(r, 5)).expect_ack();
        assert_eq!(mem.execute(Op::RegisterRead(r)).expect_register(), Some(5));
    }

    #[test]
    fn snapshot_round_trip() {
        let (mut mem, _, s, _) = small_memory();
        mem.execute(Op::SnapshotUpdate(s, 1, 10)).expect_ack();
        let view = mem.execute(Op::SnapshotScan(s)).expect_view();
        assert_eq!(&view[..], &[None, Some(10), None]);
    }

    #[test]
    fn max_register_round_trip() {
        let (mut mem, _, _, m) = small_memory();
        assert_eq!(mem.execute(Op::MaxRead(m)).expect_max(), None);
        mem.execute(Op::MaxWrite(m, 4, 40)).expect_ack();
        mem.execute(Op::MaxWrite(m, 2, 20)).expect_ack();
        assert_eq!(mem.execute(Op::MaxRead(m)).expect_max(), Some((4, 40)));
    }

    #[test]
    fn unit_cost_model_charges_one() {
        let (mem, r, s, m) = small_memory();
        assert_eq!(mem.cost(&Op::RegisterRead(r)), 1);
        assert_eq!(mem.cost(&Op::SnapshotScan(s)), 1);
        assert_eq!(mem.cost(&Op::MaxRead(m)), 1);
    }

    #[test]
    fn register_cost_model_charges_n_for_snapshots() {
        let mut b = LayoutBuilder::new();
        let r = b.register();
        let s = b.snapshot(16);
        let mem: Memory<u32> = Memory::with_cost_model(&b.build(), CostModel::RegisterImplemented);
        assert_eq!(mem.cost(&Op::SnapshotScan(s)), 16);
        assert_eq!(mem.cost(&Op::SnapshotUpdate(s, 0, 1)), 16);
        assert_eq!(mem.cost(&Op::RegisterRead(r)), 1);
        assert_eq!(mem.cost_model(), CostModel::RegisterImplemented);
    }

    #[test]
    fn counts_total_ops() {
        let (mut mem, r, _, _) = small_memory();
        mem.execute(Op::RegisterWrite(r, 1)).expect_ack();
        let _ = mem.execute(Op::RegisterRead(r));
        assert_eq!(mem.ops_executed(), 2);
    }

    #[test]
    fn construction_allocates_no_register_storage() {
        let mut b = LayoutBuilder::new();
        let regs = b.registers(1_000_000);
        let maxes = b.max_registers(1_000_000);
        let mut mem: Memory<u32> = Memory::new(&b.build());
        assert_eq!(mem.materialized_registers(), 0);
        assert_eq!(mem.materialized_max_registers(), 0);
        // Peeks see ⊥ without materializing anything.
        assert_eq!(mem.peek_register(regs[999_999]), None);
        assert_eq!(mem.peek_max_register(maxes[0]), None);
        assert_eq!(mem.materialized_registers(), 0);
        // An operation materializes only the touched page.
        mem.execute(Op::RegisterWrite(regs[123_456], 5))
            .expect_ack();
        mem.execute(Op::MaxWrite(maxes[7], 1, 2)).expect_ack();
        assert!(mem.materialized_registers() < 5_000);
        assert!(mem.materialized_max_registers() < 5_000);
        assert_eq!(mem.peek_register(regs[123_456]), Some(&5));
    }

    #[test]
    fn reads_of_untouched_registers_are_bot() {
        let mut b = LayoutBuilder::new();
        let regs = b.registers(4096);
        let mut mem: Memory<u32> = Memory::new(&b.build());
        assert_eq!(
            mem.execute(Op::RegisterRead(regs[4095])).expect_register(),
            None
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_register_panics() {
        let mut b = LayoutBuilder::new();
        let _ = b.register();
        let mut mem: Memory<u32> = Memory::new(&b.build());
        let _ = mem.execute(Op::RegisterRead(crate::ids::RegisterId::from_index(1)));
    }

    #[test]
    fn regular_always_old_serves_stale_values() {
        let (mut mem, r, _, _) = small_memory();
        mem.set_semantics(RegisterSemantics::Regular(Resolution::AlwaysOld));
        assert_eq!(
            mem.semantics(),
            RegisterSemantics::Regular(Resolution::AlwaysOld)
        );
        mem.execute_for(Op::RegisterWrite(r, 1), 0).expect_ack();
        let after_first = mem.ops_executed();
        mem.execute_for(Op::RegisterWrite(r, 2), after_first)
            .expect_ack();
        // Reader whose last step preceded both writes: sees ⊥.
        assert_eq!(
            mem.execute_for(Op::RegisterRead(r), 0).expect_register(),
            None
        );
        // Reader from between the writes: sees the displaced value.
        assert_eq!(
            mem.execute_for(Op::RegisterRead(r), after_first)
                .expect_register(),
            Some(1)
        );
        // Reader from after both writes: regularity forces the newest.
        assert_eq!(
            mem.execute_for(Op::RegisterRead(r), mem.ops_executed())
                .expect_register(),
            Some(2)
        );
    }

    #[test]
    fn regular_always_new_matches_atomic() {
        let (mut mem, r, _, _) = small_memory();
        mem.set_semantics(RegisterSemantics::Regular(Resolution::AlwaysNew));
        mem.execute_for(Op::RegisterWrite(r, 7), 0).expect_ack();
        assert_eq!(
            mem.execute_for(Op::RegisterRead(r), 0).expect_register(),
            Some(7)
        );
    }

    #[test]
    fn regular_coin_is_deterministic_and_clones_with_memory() {
        let (mut mem, r, _, _) = small_memory();
        mem.set_semantics(RegisterSemantics::Regular(Resolution::Coin(42)));
        mem.execute_for(Op::RegisterWrite(r, 1), 0).expect_ack();
        mem.execute_for(Op::RegisterWrite(r, 2), 0).expect_ack();
        let mut replay = mem.clone();
        for _ in 0..32 {
            // Overlapping reads (epoch 0) flip coins; the cloned memory
            // must flip the same ones.
            assert_eq!(
                format!("{:?}", mem.execute_for(Op::RegisterRead(r), 0)),
                format!("{:?}", replay.execute_for(Op::RegisterRead(r), 0))
            );
        }
        // Both legal answers actually occur across the stream.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(mem.execute_for(Op::RegisterRead(r), 0).expect_register());
        }
        assert!(seen.contains(&Some(2)), "newest value never served");
        assert!(seen.len() > 1, "coin never served a stale value");
    }

    #[test]
    fn plain_execute_stays_atomic_under_regular_semantics() {
        let (mut mem, r, _, _) = small_memory();
        mem.set_semantics(RegisterSemantics::Regular(Resolution::AlwaysOld));
        mem.execute(Op::RegisterWrite(r, 1)).expect_ack();
        mem.execute(Op::RegisterWrite(r, 2)).expect_ack();
        assert_eq!(mem.execute(Op::RegisterRead(r)).expect_register(), Some(2));
    }

    #[test]
    fn peeks_do_not_count() {
        let (mut mem, r, _, m) = small_memory();
        mem.execute(Op::RegisterWrite(r, 1)).expect_ack();
        assert_eq!(mem.peek_register(r), Some(&1));
        assert_eq!(mem.peek_max_register(m), None);
        assert_eq!(mem.ops_executed(), 1);
    }
}

//! Max registers for the simulator.
//!
//! A max register stores the `(key, value)` pair with the largest key ever
//! written. Footnote 1 of the paper observes that Algorithm 1 only uses
//! snapshots to obtain the maximum-priority persona, so max registers
//! suffice; [`MaxRegister`] is the model-level object backing that variant
//! (experiment E15). Reads and writes are O(1), which is what makes the
//! max-register variant of Algorithm 1 scale to millions of simulated
//! processes.

use crate::value::Value;

/// A max register holding the entry with the largest key written so far.
///
/// Keys are `u64`; ties on the key keep the *first* written value, so the
/// register's content is monotone: once `(k, v)` is readable, every later
/// read returns an entry with key ≥ `k`.
///
/// # Examples
///
/// ```
/// use sift_sim::max_register::MaxRegister;
/// let mut m = MaxRegister::new();
/// m.write(3, "low");
/// m.write(9, "high");
/// m.write(5, "mid");
/// assert_eq!(m.read(), Some((9, &"high")));
/// ```
#[derive(Debug, Clone)]
pub struct MaxRegister<V> {
    entry: Option<(u64, V)>,
    writes: u64,
    reads: u64,
}

// Manual impl: the derive would demand `V: Default`, but an empty max
// register is ⊥ for any value type (required by the paged lazy memory).
impl<V> Default for MaxRegister<V> {
    fn default() -> Self {
        Self {
            entry: None,
            writes: 0,
            reads: 0,
        }
    }
}

impl<V: Value> MaxRegister<V> {
    /// Creates an empty max register.
    pub fn new() -> Self {
        Self {
            entry: None,
            writes: 0,
            reads: 0,
        }
    }

    /// Writes `(key, value)`; retained only if `key` strictly exceeds the
    /// current maximum key.
    pub fn write(&mut self, key: u64, value: V) {
        self.writes += 1;
        match &self.entry {
            Some((current, _)) if *current >= key => {}
            _ => self.entry = Some((key, value)),
        }
    }

    /// Reads the current maximum entry; `None` if never written.
    pub fn read(&mut self) -> Option<(u64, &V)> {
        self.reads += 1;
        self.entry.as_ref().map(|(k, v)| (*k, v))
    }

    /// Returns the current maximum entry without counting a read.
    pub fn peek(&self) -> Option<(u64, &V)> {
        self.entry.as_ref().map(|(k, v)| (*k, v))
    }

    /// Number of write operations executed.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Number of read operations executed.
    pub fn read_count(&self) -> u64 {
        self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reads_none() {
        let mut m: MaxRegister<u8> = MaxRegister::new();
        assert_eq!(m.read(), None);
    }

    #[test]
    fn keeps_maximum() {
        let mut m = MaxRegister::new();
        m.write(5, 'a');
        m.write(2, 'b');
        assert_eq!(m.read(), Some((5, &'a')));
        m.write(7, 'c');
        assert_eq!(m.read(), Some((7, &'c')));
    }

    #[test]
    fn ties_keep_first_value() {
        let mut m = MaxRegister::new();
        m.write(5, 'a');
        m.write(5, 'b');
        assert_eq!(m.read(), Some((5, &'a')));
    }

    #[test]
    fn monotone_under_random_writes() {
        use crate::rng::Xoshiro256StarStar;
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let mut m = MaxRegister::new();
        let mut last_key = 0u64;
        for _ in 0..1000 {
            m.write(rng.range_u64(1000), ());
            let (k, _) = m.read().expect("written at least once");
            assert!(k >= last_key, "max register key must be monotone");
            last_key = k;
        }
    }

    #[test]
    fn counts_ops() {
        let mut m = MaxRegister::new();
        m.write(1, ());
        let _ = m.read();
        assert_eq!(m.write_count(), 1);
        assert_eq!(m.read_count(), 1);
        assert!(m.peek().is_some());
    }
}

//! The operation vocabulary of the shared-memory model.
//!
//! A process interacts with shared memory exclusively by issuing one
//! [`Op`] per scheduled step and receiving one [`OpResult`] back. This is
//! the complete operation set of the paper's model (§1.1): atomic
//! multi-writer multi-reader registers, atomic snapshot objects, and max
//! registers (footnote 1).

use std::ops::Deref;
use std::sync::Arc;

use crate::ids::{MaxRegisterId, RegisterId, SnapshotId};
use crate::value::Value;

/// A single shared-memory operation.
///
/// Each variant executes atomically at the moment the issuing process is
/// scheduled, and costs exactly one step in the unit-cost accounting
/// (snapshot scans included, per the paper's unit-cost snapshot model; the
/// [`Memory`](crate::memory::Memory) can optionally charge register-model
/// costs instead).
#[derive(Debug, Clone)]
pub enum Op<V> {
    /// Read a register; yields [`OpResult::RegisterValue`].
    RegisterRead(RegisterId),
    /// Write a register; yields [`OpResult::Ack`].
    RegisterWrite(RegisterId, V),
    /// Update one component of a snapshot object; yields
    /// [`OpResult::Ack`]. The component index is typically the writing
    /// process's id.
    SnapshotUpdate(SnapshotId, usize, V),
    /// Atomically scan a snapshot object; yields
    /// [`OpResult::SnapshotView`].
    SnapshotScan(SnapshotId),
    /// Read the maximum entry of a max register; yields
    /// [`OpResult::MaxValue`].
    MaxRead(MaxRegisterId),
    /// Write a `(key, value)` pair to a max register; retained only if
    /// `key` exceeds the current maximum. Yields [`OpResult::Ack`].
    MaxWrite(MaxRegisterId, u64, V),
}

impl<V> Op<V> {
    /// Returns `true` if this operation only reads shared state.
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            Op::RegisterRead(_) | Op::SnapshotScan(_) | Op::MaxRead(_)
        )
    }

    /// Returns a short human-readable operation kind, for traces.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::RegisterRead(_) => OpKind::RegisterRead,
            Op::RegisterWrite(_, _) => OpKind::RegisterWrite,
            Op::SnapshotUpdate(_, _, _) => OpKind::SnapshotUpdate,
            Op::SnapshotScan(_) => OpKind::SnapshotScan,
            Op::MaxRead(_) => OpKind::MaxRead,
            Op::MaxWrite(_, _, _) => OpKind::MaxWrite,
        }
    }
}

/// The kind of an [`Op`], without its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A register read.
    RegisterRead,
    /// A register write.
    RegisterWrite,
    /// A snapshot component update.
    SnapshotUpdate,
    /// A snapshot scan.
    SnapshotScan,
    /// A max-register read.
    MaxRead,
    /// A max-register write.
    MaxWrite,
}

/// An immutable view of a snapshot object returned by a scan.
///
/// Cloning is `O(1)`: the view shares the underlying vector with the
/// snapshot object via copy-on-write. A process that drops its view before
/// its next step (the common pattern) makes subsequent updates allocation-
/// free; holding a view across steps is allowed and forces at most one
/// copy.
#[derive(Debug, Clone)]
pub struct ScanView<V> {
    components: Arc<Vec<Option<V>>>,
}

impl<V> ScanView<V> {
    pub(crate) fn new(components: Arc<Vec<Option<V>>>) -> Self {
        Self { components }
    }

    /// Builds a view from explicit components (useful in tests and in
    /// alternative runtimes).
    pub fn from_components(components: Vec<Option<V>>) -> Self {
        Self {
            components: Arc::new(components),
        }
    }

    /// Builds a view that shares an already-`Arc`ed component vector.
    ///
    /// This is the zero-copy entry point for runtimes that publish
    /// immutable component vectors themselves (e.g. the lock-free
    /// snapshot in `sift-shmem`): handing out a view is one refcount
    /// increment, with no per-scan clone of the components.
    pub fn from_arc(components: Arc<Vec<Option<V>>>) -> Self {
        Self { components }
    }

    /// The shared component vector backing this view.
    ///
    /// Lets a runtime republish a view it obtained earlier (again
    /// without copying), e.g. to cache the last materialized scan.
    pub fn as_arc(&self) -> &Arc<Vec<Option<V>>> {
        &self.components
    }

    /// Number of components in the snapshot object.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if the snapshot object has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Iterates over `(component, value)` pairs for non-empty components.
    pub fn present(&self) -> impl Iterator<Item = (usize, &V)> {
        self.components
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (i, v)))
    }
}

impl<V> Deref for ScanView<V> {
    type Target = [Option<V>];

    fn deref(&self) -> &Self::Target {
        &self.components
    }
}

/// The result of executing an [`Op`].
#[derive(Debug, Clone)]
pub enum OpResult<V> {
    /// Acknowledgement of a write or update.
    Ack,
    /// Value read from a register; `None` is the initial ⊥.
    RegisterValue(Option<V>),
    /// Atomic view returned by a snapshot scan.
    SnapshotView(ScanView<V>),
    /// Current maximum `(key, value)` of a max register; `None` if never
    /// written.
    MaxValue(Option<(u64, V)>),
}

impl<V: Value> OpResult<V> {
    /// Extracts a register read result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::RegisterValue`]; this
    /// indicates a protocol state-machine bug (an op/result mismatch), not
    /// a runtime condition.
    pub fn expect_register(self) -> Option<V> {
        match self {
            OpResult::RegisterValue(v) => v,
            other => panic!("expected register value, got {other:?}"),
        }
    }

    /// Extracts a snapshot scan result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::SnapshotView`].
    pub fn expect_view(self) -> ScanView<V> {
        match self {
            OpResult::SnapshotView(view) => view,
            other => panic!("expected snapshot view, got {other:?}"),
        }
    }

    /// Extracts a max-register read result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::MaxValue`].
    pub fn expect_max(self) -> Option<(u64, V)> {
        match self {
            OpResult::MaxValue(v) => v,
            other => panic!("expected max value, got {other:?}"),
        }
    }

    /// Extracts a write acknowledgement.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Ack`].
    pub fn expect_ack(self) {
        match self {
            OpResult::Ack => {}
            other => panic!("expected ack, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MaxRegisterId, RegisterId, SnapshotId};

    #[test]
    fn op_is_read_classification() {
        assert!(Op::<u32>::RegisterRead(RegisterId(0)).is_read());
        assert!(Op::<u32>::SnapshotScan(SnapshotId(0)).is_read());
        assert!(Op::<u32>::MaxRead(MaxRegisterId(0)).is_read());
        assert!(!Op::RegisterWrite(RegisterId(0), 1u32).is_read());
        assert!(!Op::SnapshotUpdate(SnapshotId(0), 0, 1u32).is_read());
        assert!(!Op::MaxWrite(MaxRegisterId(0), 5, 1u32).is_read());
    }

    #[test]
    fn op_kind_matches() {
        assert_eq!(
            Op::RegisterWrite(RegisterId(0), 1u32).kind(),
            OpKind::RegisterWrite
        );
        assert_eq!(
            Op::<u32>::SnapshotScan(SnapshotId(2)).kind(),
            OpKind::SnapshotScan
        );
    }

    #[test]
    fn scan_view_from_arc_shares_components() {
        use std::sync::Arc;
        let arc = Arc::new(vec![Some(1u32), None]);
        let view = ScanView::from_arc(Arc::clone(&arc));
        assert_eq!(&view[..], &[Some(1), None]);
        assert!(Arc::ptr_eq(view.as_arc(), &arc));
        // Republishing via the shared Arc is allocation-free.
        let again = ScanView::from_arc(Arc::clone(view.as_arc()));
        assert!(Arc::ptr_eq(again.as_arc(), &arc));
    }

    #[test]
    fn scan_view_present_filters_nulls() {
        let view = ScanView::from_components(vec![None, Some(7u32), None, Some(9)]);
        let present: Vec<(usize, u32)> = view.present().map(|(i, &v)| (i, v)).collect();
        assert_eq!(present, vec![(1, 7), (3, 9)]);
        assert_eq!(view.len(), 4);
        assert!(!view.is_empty());
    }

    #[test]
    fn result_extractors() {
        assert_eq!(
            OpResult::RegisterValue(Some(3u32)).expect_register(),
            Some(3)
        );
        OpResult::<u32>::Ack.expect_ack();
        assert_eq!(
            OpResult::MaxValue(Some((5, 8u32))).expect_max(),
            Some((5, 8))
        );
        let view =
            OpResult::SnapshotView(ScanView::from_components(vec![Some(1u32)])).expect_view();
        assert_eq!(view.len(), 1);
    }

    #[test]
    #[should_panic(expected = "expected register value")]
    fn extractor_mismatch_panics() {
        OpResult::<u32>::Ack.expect_register();
    }
}

//! Declarative description of a protocol's shared-memory footprint.
//!
//! Protocols declare the objects they need through a [`LayoutBuilder`],
//! which hands out typed ids. Both the simulator
//! ([`Memory`](crate::memory::Memory)) and alternative runtimes (such as
//! the threaded runtime in `sift-shmem`) instantiate their object arenas
//! from the resulting [`Layout`], so a protocol written once runs
//! anywhere.

use crate::ids::{MaxRegisterId, RegisterId, SnapshotId};

/// An allocator of typed object ids.
///
/// # Examples
///
/// ```
/// use sift_sim::layout::LayoutBuilder;
/// let mut b = LayoutBuilder::new();
/// let proposal = b.register();
/// let rounds = b.registers(4);
/// let arr = b.snapshot(8);
/// let layout = b.build();
/// assert_eq!(layout.register_count(), 5);
/// assert_eq!(layout.snapshot_components(), &[8]);
/// assert_eq!(proposal.index(), 0);
/// assert_eq!(rounds[0].index(), 1);
/// assert_eq!(arr.index(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LayoutBuilder {
    registers: usize,
    snapshots: Vec<usize>,
    max_registers: usize,
}

impl LayoutBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates one register (initially ⊥).
    pub fn register(&mut self) -> RegisterId {
        let id = RegisterId(self.registers);
        self.registers += 1;
        id
    }

    /// Allocates `count` consecutive registers.
    pub fn registers(&mut self, count: usize) -> Vec<RegisterId> {
        (0..count).map(|_| self.register()).collect()
    }

    /// Allocates a snapshot object with `components` components.
    pub fn snapshot(&mut self, components: usize) -> SnapshotId {
        let id = SnapshotId(self.snapshots.len());
        self.snapshots.push(components);
        id
    }

    /// Allocates `count` snapshot objects, each with `components`
    /// components.
    pub fn snapshots(&mut self, count: usize, components: usize) -> Vec<SnapshotId> {
        (0..count).map(|_| self.snapshot(components)).collect()
    }

    /// Allocates one max register.
    pub fn max_register(&mut self) -> MaxRegisterId {
        let id = MaxRegisterId(self.max_registers);
        self.max_registers += 1;
        id
    }

    /// Allocates `count` max registers.
    pub fn max_registers(&mut self, count: usize) -> Vec<MaxRegisterId> {
        (0..count).map(|_| self.max_register()).collect()
    }

    /// Finalizes the layout.
    pub fn build(self) -> Layout {
        Layout {
            registers: self.registers,
            snapshots: self.snapshots,
            max_registers: self.max_registers,
        }
    }
}

/// The shared-memory footprint of a protocol instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Layout {
    registers: usize,
    snapshots: Vec<usize>,
    max_registers: usize,
}

impl Layout {
    /// Number of registers.
    pub fn register_count(&self) -> usize {
        self.registers
    }

    /// Component counts of each snapshot object, indexed by
    /// [`SnapshotId`].
    pub fn snapshot_components(&self) -> &[usize] {
        &self.snapshots
    }

    /// Number of max registers.
    pub fn max_register_count(&self) -> usize {
        self.max_registers
    }

    /// Merges another layout after this one, returning the id offsets at
    /// which the other layout's objects begin.
    ///
    /// Composite protocols (e.g. a conciliator plus an adopt-commit
    /// object) build their layout by appending sub-layouts and shifting
    /// the sub-protocol ids by the returned offsets.
    pub fn append(&mut self, other: &Layout) -> LayoutOffsets {
        let offsets = LayoutOffsets {
            registers: self.registers,
            snapshots: self.snapshots.len(),
            max_registers: self.max_registers,
        };
        self.registers += other.registers;
        self.snapshots.extend_from_slice(&other.snapshots);
        self.max_registers += other.max_registers;
        offsets
    }
}

/// Id offsets returned by [`Layout::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutOffsets {
    /// Offset to add to the appended layout's register indices.
    pub registers: usize,
    /// Offset to add to the appended layout's snapshot indices.
    pub snapshots: usize,
    /// Offset to add to the appended layout's max-register indices.
    pub max_registers: usize,
}

impl LayoutOffsets {
    /// Identity offsets (no shift).
    pub fn zero() -> Self {
        Self {
            registers: 0,
            snapshots: 0,
            max_registers: 0,
        }
    }

    /// Shifts a register id allocated against the appended layout.
    pub fn register(&self, id: RegisterId) -> RegisterId {
        RegisterId(id.index() + self.registers)
    }

    /// Shifts a snapshot id allocated against the appended layout.
    pub fn snapshot(&self, id: SnapshotId) -> SnapshotId {
        SnapshotId(id.index() + self.snapshots)
    }

    /// Shifts a max-register id allocated against the appended layout.
    pub fn max_register(&self, id: MaxRegisterId) -> MaxRegisterId {
        MaxRegisterId(id.index() + self.max_registers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_dense_ids() {
        let mut b = LayoutBuilder::new();
        assert_eq!(b.register().index(), 0);
        assert_eq!(b.register().index(), 1);
        assert_eq!(b.snapshot(3).index(), 0);
        assert_eq!(b.snapshot(5).index(), 1);
        assert_eq!(b.max_register().index(), 0);
        let layout = b.build();
        assert_eq!(layout.register_count(), 2);
        assert_eq!(layout.snapshot_components(), &[3, 5]);
        assert_eq!(layout.max_register_count(), 1);
    }

    #[test]
    fn bulk_allocations() {
        let mut b = LayoutBuilder::new();
        let rs = b.registers(3);
        let ss = b.snapshots(2, 7);
        let ms = b.max_registers(2);
        assert_eq!(rs.len(), 3);
        assert_eq!(ss.len(), 2);
        assert_eq!(ms.len(), 2);
        let layout = b.build();
        assert_eq!(layout.register_count(), 3);
        assert_eq!(layout.snapshot_components(), &[7, 7]);
        assert_eq!(layout.max_register_count(), 2);
    }

    #[test]
    fn append_shifts_ids() {
        let mut outer = LayoutBuilder::new();
        outer.registers(2);
        outer.snapshot(4);
        let mut outer = outer.build();

        let mut inner = LayoutBuilder::new();
        let r = inner.register();
        let s = inner.snapshot(9);
        let m = inner.max_register();
        let inner = inner.build();

        let off = outer.append(&inner);
        assert_eq!(off.register(r).index(), 2);
        assert_eq!(off.snapshot(s).index(), 1);
        assert_eq!(off.max_register(m).index(), 0);
        assert_eq!(outer.register_count(), 3);
        assert_eq!(outer.snapshot_components(), &[4, 9]);
    }

    #[test]
    fn zero_offsets_are_identity() {
        let off = LayoutOffsets::zero();
        assert_eq!(off.register(RegisterId(3)).index(), 3);
        assert_eq!(off.snapshot(SnapshotId(2)).index(), 2);
        assert_eq!(off.max_register(MaxRegisterId(1)).index(), 1);
    }
}

//! Deterministic pseudo-random number generation for reproducible
//! simulations.
//!
//! Results of every experiment must be reproducible from a single master
//! seed, independent of the version of any external crate. We therefore
//! implement two small, well-known generators in-tree:
//!
//! * [`SplitMix64`] — used to expand seeds into independent streams.
//! * [`Xoshiro256StarStar`] — the workhorse generator, seeded via
//!   `SplitMix64` as its authors recommend.
//!
//! The oblivious-adversary model requires that the adversary's schedule is
//! fixed *before* any process flips a coin. [`SeedSplitter`] makes the
//! separation explicit: schedule randomness and per-process randomness are
//! derived from disjoint, labelled streams of the master seed, so no
//! information can flow from coins to the schedule.

/// SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// A tiny, fast generator with a 64-bit state that equidistributes over all
/// 64-bit outputs. Used here to derive seeds for [`Xoshiro256StarStar`] and
/// to split a master seed into independent labelled streams.
///
/// # Examples
///
/// ```
/// use sift_sim::rng::SplitMix64;
/// let mut g = SplitMix64::new(42);
/// let a = g.next_u64();
/// let b = g.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 (Blackman, Vigna 2018).
///
/// The primary generator used by processes and schedule builders. It has a
/// 256-bit state, passes BigCrush, and is seeded from [`SplitMix64`] so that
/// correlated user-provided seeds still yield well-mixed states.
///
/// # Examples
///
/// ```
/// use sift_sim::rng::Xoshiro256StarStar;
/// let mut g = Xoshiro256StarStar::seed_from_u64(7);
/// let x = g.range_u64(10); // uniform in 0..10
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the generator by expanding `seed` with [`SplitMix64`].
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state is the one invalid state; SplitMix64 expansion of
        // any seed makes this astronomically unlikely, but guard anyway.
        if s == [0, 0, 0, 0] {
            return Self { s: [1, 2, 3, 4] };
        }
        Self { s }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// Uses Lemire's nearly-divisionless rejection method, so the result is
    /// exactly uniform (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range_u64 bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed value in `1..=bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn range_u64_inclusive_from_one(&mut self, bound: u64) -> u64 {
        1 + self.range_u64(bound)
    }

    /// Returns `true` with probability `p`.
    ///
    /// `p` is clamped to `[0, 1]`; NaN is treated as 0.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p.is_nan() || p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random bits give a uniform double in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform random boolean.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Splits a master seed into independent labelled streams.
///
/// The split is a keyed hash of `(master, label, index)`: streams with
/// different labels or indices are computationally independent. Used to
/// enforce the oblivious-adversary separation between schedule randomness
/// and process randomness.
///
/// # Examples
///
/// ```
/// use sift_sim::rng::SeedSplitter;
/// let split = SeedSplitter::new(99);
/// let mut schedule_rng = split.stream("schedule", 0);
/// let mut process_rng = split.stream("process", 3);
/// assert_ne!(schedule_rng.next_u64(), process_rng.next_u64());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SeedSplitter {
    master: u64,
}

impl SeedSplitter {
    /// Creates a splitter over `master`.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// Returns the master seed this splitter was created with.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the 64-bit seed of the stream `(label, index)`.
    pub fn seed(&self, label: &str, index: u64) -> u64 {
        // FNV-1a over the label, mixed with master and index through
        // SplitMix64 steps. Not cryptographic, but thoroughly decorrelated.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = SplitMix64::new(self.master ^ h.rotate_left(17));
        let a = sm.next_u64();
        let mut sm2 = SplitMix64::new(a ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        sm2.next_u64()
    }

    /// Returns a fresh generator for the stream `(label, index)`.
    pub fn stream(&self, label: &str, index: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(self.seed(label, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values for seed 0 from the public-domain reference
        // implementation.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(5);
        let mut b = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_different_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds should diverge");
    }

    #[test]
    fn range_is_in_bounds_and_hits_all_values() {
        let mut g = Xoshiro256StarStar::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = g.range_u64(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_from_one_bounds() {
        let mut g = Xoshiro256StarStar::seed_from_u64(12);
        for _ in 0..1000 {
            let x = g.range_u64_inclusive_from_one(5);
            assert!((1..=5).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn range_zero_panics() {
        let mut g = Xoshiro256StarStar::seed_from_u64(1);
        g.range_u64(0);
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut g = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!g.bernoulli(0.0));
            assert!(g.bernoulli(1.0));
            assert!(!g.bernoulli(f64::NAN));
            assert!(g.bernoulli(1.5));
            assert!(!g.bernoulli(-0.5));
        }
    }

    #[test]
    fn bernoulli_is_roughly_calibrated() {
        let mut g = Xoshiro256StarStar::seed_from_u64(17);
        let n = 100_000;
        let hits = (0..n).filter(|_| g.bernoulli(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate} too far from 0.3");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut g = Xoshiro256StarStar::seed_from_u64(19);
        for _ in 0..1000 {
            let u = g.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn splitter_streams_are_independent() {
        let split = SeedSplitter::new(7);
        let mut a = split.stream("schedule", 0);
        let mut b = split.stream("process", 0);
        let mut c = split.stream("schedule", 1);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(av, bv);
        assert_ne!(av, cv);
        assert_ne!(bv, cv);
    }

    #[test]
    fn splitter_is_deterministic() {
        let s1 = SeedSplitter::new(1234);
        let s2 = SeedSplitter::new(1234);
        assert_eq!(s1.seed("x", 9), s2.seed("x", 9));
        assert_eq!(s1.master(), 1234);
    }
}

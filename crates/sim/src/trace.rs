//! Execution traces for debugging and linearizability checks.

use crate::ids::ProcessId;
use crate::op::OpKind;

/// One executed operation in an execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global slot index at which the operation executed (0-based, counts
    /// only charged slots, not skips).
    pub slot: u64,
    /// The process that executed the operation.
    pub pid: ProcessId,
    /// The kind of operation.
    pub kind: OpKind,
}

/// A recorded execution: the sequence of charged operations in order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events executed by one process, in order.
    pub fn by_process(&self, pid: ProcessId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.pid == pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            slot: 0,
            pid: ProcessId(1),
            kind: OpKind::RegisterWrite,
        });
        t.push(TraceEvent {
            slot: 1,
            pid: ProcessId(0),
            kind: OpKind::RegisterRead,
        });
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.events()[0].pid, ProcessId(1));
        assert_eq!(t.by_process(ProcessId(0)).count(), 1);
    }
}

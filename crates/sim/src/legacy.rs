//! The pre-refactor step-loop engine, preserved verbatim as a
//! differential oracle.
//!
//! [`LegacyEngine`] is the original `Engine` implementation: a
//! `Vec<Slot<P>>` indexed by process id, one virtual `next_pid` pull
//! and one enum-tag match per scheduled slot, every process and
//! register allocated eagerly at construction. It produces the same
//! [`RunReport`] type as the event engine, so the regression suite can
//! assert bit-identical outputs, metrics, traces, and stop reasons
//! between the two on any schedule (see `tests/determinism.rs`).
//!
//! Do not grow features here: the whole point is that this code stays
//! frozen while [`Engine`](crate::Engine) evolves.

use crate::engine::{RunReport, StopReason};
use crate::ids::ProcessId;
use crate::layout::Layout;
use crate::memory::Memory;
use crate::metrics::Metrics;
use crate::obs::RingSink;
use crate::op::Op;
use crate::process::{Process, Step};
use crate::schedule::Schedule;
use crate::trace::{Trace, TraceEvent};

enum Slot<P: Process> {
    Running {
        proc: P,
        pending: Option<Op<P::Value>>,
    },
    Done {
        proc: P,
        output: P::Output,
    },
    /// Transient state while a slot is being advanced.
    Vacant,
}

/// The original per-step-dispatch engine (see the module docs).
///
/// # Examples
///
/// ```
/// use sift_sim::legacy::LegacyEngine;
/// use sift_sim::schedule::RoundRobin;
/// use sift_sim::{Engine, LayoutBuilder, Op, OpResult, Process, RegisterId, Step};
///
/// struct WriteOnce(RegisterId, u32, bool);
/// impl Process for WriteOnce {
///     type Value = u32;
///     type Output = u32;
///     fn step(&mut self, _prev: Option<OpResult<u32>>) -> Step<u32, u32> {
///         if self.2 {
///             Step::Done(self.1)
///         } else {
///             self.2 = true;
///             Step::Issue(Op::RegisterWrite(self.0, self.1))
///         }
///     }
/// }
///
/// let mut b = LayoutBuilder::new();
/// let r = b.register();
/// let layout = b.build();
/// let old = LegacyEngine::new(&layout, vec![WriteOnce(r, 10, false)]).run(RoundRobin::new(1));
/// let new = Engine::new(&layout, vec![WriteOnce(r, 10, false)]).run(RoundRobin::new(1));
/// assert_eq!(old.outputs, new.outputs);
/// assert_eq!(old.metrics, new.metrics);
/// ```
pub struct LegacyEngine<P: Process> {
    memory: Memory<P::Value>,
    slots: Vec<Slot<P>>,
    metrics: Metrics,
    trace: Option<Trace>,
    ring: Option<RingSink>,
    slot_limit: u64,
    live: usize,
}

impl<P: Process> LegacyEngine<P> {
    /// Creates an engine over fresh unit-cost memory for `layout`.
    pub fn new(layout: &Layout, processes: Vec<P>) -> Self {
        Self::with_memory(Memory::new(layout), processes)
    }

    /// Creates an engine over explicitly constructed memory.
    pub fn with_memory(memory: Memory<P::Value>, processes: Vec<P>) -> Self {
        let n = processes.len();
        let mut live = 0;
        let slots = processes
            .into_iter()
            .map(|mut proc| match proc.step(None) {
                Step::Issue(op) => {
                    live += 1;
                    Slot::Running {
                        proc,
                        pending: Some(op),
                    }
                }
                Step::Done(output) => Slot::Done { proc, output },
            })
            .collect();
        Self {
            memory,
            slots,
            metrics: Metrics::new(n),
            trace: None,
            ring: None,
            slot_limit: u64::MAX,
            live,
        }
    }

    /// Enables trace recording.
    pub fn enable_trace(&mut self) -> &mut Self {
        self.trace = Some(Trace::new());
        self
    }

    /// Enables the bounded step-event ring.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace_ring(&mut self, capacity: usize) -> &mut Self {
        self.ring = Some(RingSink::new(capacity));
        self
    }

    /// Caps the number of charged slots.
    pub fn limit_slots(&mut self, limit: u64) -> &mut Self {
        self.slot_limit = limit;
        self
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.slots.len()
    }

    fn advance(&mut self, pid: ProcessId, schedule: &mut impl Schedule) -> bool {
        let slot = &mut self.slots[pid.index()];
        let (mut proc, op) = match std::mem::replace(slot, Slot::Vacant) {
            Slot::Running { proc, pending } => (
                proc,
                pending.expect("running process always has a pending op"),
            ),
            done @ Slot::Done { .. } => {
                *slot = done;
                self.metrics.record_skip();
                return false;
            }
            Slot::Vacant => unreachable!("vacant slot outside advance"),
        };

        let kind = op.kind();
        let cost = self.memory.cost(&op);
        let result = self.memory.execute(op);
        let event = TraceEvent {
            slot: self.metrics.total_ops,
            pid,
            kind,
        };
        if let Some(trace) = &mut self.trace {
            trace.push(event);
        }
        if let Some(ring) = &mut self.ring {
            ring.push(event);
        }
        self.metrics.record(pid.index(), kind, cost);

        match proc.step(Some(result)) {
            Step::Issue(next) => {
                self.slots[pid.index()] = Slot::Running {
                    proc,
                    pending: Some(next),
                };
                false
            }
            Step::Done(output) => {
                self.slots[pid.index()] = Slot::Done { proc, output };
                self.live -= 1;
                schedule.on_done(pid);
                true
            }
        }
    }

    /// Runs to completion under `schedule` and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the schedule yields a process id out of range.
    pub fn run(mut self, mut schedule: impl Schedule) -> RunReport<P> {
        let support = schedule.support();
        let support_total = support.len();
        let mut support_done = support
            .iter()
            .filter(|pid| matches!(self.slots[pid.index()], Slot::Done { .. }))
            .count();
        for (i, slot) in self.slots.iter().enumerate() {
            if matches!(slot, Slot::Done { .. }) {
                schedule.on_done(ProcessId(i));
            }
        }

        let mut in_support = vec![false; self.slots.len()];
        for pid in &support {
            in_support[pid.index()] = true;
        }

        let reason = loop {
            if self.live == 0 || (support_total > 0 && support_done == support_total) {
                break StopReason::AllDone;
            }
            if self.metrics.scheduled_slots() >= self.slot_limit {
                break StopReason::SlotLimit;
            }
            match schedule.next_pid() {
                None => break StopReason::ScheduleExhausted,
                Some(pid) => {
                    assert!(
                        pid.index() < self.slots.len(),
                        "schedule produced out-of-range {pid}"
                    );
                    let finished = self.advance(pid, &mut schedule);
                    if finished && (support_total == 0 || in_support[pid.index()]) {
                        support_done += 1;
                    }
                }
            }
        };

        self.into_report(reason)
    }

    fn into_report(self, reason: StopReason) -> RunReport<P> {
        let mut outputs = Vec::with_capacity(self.slots.len());
        let mut processes = Vec::with_capacity(self.slots.len());
        for slot in self.slots {
            match slot {
                Slot::Running { proc, .. } => {
                    outputs.push(None);
                    processes.push(proc);
                }
                Slot::Done { proc, output } => {
                    outputs.push(Some(output));
                    processes.push(proc);
                }
                Slot::Vacant => unreachable!("vacant slot after run"),
            }
        }

        RunReport {
            outputs,
            processes,
            metrics: self.metrics,
            memory: self.memory,
            trace: self.trace,
            ring: self.ring,
            stop_reason: reason,
        }
    }
}
